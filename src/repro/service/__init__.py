"""The service plane: queue + workers + front door over one store.

PR 3 made experiments hash-addressed data, PR 4 made results
content-addressed artifacts, PR 5 made fleets decompose into
deterministic shard sub-specs — this package composes them into a
*service*: durable submission (:mod:`~repro.service.queue`), detached
execution with crash recovery (:mod:`~repro.service.worker`), and an
async client/HTTP front door (:mod:`~repro.service.client`,
:mod:`~repro.service.server`), all coordinating through one plain
directory (:mod:`~repro.service.store`).  See ``docs/service.md``.
"""

from repro.service.client import JobStatus, ServiceClient, ServiceError
from repro.service.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
    JobRecord,
    LeaseRecord,
)
from repro.service.server import make_server, serve
from repro.service.store import STORE_ENV, ServiceStore, default_store_dir
from repro.service.worker import WorkerDaemon, WorkerReport, execute_job

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "LeaseRecord",
    "STORE_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceStore",
    "WorkerDaemon",
    "WorkerReport",
    "default_store_dir",
    "execute_job",
    "make_server",
    "serve",
]
