"""Worker daemons: lease jobs, execute them, publish artifacts.

A :class:`WorkerDaemon` is the execution half of the service plane — any
number of them (processes, machines) point at one
:class:`~repro.service.store.ServiceStore` and drain its queue:

* **lease** the oldest runnable job (:meth:`JobQueue.lease <
  repro.service.queue.JobQueue.lease>` — atomic, so two daemons never
  run the same job);
* **heartbeat** on a background thread (:class:`_LeaseKeeper`) for the
  whole execution, so long runs keep their lease while a ``kill -9``-ed
  worker silently stops beating and loses it;
* **execute** through exactly the same compile/fan-out path as an
  in-process :func:`repro.api.run.run` — runs are bit-deterministic, so
  a service-produced result is indistinguishable from a local one;
* **publish** the portable :class:`~repro.api.run.Result` into the
  store's artifact cache under the job id (= spec hash), then mark the
  job done.

Neighborhood jobs additionally **checkpoint per shard**: every shard
sub-spec has a stable content address
(:func:`repro.api.compile.shard_sub_hash`), and its pre-reduced outcome
is stored as it completes — a worker that crashes 80 shards into a
100-shard fleet loses nothing; the re-leasing worker replays the 80 from
the artifact store and executes only the remaining 20.  Because shard
planning is deterministic in ``(fleet, shard_size, jobs)`` and outcomes
are bit-identical however produced, resume cannot change a single bit of
the final result.
"""

from __future__ import annotations

import functools
import os
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.api.cache import ResultCache
from repro.api.compile import compile_fleet, shard_sub_hash
from repro.api.run import Result, _execute, provenance_of
from repro.api.spec import ExperimentSpec
from repro.api.validate import validate
from repro.faults import InjectedFault, fault_scope
from repro.service.queue import JobQueue
from repro.service.retry import RetryPolicy
from repro.service.store import ServiceStore

#: Idle-queue polling period of :meth:`WorkerDaemon.run_forever`.
WORKER_POLL_S = 0.5
#: Heartbeats fire every ``lease_ttl * HEARTBEAT_FRACTION`` seconds —
#: several beats per TTL, so one delayed beat never loses the lease.
HEARTBEAT_FRACTION = 0.25


def default_worker_id() -> str:
    """A worker identity unique per process: ``<host>.<pid>``."""
    return f"{socket.gethostname()}.{os.getpid()}"


@dataclass(frozen=True)
class WorkerReport:
    """What one :meth:`WorkerDaemon.step` did with the job it leased.

    ``state`` is one of ``"done"`` (executed and published),
    ``"cached"`` (the artifact already existed — completed without
    executing), ``"failed"`` (execution raised; the queue decides
    retry vs terminal), ``"stale"`` (executed, but the lease had
    expired and moved — publication is skipped; the new holder
    publishes the bit-identical artifact), or ``"aborted"`` (an
    injected ``worker.lease`` fault abandoned the job after execution,
    before publishing — the lease expires and the job is re-leased).
    """

    job_id: str
    state: str
    error: Optional[str] = None


class _LeaseKeeper(threading.Thread):
    """Background heartbeat for one leased job.

    Beats until :meth:`stop` — or until a beat is rejected, which means
    the lease expired and was re-assigned; ``lost`` latches so the
    worker knows its completion will be stale.  Daemonic: a crashing
    worker takes its keeper with it, which is precisely what lets the
    lease expire and the job move on.
    """

    def __init__(self, queue: JobQueue, job_id: str, worker: str,
                 interval: float):
        super().__init__(daemon=True, name=f"lease-{job_id[:8]}")
        self.queue = queue
        self.job_id = job_id
        self.worker = worker
        self.interval = interval
        self.lost = False
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                beating = self.queue.heartbeat(self.job_id, self.worker)
            except Exception:
                # A raising heartbeat (store unreachable, corrupt lock)
                # must not kill the thread *silently* with lost=False —
                # that is indistinguishable from a healthy lease, and the
                # worker would publish over an expired-lease takeover.
                # Latch lost; the worker re-verifies before publishing.
                self.lost = True
                return
            if not beating:
                self.lost = True
                return

    def stop(self) -> None:
        """Stop beating and wait for the thread to wind down."""
        self._halt.set()
        self.join(timeout=self.interval + 1.0)


def _checkpointed_shard(spec, cache: ResultCache, parent: str) -> tuple:
    """Shard executor with artifact-store memoization (module-level so
    ``functools.partial`` of it pickles to pool workers).

    The shard's transport is forced in-process (``None``) so the outcome
    carries its series directly — a shared-memory frame names a segment
    that dies with the packing process and can never live in a store.
    Stored shards therefore skip the batched-frame transport; the
    checkpoint read/write replaces what the frame was optimizing.
    """
    from repro.neighborhood.shard import _execute_shard
    key = shard_sub_hash(parent, spec)
    hit = cache.get_object(key)
    if isinstance(hit, tuple) and len(hit) == 3 and hit[0] == "ok":
        return hit
    triple = _execute_shard(replace(spec, transport=None))
    if triple[0] == "ok":
        cache.put_object(key, triple, name=spec.fleet.name, kind="shard")
    return triple


def execute_job(spec: ExperimentSpec, cache: Optional[ResultCache] = None,
                jobs: int = 1, mp_context: Optional[str] = None,
                shard_size: Optional[int] = None) -> Result:
    """Execute one leased spec exactly as ``run(spec)`` would.

    The worker-side twin of the :func:`repro.api.run.run` cache-miss
    path: validate, stamp provenance, execute.  With a ``cache`` (the
    store's artifact cache), neighborhood and grid kinds run with the
    per-shard checkpointing executor (see module docstring) so crashed
    attempts resume at shard granularity — grid shard indices are
    globally renumbered across feeders
    (:func:`repro.neighborhood.grid.execute_grid`), so every shard of
    every feeder gets its own checkpoint sub-address.
    """
    validate(spec)
    provenance = provenance_of(spec)
    with fault_scope(spec.faults):
        if spec.kind == "neighborhood" and cache is not None:
            from repro.neighborhood.federation import execute_fleet
            executor = functools.partial(
                _checkpointed_shard, cache=cache,
                parent=provenance.spec_hash)
            fleet = compile_fleet(spec)
            neighborhood = execute_fleet(
                fleet, jobs=jobs, until=spec.until_s,
                mp_context=mp_context,
                coordination=spec.fleet.coordination, spec=spec,
                shard_size=shard_size, shard_executor=executor,
                forecast=spec.forecast)
            return Result(spec=spec, provenance=provenance,
                          neighborhood=neighborhood)
        if spec.kind == "grid" and cache is not None:
            from repro.api.compile import compile_grid
            from repro.neighborhood.grid import execute_grid
            executor = functools.partial(
                _checkpointed_shard, cache=cache,
                parent=provenance.spec_hash)
            grid = compile_grid(spec)
            payload = execute_grid(
                grid, jobs=jobs, until=spec.until_s,
                mp_context=mp_context,
                coordination=spec.grid.coordination, spec=spec,
                shard_size=shard_size, shard_executor=executor)
            return Result(spec=spec, provenance=provenance, grid=payload)
        return _execute(spec, provenance, jobs, mp_context, shard_size)


class WorkerDaemon:
    """One worker process over a service store (see module docstring).

    ``jobs``/``mp_context``/``shard_size`` are the usual execution
    knobs, forwarded to the compiled run — a daemon with ``jobs=4``
    fans each leased job over four pool workers.  ``lease_ttl`` /
    ``max_attempts`` tune the queue's crash-recovery protocol (defaults
    from :mod:`repro.service.queue`).
    """

    def __init__(self, store: Union[None, str, ServiceStore] = None,
                 worker_id: Optional[str] = None, jobs: int = 1,
                 mp_context: Optional[str] = None,
                 shard_size: Optional[int] = None,
                 lease_ttl: Optional[float] = None,
                 max_attempts: Optional[int] = None):
        self.store = ServiceStore.resolve(store)
        self.queue = self.store.queue(lease_ttl=lease_ttl,
                                      max_attempts=max_attempts)
        self.cache = self.store.cache()
        self.worker_id = worker_id if worker_id is not None \
            else default_worker_id()
        self.jobs = jobs
        self.mp_context = mp_context
        self.shard_size = shard_size

    def step(self) -> Optional[WorkerReport]:
        """Lease and finish at most one job; ``None`` when queue is idle.

        A job whose artifact already exists (another worker published it
        while this job waited) completes instantly without executing —
        the queue-side half of the dedup guarantee.

        When the leased spec carries a fault plan, its ``worker.crash``
        site can abort the attempt before execution (the queue retries,
        burning one attempt) and its ``worker.lease`` site can abandon
        the finished attempt *before publishing* (simulating a worker
        dying between execution and publication — the lease expires and
        the next holder re-executes from shard checkpoints).  Both are
        keyed ``{job_id}:a{attempt}``, so the fault schedule is the
        same whichever daemon happens to lease the attempt.
        """
        leased = self.queue.lease(self.worker_id)
        if leased is None:
            return None
        record, _lease = leased
        job_id = record.job_id
        if self.cache.has(job_id):
            self.queue.complete(job_id, self.worker_id)
            return WorkerReport(job_id=job_id, state="cached")
        spec = record.spec()
        attempt_key = f"{job_id}:a{record.attempts}"
        keeper = _LeaseKeeper(
            self.queue, job_id, self.worker_id,
            interval=self.queue.lease_ttl * HEARTBEAT_FRACTION)
        keeper.start()
        abandon = False
        try:
            with fault_scope(spec.faults) as injector:
                if injector is not None and injector.fire(
                        "worker.crash", attempt_key):
                    raise InjectedFault("worker.crash", attempt_key)
                result = execute_job(
                    spec, cache=self.cache, jobs=self.jobs,
                    mp_context=self.mp_context,
                    shard_size=self.shard_size)
                abandon = injector is not None and injector.fire(
                    "worker.lease", attempt_key)
        except Exception as bad:
            keeper.stop()
            error = f"{type(bad).__name__}: {bad}"
            self.queue.fail(job_id, self.worker_id, error)
            return WorkerReport(job_id=job_id, state="failed",
                                error=error)
        keeper.stop()
        if abandon:
            # Injected death between execution and publication: leave
            # the job running with no publisher so the lease protocol
            # (expiry -> re-lease -> checkpointed re-execution) is what
            # completes it, exactly once.
            return WorkerReport(job_id=job_id, state="aborted",
                                error="injected lease abandonment "
                                      "before publish")
        if keeper.lost and not self._still_holds(job_id):
            # The heartbeat thread latched a lost (or unverifiable)
            # lease and the queue confirms it moved on: publishing now
            # would race the takeover worker's publication.  The
            # content-addressed artifact the new holder produces is
            # bit-identical, so skipping is pure loss-avoidance.
            return WorkerReport(job_id=job_id, state="stale")
        self.cache.put_object(job_id, result.portable(),
                              name=record.name, kind=record.kind)
        completed = self.queue.complete(job_id, self.worker_id)
        return WorkerReport(job_id=job_id,
                            state="done" if completed else "stale")

    def _still_holds(self, job_id: str) -> bool:
        """Re-verify this worker's lease directly against the queue.

        Called when the lease keeper latched ``lost`` — which can also
        mean the heartbeat *raised* (store hiccup) while the lease is in
        fact still ours.  Only the queue's current lease record decides.
        """
        try:
            lease = self.queue.lease_of(job_id)
        except Exception:
            return False
        return lease is not None and lease.worker == self.worker_id

    def run_forever(self, max_jobs: Optional[int] = None,
                    idle_exit_s: Optional[float] = None,
                    poll_s: float = WORKER_POLL_S) -> int:
        """Drain the queue; returns how many jobs this call finished.

        Runs until ``max_jobs`` jobs are finished (``None`` = no limit)
        or the queue has been idle for ``idle_exit_s`` seconds
        (``None`` = wait forever) — the knobs that make daemons usable
        in tests and CI, where "serve forever" is a hang.

        Idle polling follows the same exponential backoff-with-jitter
        curve as client result polling (``poll_s`` seeds it, capped at
        2 s), resetting whenever work arrives — so a drained queue is
        re-checked eagerly right after activity and cheaply thereafter.
        """
        retry = RetryPolicy(initial_s=poll_s, max_s=max(poll_s, 2.0))
        finished = 0
        idle_polls = 0
        idle_since: Optional[float] = None
        while True:
            report = self.step()
            if report is not None:
                finished += 1
                idle_polls = 0
                idle_since = None
                if max_jobs is not None and finished >= max_jobs:
                    return finished
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif idle_exit_s is not None and now - idle_since >= idle_exit_s:
                return finished
            wait = retry.interval(idle_polls, key=self.worker_id)
            if idle_exit_s is not None:
                wait = min(wait,
                           max(idle_since + idle_exit_s - now, 0.0))
            time.sleep(wait)
            idle_polls += 1
