"""``repro serve``: a stdlib HTTP face over the service store.

For submitters that can't share the store's filesystem, a small JSON
API over :class:`~repro.service.client.ServiceClient` — same dedup,
same warm-path semantics, no extra state (the store stays the single
source of truth; the server can die and restart freely):

====== ============================ =======================================
method path                         body / response
====== ============================ =======================================
POST   ``/v1/jobs``                 spec JSON → ``{"job_id", "state", ...}``
GET    ``/v1/jobs/<job_id>``        job status JSON
GET    ``/v1/jobs/<job_id>/result`` rendered result + provenance (``202``
                                    while pending — poll again)
GET    ``/v1/health``               queue counts + store root
====== ============================ =======================================

Results travel as the rendered report plus provenance (spec hash, code
version) rather than a pickle: the HTTP face is for *submission and
inspection*; bulk artifact access reads the store directly (it is
content-addressed — fetch by the same spec hash).

Threading: requests are served concurrently
(:class:`~http.server.ThreadingHTTPServer`); every handler re-reads the
store, which is already multi-process safe, so no server-side locks.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from repro.api.spec import ExperimentSpec
from repro.api.validate import SpecError
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import ServiceStore

#: Default bind address of ``repro serve`` — loopback only; exposing the
#: store to a network is an operator decision, never a default.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787


class _ServiceHandler(BaseHTTPRequestHandler):
    """One request: parse the path, delegate to the client, emit JSON."""

    #: Injected by :func:`make_server` (class attribute — handlers are
    #: instantiated per request by the HTTP server machinery).
    client: ServiceClient = None
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (tests and daemons)."""

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/v1/jobs":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            spec = ExperimentSpec.from_json(
                self.rfile.read(length).decode())
        except (ValueError, SpecError) as bad:
            self._reply(400, {"error": f"invalid spec: {bad}"})
            return
        try:
            job_id = self.client.submit(spec)
        except SpecError as bad:
            self._reply(400, {"error": f"invalid spec: {bad}"})
            return
        status = self.client.status(job_id)
        self._reply(200, {"job_id": job_id, "state": status.state,
                          "cached": status.cached})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = [part for part in self.path.split("/") if part]
        if parts == ["v1", "health"]:
            self._reply(200, {
                "ok": True,
                "store": str(self.client.store.root),
                "queue": self.client.queue.counts()})
            return
        if len(parts) >= 2 and parts[:2] == ["v1", "jobs"]:
            if len(parts) == 3:
                self._status(parts[2])
                return
            if len(parts) == 4 and parts[3] == "result":
                self._result(parts[2])
                return
        self._reply(404, {"error": f"unknown path {self.path!r}"})

    def _status(self, job_id: str) -> None:
        try:
            status = self.client.status(job_id)
        except ServiceError as missing:
            self._reply(404, {"error": str(missing)})
            return
        self._reply(200, {
            "job_id": status.job_id, "state": status.state,
            "attempts": status.attempts, "error": status.error,
            "worker": status.worker, "cached": status.cached})

    def _result(self, job_id: str) -> None:
        try:
            status = self.client.status(job_id)
        except ServiceError as missing:
            self._reply(404, {"error": str(missing)})
            return
        if not status.cached:
            if status.state == "failed":
                self._reply(500, {"job_id": job_id, "state": "failed",
                                  "error": status.error})
                return
            self._reply(202, {"job_id": job_id, "state": status.state,
                              "detail": "result not ready; poll again"})
            return
        try:
            result = self.client.result(job_id, timeout=0)
        except ServiceError as gone:  # evicted between status and fetch
            self._reply(404, {"error": str(gone)})
            return
        self._reply(200, {
            "job_id": job_id, "state": "done",
            "spec_hash": result.provenance.spec_hash,
            "code_version": result.provenance.code_version,
            "render": result.render()})


def make_server(store: Union[None, str, ServiceStore] = None,
                host: str = DEFAULT_HOST,
                port: int = DEFAULT_PORT) -> ThreadingHTTPServer:
    """Build (and bind) the front-door server without serving yet.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (what the tests do).  Call
    ``serve_forever()`` on the returned server, or :func:`serve` for
    the blocking one-liner.
    """
    client = ServiceClient(store)
    handler = type("_BoundHandler", (_ServiceHandler,),
                   {"client": client})
    return ThreadingHTTPServer((host, port), handler)


def serve(store: Union[None, str, ServiceStore] = None,
          host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          banner: bool = True) -> None:
    """Run the front door until interrupted (the ``repro serve`` body)."""
    server = make_server(store, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    if banner:
        root = ServiceStore.resolve(store).root
        print(f"repro service front door on http://{bound_host}:"
              f"{bound_port} (store {root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
