"""Deterministic exponential backoff with jitter for the service plane.

One :class:`RetryPolicy` object serves both halves of the service
protocol: :meth:`repro.service.client.ServiceClient.result` spaces its
store polls with it (growing from milliseconds to :attr:`~RetryPolicy.max_s`
instead of hammering a fixed interval), and
:meth:`repro.service.worker.WorkerDaemon.run_forever` uses the same
curve for its idle-queue polling.

The jitter is *hash-derived*, not drawn from an RNG: the fraction for
``(attempt, key)`` is a pure function of ``(seed, key, attempt)``, so
backoff sequences — like everything else in this repository — replay
bit-identically, while distinct keys (distinct job ids) still decorrelate
and avoid thundering-herd polling against one store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential backoff curve: ``initial_s * factor**attempt``.

    Intervals are capped at ``max_s`` and spread by ``±jitter``
    (a fraction of the interval, deterministic per ``(key, attempt)``).
    Frozen and hashable, so one policy instance can be shared freely
    across clients, daemons, and threads.
    """

    initial_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.initial_s <= 0:
            raise ValueError(f"initial_s must be > 0, got {self.initial_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_s < self.initial_s:
            raise ValueError(f"max_s must be >= initial_s, "
                             f"got {self.max_s} < {self.initial_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def _unit(self, key: str, attempt: int) -> float:
        """Deterministic variate in ``[0, 1)`` for ``(key, attempt)``."""
        text = f"{self.seed}:{key}:a{attempt}"
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def interval(self, attempt: int, key: str = "") -> float:
        """The wait before retry number ``attempt`` (0-based), jittered.

        The base interval is ``min(initial_s * factor**attempt, max_s)``;
        the returned value is spread uniformly over ``base * (1 ± jitter)``
        as a pure function of ``(seed, key, attempt)``.
        """
        base = min(self.initial_s * self.factor ** attempt, self.max_s)
        if self.jitter <= 0.0:
            return base
        spread = 2.0 * self._unit(key, attempt) - 1.0
        return base * (1.0 + self.jitter * spread)


#: The default polling curve of :meth:`ServiceClient.result`: starts at
#: 50 ms (warm results answer on the first or second poll), doubles to a
#: 2 s ceiling so long waits cost ~0.5 poll/s instead of 10.
DEFAULT_RESULT_RETRY = RetryPolicy()

#: The idle-queue curve of :meth:`WorkerDaemon.run_forever`: quick
#: re-checks right after the queue drains, backing off to 2 s.
DEFAULT_IDLE_RETRY = RetryPolicy(initial_s=0.1)
