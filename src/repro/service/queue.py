"""Durable, crash-safe job queue of experiment specs on a filesystem.

The queue half of a :class:`~repro.service.store.ServiceStore`: a plain
directory that any number of submitters and worker daemons share with no
broker process.  Durability and concurrency-safety come from three file
idioms only — so the queue works on any POSIX filesystem, survives
``kill -9`` at every point, and recovers leases from crashed workers:

* **atomic publish** — job and lease records are JSON files written to a
  per-pid temp name and ``os.replace``-d into place; readers see a
  complete old record or a complete new one, never a torn write;
* **atomic create** — submission materializes the job file via
  ``os.link`` (fails if the job already exists), which is what
  deduplicates concurrent identical submissions: the job id *is* the
  spec hash, so two racing ``submit()`` calls of one spec converge on
  one job with exactly one winner;
* **advisory ``flock``** — every state transition (lease, heartbeat,
  complete, fail) runs under an exclusive lock on ``<root>/lock``, so
  two workers can never lease the same job; where ``fcntl`` is missing
  the lock degrades to an ``O_EXCL`` spin file.

Leases carry an expiry deadline: a worker that stops heartbeating
(crashed, wedged, unplugged) loses the job when its deadline passes and
the next :meth:`JobQueue.lease` call re-leases it — up to
``max_attempts`` executions, after which the job is marked ``failed``.
Because execution results are content-addressed and runs are
bit-deterministic, a re-leased job reproduces the crashed attempt's
result exactly.

Every transition is additionally appended to ``journal.jsonl`` — an
append-only audit log (one JSON object per line) that tests and
operators use to answer "how many times did this actually execute?".
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

try:  # pragma: no cover - exercised per-platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.api.spec import ExperimentSpec, spec_hash

#: Seconds a lease stays valid between heartbeats before the job is
#: considered abandoned and eligible for re-lease.
DEFAULT_LEASE_TTL = 30.0
#: Executions (initial lease + expiry take-overs) before a job is
#: declared failed rather than re-leased again.
DEFAULT_MAX_ATTEMPTS = 3

#: The lifecycle states a job record can be in.
JOB_STATES = ("pending", "running", "done", "failed")


class QueueError(RuntimeError):
    """A queue operation could not be performed (corrupt/unknown job)."""


@dataclass(frozen=True)
class JobRecord:
    """One durable job: a spec waiting for (or done with) execution.

    ``job_id`` is the spec's content hash
    (:func:`~repro.api.spec.spec_hash`), which makes the queue
    content-addressed: identical specs are one job.  ``spec_data`` is
    the spec's dict form, so the record file alone regenerates the
    experiment.
    """

    job_id: str
    name: str
    kind: str
    spec_data: dict
    submitted: float
    state: str = "pending"
    attempts: int = 0
    error: Optional[str] = None

    def spec(self) -> ExperimentSpec:
        """Rebuild the submitted :class:`~repro.api.spec.ExperimentSpec`."""
        return ExperimentSpec.from_dict(self.spec_data)


@dataclass(frozen=True)
class LeaseRecord:
    """One worker's time-bounded claim on a running job."""

    job_id: str
    worker: str
    acquired: float
    deadline: float
    beats: int = 0

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline passed (the job is eligible for re-lease)."""
        return (now if now is not None else time.time()) >= self.deadline


class JobQueue:
    """The durable queue over one directory (see module docstring).

    Instances are cheap and picklable (paths + two numbers); every
    operation re-reads the filesystem, so any number of processes can
    share one queue directory.
    """

    def __init__(self, root: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)

    # -- paths ------------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        """Directory of the per-job record files."""
        return self.root / "jobs"

    @property
    def leases_dir(self) -> Path:
        """Directory of the per-job lease files."""
        return self.root / "leases"

    @property
    def journal_path(self) -> Path:
        """The append-only transition journal."""
        return self.root / "journal.jsonl"

    @property
    def lock_path(self) -> Path:
        """The advisory lock file serializing state transitions."""
        return self.root / "lock"

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _lease_path(self, job_id: str) -> Path:
        return self.leases_dir / f"{job_id}.json"

    def _mkdirs(self) -> None:
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.leases_dir.mkdir(parents=True, exist_ok=True)

    # -- locking / atomic files -------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock over every state transition."""
        self._mkdirs()
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            else:  # pragma: no cover - non-POSIX spin fallback
                spin = self.root / "lock.spin"
                while True:
                    try:
                        spin_fd = os.open(spin,
                                          os.O_CREAT | os.O_EXCL | os.O_RDWR)
                        os.close(spin_fd)
                        break
                    except FileExistsError:
                        time.sleep(0.005)
                try:
                    yield
                finally:
                    try:
                        spin.unlink()
                    except OSError:
                        pass
        finally:
            os.close(fd)

    def _write_json(self, path: Path, data: dict) -> None:
        """Atomic record publish: per-pid temp + ``os.replace``."""
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[dict]:
        try:
            data = json.loads(path.read_text())
            return data if isinstance(data, dict) else None
        except (OSError, ValueError):
            return None

    def _journal(self, event: str, job_id: str,
                 worker: Optional[str] = None,
                 now: Optional[float] = None, **extra) -> None:
        """Append one transition line (best-effort; audit, not state)."""
        entry = {"t": now if now is not None else time.time(),
                 "event": event, "job_id": job_id}
        if worker is not None:
            entry["worker"] = worker
        entry.update(extra)
        try:
            with open(self.journal_path, "a") as journal:
                journal.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - audit only
            pass

    # -- record (de)serialisation -----------------------------------------

    @staticmethod
    def _job_from(data: dict) -> JobRecord:
        return JobRecord(
            job_id=str(data["job_id"]), name=str(data.get("name", "?")),
            kind=str(data.get("kind", "?")),
            spec_data=dict(data.get("spec", {})),
            submitted=float(data.get("submitted", 0.0)),
            state=str(data.get("state", "pending")),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"))

    @staticmethod
    def _job_to(record: JobRecord) -> dict:
        return {"job_id": record.job_id, "name": record.name,
                "kind": record.kind, "spec": record.spec_data,
                "submitted": record.submitted, "state": record.state,
                "attempts": record.attempts, "error": record.error}

    @staticmethod
    def _lease_from(data: dict) -> LeaseRecord:
        return LeaseRecord(
            job_id=str(data["job_id"]), worker=str(data["worker"]),
            acquired=float(data.get("acquired", 0.0)),
            deadline=float(data.get("deadline", 0.0)),
            beats=int(data.get("beats", 0)))

    @staticmethod
    def _lease_to(lease: LeaseRecord) -> dict:
        return {"job_id": lease.job_id, "worker": lease.worker,
                "acquired": lease.acquired, "deadline": lease.deadline,
                "beats": lease.beats}

    # -- submission --------------------------------------------------------

    def submit(self, spec: ExperimentSpec,
               now: Optional[float] = None) -> tuple[str, bool]:
        """Enqueue ``spec``; returns ``(job_id, created)``.

        The job id is the spec hash, and creation is atomic
        (``os.link``), so concurrent submissions of an identical spec
        all receive the same id and exactly one of them creates the job
        — the dedup guarantee the front door builds on.  Re-submitting
        an already-known spec returns ``created=False`` and changes
        nothing (use :meth:`requeue` to retry a failed job).
        """
        job_id = spec_hash(spec)
        path = self._job_path(job_id)
        if path.exists():
            return job_id, False
        stamp = now if now is not None else time.time()
        record = JobRecord(job_id=job_id, name=spec.name, kind=spec.kind,
                           spec_data=spec.to_dict(), submitted=stamp)
        self._mkdirs()
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self._job_to(record), indent=1,
                                  sort_keys=True))
        try:
            os.link(tmp, path)  # atomic create-if-absent
        except FileExistsError:
            return job_id, False
        finally:
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
        self._journal("submit", job_id, now=stamp, name=spec.name)
        return job_id, True

    def requeue(self, job_id: str, now: Optional[float] = None) -> bool:
        """Return a ``failed``/``done`` job to ``pending`` (fresh attempts).

        Used when a job must execute again — its artifact was evicted,
        or a failed job should be retried.  Returns ``False`` for
        unknown jobs and no-ops on jobs already pending/running.
        """
        with self._locked():
            data = self._read_json(self._job_path(job_id))
            if data is None:
                return False
            record = self._job_from(data)
            if record.state in ("pending", "running"):
                return True
            fresh = JobRecord(
                job_id=record.job_id, name=record.name, kind=record.kind,
                spec_data=record.spec_data, submitted=record.submitted,
                state="pending", attempts=0, error=None)
            self._write_json(self._job_path(job_id), self._job_to(fresh))
            self._journal("requeue", job_id, now=now)
            return True

    # -- inspection --------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        """The job record, or ``None`` for unknown/corrupt ids."""
        data = self._read_json(self._job_path(job_id))
        return self._job_from(data) if data else None

    def lease_of(self, job_id: str) -> Optional[LeaseRecord]:
        """The current lease on a job, if any (may be expired)."""
        data = self._read_json(self._lease_path(job_id))
        return self._lease_from(data) if data else None

    def jobs(self) -> list[JobRecord]:
        """Every job record, oldest submission first."""
        records = []
        if self.jobs_dir.is_dir():
            for path in self.jobs_dir.glob("*.json"):
                data = self._read_json(path)
                if data:
                    records.append(self._job_from(data))
        records.sort(key=lambda record: (record.submitted, record.job_id))
        return records

    def counts(self) -> dict[str, int]:
        """Job tally by state (every state present, zero-filled)."""
        tally = {state: 0 for state in JOB_STATES}
        for record in self.jobs():
            tally[record.state] = tally.get(record.state, 0) + 1
        return tally

    def journal_events(self) -> list[dict]:
        """Every parseable journal line, in append order.

        Torn lines are skipped wherever they sit: a crash (or a
        truncating copy) can shear the *head* of the file as easily as
        the tail, and a sheared head may not even decode as UTF-8 —
        so decoding happens per line, and an undecodable or unparseable
        line anywhere never takes down replay of the rest.
        """
        events = []
        try:
            raw = self.journal_path.read_bytes()
        except OSError:
            return events
        for line in raw.splitlines():
            try:
                entry = json.loads(line.decode())
            except (UnicodeDecodeError, ValueError):
                continue
            if isinstance(entry, dict):
                events.append(entry)
        return events

    # -- the worker protocol ----------------------------------------------

    def lease(self, worker: str, now: Optional[float] = None,
              ) -> Optional[tuple[JobRecord, LeaseRecord]]:
        """Claim the oldest runnable job for ``worker`` (or ``None``).

        Runnable means *pending*, or *running* with an **expired** lease
        (the holder stopped heartbeating — crash recovery).  Taking over
        an expired lease counts as a new attempt; a job whose attempts
        reach ``max_attempts`` is marked ``failed`` instead of leased
        again, so a spec that reliably kills workers cannot loop
        forever.  Atomic under the queue lock: one caller wins each job.
        """
        stamp = now if now is not None else time.time()
        with self._locked():
            for record in self.jobs():
                if record.state not in ("pending", "running"):
                    continue
                lease = self.lease_of(record.job_id)
                if lease is not None and not lease.expired(stamp):
                    continue
                if record.state == "running":
                    # The holder went dark: journal the expiry, then
                    # either retry or give up on the job.
                    self._journal("expire", record.job_id,
                                  worker=lease.worker if lease else None,
                                  now=stamp)
                    if record.attempts >= self.max_attempts:
                        failed = JobRecord(
                            job_id=record.job_id, name=record.name,
                            kind=record.kind, spec_data=record.spec_data,
                            submitted=record.submitted, state="failed",
                            attempts=record.attempts,
                            error=f"lease expired after "
                                  f"{record.attempts} attempt(s)")
                        self._write_json(self._job_path(record.job_id),
                                         self._job_to(failed))
                        try:
                            self._lease_path(record.job_id).unlink()
                        except OSError:
                            pass
                        self._journal("gave-up", record.job_id, now=stamp)
                        continue
                fresh_lease = LeaseRecord(
                    job_id=record.job_id, worker=worker, acquired=stamp,
                    deadline=stamp + self.lease_ttl)
                running = JobRecord(
                    job_id=record.job_id, name=record.name,
                    kind=record.kind, spec_data=record.spec_data,
                    submitted=record.submitted, state="running",
                    attempts=record.attempts + 1, error=None)
                self._write_json(self._lease_path(record.job_id),
                                 self._lease_to(fresh_lease))
                self._write_json(self._job_path(record.job_id),
                                 self._job_to(running))
                self._journal("lease", record.job_id, worker=worker,
                              now=stamp, attempt=running.attempts)
                return running, fresh_lease
        return None

    def heartbeat(self, job_id: str, worker: str,
                  now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on a job by one TTL.

        Returns ``False`` — and extends nothing — when the lease is
        gone or now belongs to another worker (it expired and was
        re-leased): the caller lost the job and should stop treating
        its execution as authoritative.
        """
        stamp = now if now is not None else time.time()
        with self._locked():
            lease = self.lease_of(job_id)
            if lease is None or lease.worker != worker:
                return False
            extended = LeaseRecord(
                job_id=lease.job_id, worker=lease.worker,
                acquired=lease.acquired,
                deadline=stamp + self.lease_ttl, beats=lease.beats + 1)
            self._write_json(self._lease_path(job_id),
                             self._lease_to(extended))
            return True

    def complete(self, job_id: str, worker: str,
                 now: Optional[float] = None) -> bool:
        """Mark a job ``done`` and release ``worker``'s lease.

        Returns ``False`` for a stale completion (the lease moved to
        another worker after expiry) — the job record is left to the
        current holder.  A stale completion is harmless by design: the
        result already landed in the content-addressed artifact store,
        bit-identical to what the new holder will produce.
        """
        stamp = now if now is not None else time.time()
        with self._locked():
            lease = self.lease_of(job_id)
            if lease is None or lease.worker != worker:
                self._journal("stale-done", job_id, worker=worker,
                              now=stamp)
                return False
            data = self._read_json(self._job_path(job_id))
            if data is None:
                raise QueueError(f"job {job_id!r} has no record")
            record = self._job_from(data)
            done = JobRecord(
                job_id=record.job_id, name=record.name, kind=record.kind,
                spec_data=record.spec_data, submitted=record.submitted,
                state="done", attempts=record.attempts, error=None)
            self._write_json(self._job_path(job_id), self._job_to(done))
            try:
                self._lease_path(job_id).unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
            self._journal("done", job_id, worker=worker, now=stamp)
            return True

    def fail(self, job_id: str, worker: str, error: str,
             now: Optional[float] = None) -> bool:
        """Record an execution failure and release ``worker``'s lease.

        The job returns to ``pending`` while attempts remain (the error
        text rides along for ``status()``), and becomes terminally
        ``failed`` once ``max_attempts`` executions have been burned.
        Stale failures (lease re-assigned) are ignored, like
        :meth:`complete`.
        """
        stamp = now if now is not None else time.time()
        with self._locked():
            lease = self.lease_of(job_id)
            if lease is None or lease.worker != worker:
                self._journal("stale-fail", job_id, worker=worker,
                              now=stamp)
                return False
            data = self._read_json(self._job_path(job_id))
            if data is None:
                raise QueueError(f"job {job_id!r} has no record")
            record = self._job_from(data)
            state = "failed" if record.attempts >= self.max_attempts \
                else "pending"
            updated = JobRecord(
                job_id=record.job_id, name=record.name, kind=record.kind,
                spec_data=record.spec_data, submitted=record.submitted,
                state=state, attempts=record.attempts, error=error)
            self._write_json(self._job_path(job_id),
                             self._job_to(updated))
            try:
                self._lease_path(job_id).unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
            self._journal("fail", job_id, worker=worker, now=stamp,
                          terminal=state == "failed")
            return True
