"""The on-disk service store: one directory, queue plus artifacts.

A *store* is the unit of sharing between the service front door and any
number of worker daemons — a plain directory (local disk for one
machine, a shared filesystem for many) holding two independent halves::

    <store>/
      queue/        # durable job queue (repro.service.queue)
        journal.jsonl
        jobs/<job_id>.json
        leases/<job_id>.json
      artifacts/    # shared result store (repro.api.cache.ResultCache)
        index.json
        objects/<spec_hash>.<code_version>.pkl

Everything in the store is keyed by content: job ids *are* spec hashes
(which is what makes duplicate submissions share one execution), and
artifacts are the ordinary ``(spec_hash, code_version)`` cache entries —
so a result produced by a worker daemon is indistinguishable from one
produced by a local :func:`repro.api.run.run` call against the same
store.

Resolution order for the store location: explicit argument >
``$REPRO_SERVICE_STORE`` > ``~/.cache/repro-service``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.api.cache import ResultCache

#: Environment variable relocating the default service store.
STORE_ENV = "REPRO_SERVICE_STORE"


def default_store_dir() -> Path:
    """The store root: ``$REPRO_SERVICE_STORE`` or ``~/.cache/repro-service``."""
    override = os.environ.get(STORE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-service"


@dataclass(frozen=True)
class ServiceStore:
    """Paths and accessors of one service store directory.

    Instances are cheap and picklable (one ``Path``); the queue and
    cache they hand out coordinate purely through the filesystem, so any
    number of processes may hold a ``ServiceStore`` over the same root.
    """

    root: Path = field(default_factory=default_store_dir)

    def __post_init__(self):
        # Accept plain strings (CLI args, env values) everywhere a
        # store is constructed, not only through resolve().
        if not isinstance(self.root, Path):
            object.__setattr__(self, "root", Path(self.root))

    @classmethod
    def resolve(cls, store: Union[None, str, Path,
                                  "ServiceStore"]) -> "ServiceStore":
        """Normalize a store argument: path-like, instance, or default."""
        if isinstance(store, ServiceStore):
            return store
        if store is None:
            return cls()
        return cls(root=Path(store))

    @property
    def queue_dir(self) -> Path:
        """Directory of the durable job queue."""
        return self.root / "queue"

    @property
    def artifacts_dir(self) -> Path:
        """Directory of the shared artifact (result) store."""
        return self.root / "artifacts"

    def queue(self, lease_ttl: Optional[float] = None,
              max_attempts: Optional[int] = None):
        """The store's :class:`~repro.service.queue.JobQueue`."""
        from repro.service.queue import JobQueue
        kwargs = {}
        if lease_ttl is not None:
            kwargs["lease_ttl"] = lease_ttl
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        return JobQueue(self.queue_dir, **kwargs)

    def cache(self) -> ResultCache:
        """The store's shared artifact store (a plain result cache)."""
        return ResultCache(self.artifacts_dir)
