"""The async front door: submit specs, poll status, fetch results.

:class:`ServiceClient` is what application code (and
``run(spec, executor="service")``) talks to.  Three calls, all keyed by
the job id — which *is* the spec hash, so the client never needs any
server-assigned token:

* :meth:`~ServiceClient.submit` — enqueue a spec and return its id.
  Deduplicating by construction: concurrent submissions of an identical
  spec converge on one queue entry and one execution, and a spec whose
  artifact already exists (a *warm* re-submit) is answered from the
  store in milliseconds without touching the queue at all;
* :meth:`~ServiceClient.status` — where a job is
  (``pending``/``running``/``done``/``failed``, attempts, lease holder);
* :meth:`~ServiceClient.result` — the stored
  :class:`~repro.api.run.Result`, optionally blocking until a worker
  publishes it.

The client is pure filesystem — it shares the
:class:`~repro.service.store.ServiceStore` with the workers, so no
server process is required; :mod:`repro.service.server` adds an HTTP
face over the same store for remote submitters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.api.run import Result
from repro.api.spec import ExperimentSpec, spec_hash
from repro.api.validate import validate
from repro.service.retry import RetryPolicy
from repro.service.store import ServiceStore

#: Default initial polling period while blocking on a result; the
#: actual poll spacing follows a :class:`~repro.service.retry.RetryPolicy`
#: curve seeded with this value (exponential up to its ``max_s``).
RESULT_POLL_S = 0.1


class ServiceError(RuntimeError):
    """A service operation failed (unknown job, failed job, timeout)."""

    def __init__(self, job_id: str, detail: str):
        super().__init__(f"job {job_id[:12]}: {detail}")
        self.job_id = job_id


class JobTimeoutError(ServiceError):
    """:meth:`ServiceClient.result` hit its deadline before a result.

    A :class:`ServiceError` subclass, so existing ``except ServiceError``
    handlers keep working; ``state`` carries the job's last observed
    queue state (``"pending"``/``"running"``) for programmatic triage.
    """

    def __init__(self, job_id: str, detail: str, state: str = "pending"):
        super().__init__(job_id, detail)
        self.state = state


@dataclass(frozen=True)
class JobStatus:
    """One job's current position in the pipeline.

    ``state`` is a queue state (:data:`repro.service.queue.JOB_STATES`);
    ``cached`` reports whether the artifact store already holds the
    result (always ``True`` once ``state == "done"``, and also for
    warm submissions that never queued — then ``state`` is ``"done"``
    with ``attempts == 0``).
    """

    job_id: str
    state: str
    attempts: int = 0
    error: Optional[str] = None
    worker: Optional[str] = None
    cached: bool = False


class ServiceClient:
    """Submit/inspect/fetch interface over one service store."""

    def __init__(self, store: Union[None, str, ServiceStore] = None):
        self.store = ServiceStore.resolve(store)
        self.queue = self.store.queue()
        self.cache = self.store.cache()

    def submit(self, spec: ExperimentSpec) -> str:
        """Enqueue ``spec`` for execution; returns its job id.

        The id is the spec's content hash, so re-submitting — from this
        client or any other — always yields the same id.  A warm spec
        (artifact already stored) is *not* queued: the id answers
        :meth:`result` immediately from the store.  A *cold* spec whose
        job record is nonetheless ``done`` — the artifact was evicted,
        or belongs to an older code version — is requeued for a fresh
        execution.  Invalid specs are rejected here, before anything is
        enqueued.
        """
        validate(spec)
        job_id = spec_hash(spec)
        if self.cache.has(job_id):
            return job_id
        _, created = self.queue.submit(spec)
        if not created:
            record = self.queue.job(job_id)
            if record is not None and record.state == "done":
                # The record says done but the artifact is gone — LRU
                # eviction, or it was published under an older code
                # version.  Nothing will ever publish one for this
                # release, so blocking on result() would hang forever;
                # send the job through a worker again.
                self.queue.requeue(job_id)
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """Where ``job_id`` is; raises :class:`ServiceError` if unknown."""
        cached = self.cache.has(job_id)
        record = self.queue.job(job_id)
        if record is None:
            if cached:
                return JobStatus(job_id=job_id, state="done", cached=True)
            raise ServiceError(job_id, "unknown job (never submitted "
                                       "to this store?)")
        lease = self.queue.lease_of(job_id)
        return JobStatus(
            job_id=job_id,
            state="done" if cached else record.state,
            attempts=record.attempts, error=record.error,
            worker=lease.worker if lease is not None else None,
            cached=cached)

    def result(self, job_id: str, timeout: Optional[float] = None,
               poll_s: float = RESULT_POLL_S,
               retry: Optional[RetryPolicy] = None) -> Result:
        """The stored result of ``job_id``.

        Returns immediately when the artifact exists (the
        milliseconds-for-warm-hashes path).  Otherwise blocks — polling
        the store under an exponential backoff-with-jitter curve — until
        a worker publishes it, the job turns terminally ``failed``
        (raises with the recorded error), or ``timeout`` seconds pass
        (raises :class:`JobTimeoutError`).  ``timeout=0`` is a pure
        non-blocking probe.

        ``retry`` overrides the polling curve; by default polls start at
        ``poll_s`` and double up to a 2 s ceiling, jittered per job id
        so many clients waiting on one store decorrelate.
        """
        if retry is None:
            retry = RetryPolicy(initial_s=poll_s,
                                max_s=max(poll_s, 2.0))
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        attempt = 0
        while True:
            payload = self.cache.get_object(job_id)
            if payload is not None:
                if not isinstance(payload, Result):
                    raise ServiceError(
                        job_id, f"artifact is not a Result "
                                f"({type(payload).__name__})")
                return payload
            record = self.queue.job(job_id)
            if record is None:
                raise ServiceError(
                    job_id, "unknown job (never submitted, or its "
                            "artifact was evicted)")
            if record.state == "failed":
                raise ServiceError(
                    job_id, f"execution failed after {record.attempts} "
                            f"attempt(s): {record.error}")
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeoutError(
                    job_id, f"no result within {timeout} s (job is "
                            f"{record.state}; are workers running?)",
                    state=record.state)
            wait = retry.interval(attempt, key=job_id)
            if deadline is not None:
                wait = min(wait, max(deadline - time.monotonic(), 0.0))
            time.sleep(wait)
            attempt += 1

    def run(self, spec: ExperimentSpec,
            timeout: Optional[float] = None) -> Result:
        """Submit and block for the result — the ``executor="service"``
        backend of :func:`repro.api.run.run`.

        Requires at least one :class:`~repro.service.worker.WorkerDaemon`
        on the same store (unless the spec is warm); pass ``timeout`` to
        bound the wait.
        """
        return self.result(self.submit(spec), timeout=timeout)
