"""The ``faults`` spec section: a declarative, seeded fault schedule.

A :class:`FaultPlan` names *how often* each injection site misbehaves
and the root ``seed`` every fault decision derives from.  It is plain
frozen data — the same shape as every other
:class:`~repro.api.spec.ExperimentSpec` section — so a fault schedule
rides inside the spec JSON, hashes into the spec's content address, and
reproduces bit-identically on any executor (see
:class:`repro.faults.inject.FaultInjector` for the seeding contract).

All rates are probabilities in ``[0, 1]``; a plan with every rate at
``0.0`` is *disabled* and injects nothing (the injector is never even
activated, so the overhead on clean runs is one attribute check).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Injection sites, mapped to the :class:`FaultPlan` field holding each
#: site's rate.  Keys are the ``site`` strings passed to
#: :meth:`repro.faults.inject.FaultInjector.fire`.
SITES = {
    "worker.crash": "worker_crash",
    "worker.lease": "lease_expiry",
    "transport.frame": "frame_loss",
    "cache.corrupt": "cache_corrupt",
    "telemetry.drop": "telemetry_drop",
    "telemetry.delay": "telemetry_delay",
    "telemetry.dup": "telemetry_dup",
}


@dataclass(frozen=True)
class FaultPlan:
    """Per-site fault rates plus the root seed of the fault schedule.

    * ``worker_crash`` — a worker raises mid-job before publishing
      (exercises queue retries and attempt budgets);
    * ``lease_expiry`` — a worker finishes the work but dies before
      publishing, so its lease expires and another worker takes over
      (exercises exactly-once publication);
    * ``frame_loss`` — a shared-memory series frame is gone by the time
      the parent adopts it (exercises the ``FrameUnavailableError``
      in-process re-execution fallback);
    * ``cache_corrupt`` — a stored artifact reads back corrupt
      (exercises the discard-and-recompute path);
    * ``telemetry_drop`` / ``telemetry_delay`` / ``telemetry_dup`` —
      a home's per-epoch telemetry batch is lost, arrives up to
      ``max_delay_epochs`` epochs late, or is journaled twice
      (exercises the online plane's degradation ladder).
    """

    seed: int = 0
    worker_crash: float = 0.0
    lease_expiry: float = 0.0
    frame_loss: float = 0.0
    cache_corrupt: float = 0.0
    telemetry_drop: float = 0.0
    telemetry_delay: float = 0.0
    telemetry_dup: float = 0.0
    max_delay_epochs: int = 2

    def rate_of(self, site: str) -> float:
        """The configured rate of one injection site (see :data:`SITES`)."""
        return float(getattr(self, SITES[site]))

    @property
    def enabled(self) -> bool:
        """Whether any site has a non-zero rate (else the plan is inert)."""
        return any(self.rate_of(site) > 0.0 for site in SITES)


#: Names of the rate-carrying float fields (everything except ``seed``
#: and ``max_delay_epochs``) — the validator and spec serializer coerce
#: exactly these to float.
RATE_FIELDS = tuple(f.name for f in fields(FaultPlan)
                    if f.name not in ("seed", "max_delay_epochs"))
