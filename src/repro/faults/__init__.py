"""Seeded, deterministic fault injection across the execution stack.

The plane has two halves:

* :class:`~repro.faults.plan.FaultPlan` — the declarative spec section
  (per-site rates + root seed) that rides inside an
  :class:`~repro.api.spec.ExperimentSpec`;
* :class:`~repro.faults.inject.FaultInjector` — the runtime that turns
  the plan into pure-hash fault decisions, activated per run with
  :func:`~repro.faults.inject.fault_scope`.

Injection sites live where the real failure would: worker crash /
lease expiry in :mod:`repro.service.worker`, shared-memory frame loss
in :mod:`repro.neighborhood.shard`, artifact corruption in
:mod:`repro.api.cache`, and telemetry drop/delay/duplicate storms in
:mod:`repro.neighborhood.online`.  See ``docs/faults.md`` for the
seeding contract, the degradation ladder, and the invariant table.
"""

from repro.faults.inject import (
    FaultInjector,
    InjectedFault,
    fault_scope,
    get_injector,
    last_injector,
)
from repro.faults.plan import RATE_FIELDS, SITES, FaultPlan

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "RATE_FIELDS",
    "SITES",
    "fault_scope",
    "get_injector",
    "last_injector",
]
