"""Deterministic fault injection: one hash decides every fault.

The seeding contract
--------------------

Every fault decision is a *pure function* of ``(plan.seed, site, key)``:

    fired  ⇔  sha256(f"{seed}:{site}:{key}")[:8] / 2**64  <  rate(site)

No RNG state is carried between decisions, so the schedule is

* **call-order free** — threads, shards, and retries can probe sites in
  any interleaving and get the same answers;
* **partition invariant** for sites whose keys name logical work (a
  telemetry batch is keyed ``e{epoch}:{home}``, a job attempt
  ``{job_id}:a{attempt}``) — the same seed fires the same faults across
  jobs counts, shard sizes, and executors;
* **reproducible** — re-running with the same plan replays the exact
  fault schedule, which is what lets the fault-matrix suite assert
  bit-identical schedules and final digests.

Sites whose keys name *execution shape* (a shared-memory frame exists
only when the fleet shards) are deterministic per shape rather than
across shapes; ``docs/faults.md`` tabulates which is which.

Activation
----------

An injector is installed process-wide with :func:`fault_scope` (the
execution layer wraps every spec run in one, see
``repro.api.run._execute``); sites look it up with :func:`get_injector`
— a single module-global read when no plan is active, which is why the
disabled-injector overhead is unmeasurable (the ``faults`` bench group
keeps it under 1%).  :func:`last_injector` keeps the most recent
injector alive after the run so tests can inspect the realized
schedule.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.plan import SITES, FaultPlan


class InjectedFault(RuntimeError):
    """Raised at an injection site to simulate a crash (``worker.crash``)."""

    def __init__(self, site: str, key: str):
        super().__init__(f"injected fault at {site} ({key})")
        self.site = site
        self.key = key


class FaultInjector:
    """Stateless-hash fault decisions for one :class:`FaultPlan`.

    The only mutable state is bookkeeping: occurrence counters (so a
    site can key repeated probes of the same object distinctly) and the
    set of decisions that fired (the realized *schedule*).  Both are
    lock-guarded, so sites may probe from worker threads.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, str], int] = {}
        self._fired: dict[tuple[str, str], bool] = {}

    def _unit(self, site: str, key: str) -> float:
        """The decision variate in ``[0, 1)`` for ``(site, key)``."""
        text = f"{self.plan.seed}:{site}:{key}"
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def fire(self, site: str, key: str) -> bool:
        """Whether the fault at ``(site, key)`` fires under this plan.

        Pure in ``(seed, site, key)``; fired decisions are recorded in
        :meth:`schedule` (re-probing the same pair records it once).
        """
        if site not in SITES:
            raise KeyError(f"unknown injection site {site!r}")
        rate = self.plan.rate_of(site)
        if rate <= 0.0:
            return False
        fired = self._unit(site, key) < rate
        if fired:
            with self._lock:
                self._fired[(site, key)] = True
        return fired

    def delay_epochs(self, key: str) -> int:
        """How many epochs late a delayed telemetry batch arrives.

        In ``1..plan.max_delay_epochs``, derived from an independent
        hash of the same key so the extent is as reproducible as the
        decision itself.
        """
        span = max(int(self.plan.max_delay_epochs), 1)
        text = f"{self.plan.seed}:telemetry.delay:{key}:extent"
        digest = hashlib.sha256(text.encode()).digest()
        return 1 + int.from_bytes(digest[:8], "big") % span

    def occurrence(self, site: str, key: str) -> int:
        """The 0-based count of probes of ``(site, key)`` so far.

        Lets a site distinguish repeated operations on the same object
        (e.g. successive reads of one cache digest) without any global
        ordering assumption beyond the site's own call sequence.
        """
        with self._lock:
            n = self._counters.get((site, key), 0)
            self._counters[(site, key)] = n + 1
            return n

    def schedule(self, prefix: str = "") -> tuple[tuple[str, str], ...]:
        """The realized fault schedule: sorted, deduplicated decisions.

        ``prefix`` filters by site (e.g. ``"telemetry."`` for the
        partition-invariant telemetry subset).
        """
        with self._lock:
            pairs = [pair for pair in self._fired if pair[0].startswith(prefix)]
        return tuple(sorted(pairs))

    def schedule_digest(self, prefix: str = "") -> str:
        """SHA-256 fingerprint of :meth:`schedule` for equality locks."""
        payload = repr(self.schedule(prefix)).encode()
        return hashlib.sha256(payload).hexdigest()


_ACTIVE: Optional[FaultInjector] = None
_LAST: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    """The process-wide active injector, or ``None`` on clean runs."""
    return _ACTIVE


def last_injector() -> Optional[FaultInjector]:
    """The most recently activated injector (survives its scope).

    Test hook: after a faulted run returns, the realized schedule is
    still inspectable here even though the scope already deactivated.
    """
    return _LAST


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultInjector]]:
    """Activate a fault plan for the duration of a ``with`` block.

    ``None`` or a disabled plan (all rates zero) activates nothing.
    Re-entering with the *same* plan reuses the active injector, so an
    outer run scope and an inner worker scope share one schedule and
    one set of occurrence counters.
    """
    global _ACTIVE, _LAST
    if plan is None or not plan.enabled:
        yield None
        return
    if _ACTIVE is not None and _ACTIVE.plan == plan:
        yield _ACTIVE
        return
    previous = _ACTIVE
    injector = FaultInjector(plan)
    _ACTIVE = injector
    _LAST = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
