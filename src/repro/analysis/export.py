"""Exporting results to CSV / JSON for external analysis and plotting.

The simulator deliberately has no plotting dependencies; these writers
produce files any plotting stack (gnuplot, matplotlib, a spreadsheet) can
consume to redraw the paper's figures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.loadstats import LoadStats
from repro.sim.monitor import StepSeries


def series_to_csv(series: StepSeries, path: str | Path,
                  start: float, end: float, step: float,
                  time_scale: float = 60.0,
                  value_scale: float = 1e-3,
                  headers: tuple[str, str] = ("time_min", "load_kw"),
                  ) -> Path:
    """Sample a step series onto a grid and write ``time,value`` rows."""
    path = Path(path)
    grid, values = series.sample_grid(start, end, step)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for t, v in zip(grid, values):
            writer.writerow([f"{t / time_scale:.4f}",
                             f"{v * value_scale:.6f}"])
    return path


def multi_series_to_csv(series_map: dict[str, StepSeries],
                        path: str | Path, start: float, end: float,
                        step: float, time_scale: float = 60.0,
                        value_scale: float = 1e-3,
                        constants: Optional[dict[str, str]] = None) -> Path:
    """Several series on one grid, one column each (Figure 2(a) format).

    ``constants`` appends fixed-value trailing columns (e.g. the
    ``spec_hash`` provenance column) — same value on every row, so the
    file stays self-describing after being split or concatenated.
    """
    path = Path(path)
    names = list(series_map)
    sampled = {name: series_map[name].sample_grid(start, end, step)[1]
               for name in names}
    constants = constants or {}
    import numpy as np
    grid = np.arange(start, end, step)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_min", *names, *constants])
        for i, t in enumerate(grid):
            writer.writerow([f"{t / time_scale:.4f}",
                             *(f"{sampled[n][i] * value_scale:.6f}"
                               for n in names),
                             *constants.values()])
    return path


def spec_block(spec) -> dict:
    """The provenance block exporters embed: hash + regenerable JSON.

    ``canonical`` is the spec's canonical dict — feed it back through
    ``ExperimentSpec.from_dict`` (or save it and ``repro run --spec``)
    to regenerate the artefact this file records.
    """
    import repro
    from repro.api.spec import canonical_json, spec_hash
    return {
        "hash": spec_hash(spec),
        "schema_version": spec.schema_version,
        "code_version": repro.__version__,
        "canonical": json.loads(canonical_json(spec)),
    }


def stats_to_dict(stats: LoadStats) -> dict:
    """A JSON-ready view of one :class:`LoadStats`."""
    return {
        "peak_kw": stats.peak_kw,
        "mean_kw": stats.mean_kw,
        "std_kw": stats.std_kw,
        "min_kw": stats.min_kw,
        "max_step_kw": stats.max_step_kw,
        "energy_kwh": stats.energy_kwh,
        "p95_kw": stats.p95_kw,
        "window": [stats.start, stats.end],
    }


def run_result_to_json(result, path: str | Path,
                       sample_step: Optional[float] = 60.0,
                       spec=None) -> Path:
    """Persist one :class:`~repro.core.system.RunResult` as JSON.

    Includes the config, load statistics, an optional sampled load trace,
    the per-request lifecycle log and a ``spec`` provenance block (hash +
    canonical spec JSON) so the file can regenerate itself.  ``spec`` is
    the originating :class:`~repro.api.spec.ExperimentSpec`; when omitted
    it is derived losslessly from the run's config.
    """
    path = Path(path)
    if spec is None:
        from repro.api.spec import spec_from_config
        spec = spec_from_config(result.config, until=result.horizon)
    scenario = result.config.scenario
    payload = {
        "spec": spec_block(spec),
        "config": {
            "scenario": scenario.name,
            "n_devices": scenario.n_devices,
            "device_power_w": scenario.device_power_w,
            "min_dcd_s": scenario.min_dcd,
            "max_dcp_s": scenario.max_dcp,
            "arrival_rate_per_hour": scenario.arrival_rate_per_hour,
            "policy": result.config.policy,
            "cp_fidelity": result.config.cp_fidelity,
            "seed": result.config.seed,
            "horizon_s": result.horizon,
        },
        "stats": stats_to_dict(result.stats()),
        "requests": [
            {
                "request_id": r.request_id,
                "device_id": r.device_id,
                "arrival_s": r.arrival_time,
                "demand_cycles": r.demand_cycles,
                "state": r.state.value,
                "admitted_s": r.admitted_at,
                "first_burst_s": r.first_burst_at,
                "completed_s": r.completed_at,
            }
            for r in result.requests
        ],
    }
    if result.cp_stats is not None:
        payload["cp"] = {
            "rounds_total": result.cp_stats.rounds_total,
            "rounds_active": result.cp_stats.rounds_active,
            "delivery_ratio": result.cp_stats.delivery_ratio,
        }
    if result.at_stats is not None:
        payload["mac"] = {
            "reports_sent": result.at_stats.reports_sent,
            "reports_delivered": result.at_stats.reports_delivered,
            "report_delivery_ratio":
                result.at_stats.report_delivery_ratio,
            "collection_drops": result.at_stats.collection_drops,
            "dropped_channel_busy":
                result.at_stats.dropped_channel_busy,
            "dropped_no_ack": result.at_stats.dropped_no_ack,
        }
    if sample_step is not None:
        grid, values = result.load_w.sample_grid(0.0, result.horizon,
                                                 sample_step)
        payload["load_trace"] = {
            "time_s": [float(t) for t in grid],
            "load_w": [float(v) for v in values],
        }
    path.write_text(json.dumps(payload, indent=2))
    return path


def neighborhood_to_json(neighborhood, path: str | Path,
                         sample_step: Optional[float] = 60.0,
                         spec=None) -> Path:
    """Persist a :class:`~repro.neighborhood.federation.NeighborhoodResult`.

    One record per home (composition + load statistics) plus the
    feeder-level aggregate: coincident peak, diversity factor and the
    neighborhood load-variation columns.  When the run came through the
    spec API (or ``spec`` is passed explicitly) a ``spec`` provenance
    block rides along, so the file can regenerate itself.
    """
    path = Path(path)
    if spec is None:
        spec = getattr(neighborhood, "spec", None)
    home_stats = neighborhood.home_stats()
    feeder = neighborhood.feeder_stats(home_stats=home_stats)
    homes = []
    for home_spec, stats in zip(neighborhood.fleet.homes, home_stats):
        scenario = home_spec.scenario
        homes.append({
            "name": scenario.name,
            "archetype": home_spec.archetype,
            "n_devices": scenario.n_devices,
            "device_power_w": scenario.device_power_w,
            "arrival_rate_per_hour": scenario.arrival_rate_per_hour,
            "arrival_kind": scenario.arrival_kind,
            "policy": home_spec.policy,
            "seed": home_spec.seed,
            "stats": stats_to_dict(stats),
        })
    payload = {
        "fleet": {
            "name": neighborhood.fleet.name,
            "seed": neighborhood.fleet.seed,
            "n_homes": neighborhood.fleet.n_homes,
            "total_devices": neighborhood.fleet.total_devices,
            "horizon_s": neighborhood.horizon,
        },
        "homes": homes,
        "feeder": {
            "stats": stats_to_dict(feeder.feeder),
            "coincident_peak_kw": feeder.coincident_peak_kw,
            "sum_home_peaks_kw": feeder.sum_home_peaks_kw,
            "diversity_factor": feeder.diversity_factor,
            "coincidence_factor": feeder.coincidence_factor,
            "load_variation_kw": feeder.load_variation_kw,
        },
    }
    if spec is not None:
        payload["spec"] = spec_block(spec)
    if neighborhood.coordination is not None:
        plan = neighborhood.coordination
        comparison = neighborhood.comparison()
        payload["coordination"] = {
            "applied": plan.applied,
            "epoch_s": plan.epoch,
            "bin_s": plan.bin_s,
            "sweeps": plan.sweeps,
            "cp_rounds": plan.cp_stats.rounds_total,
            "offsets_s": list(plan.offsets_s),
            "independent_coincident_peak_kw":
                comparison.independent.coincident_peak_kw,
            "independent_diversity_factor":
                comparison.independent.diversity_factor,
            "diversity_uplift": comparison.diversity_uplift,
            "peak_reduction_pct": comparison.peak_reduction_pct,
        }
        if getattr(plan, "epochs", None):
            payload["coordination"]["online"] = {
                "forecaster": plan.forecaster,
                "n_epochs": plan.n_epochs,
                "epochs_applied": plan.epochs_applied,
                "replanned_homes": plan.replanned_homes,
                "telemetry_events": plan.telemetry_events,
                "telemetry_digest": plan.telemetry_digest,
                "epochs": [
                    {
                        "index": outcome.index,
                        "start_s": outcome.start_s,
                        "end_s": outcome.end_s,
                        "applied": outcome.applied,
                        "changed_homes": outcome.changed_homes,
                        "cp_rounds": outcome.cp_rounds,
                        "independent_peak_w": outcome.independent_peak_w,
                        "coordinated_peak_w": outcome.coordinated_peak_w,
                    }
                    for outcome in plan.epochs
                ],
            }
    if sample_step is not None:
        grid, values = neighborhood.feeder_w.sample_grid(
            0.0, neighborhood.horizon, sample_step)
        payload["feeder_trace"] = {
            "time_s": [float(t) for t in grid],
            "load_w": [float(v) for v in values],
        }
    path.write_text(json.dumps(payload, indent=2))
    return path


def neighborhood_to_csv(neighborhood, path: str | Path,
                        step: float = 60.0, spec=None) -> Path:
    """Feeder plus one column per home, sampled on a regular grid.

    Home columns are the homes' *feeder contributions*
    (:attr:`~repro.neighborhood.federation.NeighborhoodResult.contributions_w`
    — phase-rotated under feeder coordination), so the feeder column is
    always exactly their sum.  A trailing ``spec_hash`` column carries
    the same provenance hash the JSON export embeds, when the run came
    through the spec API.
    """
    if spec is None:
        spec = getattr(neighborhood, "spec", None)
    series_map = {"feeder": neighborhood.feeder_w}
    for home_spec, series in zip(neighborhood.fleet.homes,
                                 neighborhood.contributions_w):
        series_map[home_spec.scenario.name] = series
    constants = None
    if spec is not None:
        from repro.api.spec import spec_hash
        constants = {"spec_hash": spec_hash(spec)}
    return multi_series_to_csv(series_map, path, 0.0,
                               neighborhood.horizon, step,
                               constants=constants)


def grid_to_json(grid_result, path: str | Path,
                 sample_step: Optional[float] = 60.0,
                 spec=None) -> Path:
    """Persist a :class:`~repro.neighborhood.grid.GridResult` as JSON.

    One record per feeder (composition + feeder-level statistics) plus
    the substation aggregate — the two-tier twin of
    :func:`neighborhood_to_json`, with the same provenance ``spec``
    block when the run came through the spec API.
    """
    path = Path(path)
    if spec is None:
        spec = getattr(grid_result, "spec", None)
    substation = grid_result.substation_stats()
    feeders = []
    for fleet, feeder in zip(grid_result.grid.feeders,
                             grid_result.feeders):
        stats = feeder.feeder_stats()
        feeders.append({
            "name": fleet.name,
            "seed": fleet.seed,
            "n_homes": fleet.n_homes,
            "total_devices": fleet.total_devices,
            "stats": stats_to_dict(stats.feeder),
            "coincident_peak_kw": stats.coincident_peak_kw,
            "diversity_factor": stats.diversity_factor,
        })
    payload = {
        "grid": {
            "name": grid_result.grid.name,
            "seed": grid_result.grid.seed,
            "n_feeders": grid_result.n_feeders,
            "n_homes": grid_result.n_homes,
            "horizon_s": grid_result.horizon,
            "coordination_mode": grid_result.coordination_mode,
        },
        "feeders": feeders,
        "substation": {
            "stats": stats_to_dict(substation.feeder),
            "coincident_peak_kw": substation.coincident_peak_kw,
            "sum_feeder_peaks_kw": substation.sum_home_peaks_kw,
            "diversity_factor": substation.diversity_factor,
            "coincidence_factor": substation.coincidence_factor,
        },
    }
    if spec is not None:
        payload["spec"] = spec_block(spec)
    comparison = grid_result.comparison()
    if comparison is not None:
        payload["comparison"] = {
            "independent_coincident_peak_kw":
                comparison.independent.coincident_peak_kw,
            "coordinated_coincident_peak_kw":
                comparison.coordinated.coincident_peak_kw,
            "diversity_uplift": comparison.diversity_uplift,
            "peak_reduction_pct": comparison.peak_reduction_pct,
        }
    if grid_result.coordination is not None:
        plan = grid_result.coordination
        payload["substation_coordination"] = {
            "applied": plan.applied,
            "epoch_s": plan.epoch,
            "bin_s": plan.bin_s,
            "sweeps": plan.sweeps,
            "cp_rounds": plan.cp_stats.rounds_total,
            "offsets_s": list(plan.offsets_s),
        }
    if sample_step is not None:
        grid, values = grid_result.substation_w.sample_grid(
            0.0, grid_result.horizon, sample_step)
        payload["substation_trace"] = {
            "time_s": [float(t) for t in grid],
            "load_w": [float(v) for v in values],
        }
    path.write_text(json.dumps(payload, indent=2))
    return path


def grid_to_csv(grid_result, path: str | Path, step: float = 60.0,
                spec=None) -> Path:
    """Substation plus one column per feeder, sampled on a regular grid.

    Feeder columns are the feeders' *substation contributions*
    (:attr:`~repro.neighborhood.grid.GridResult.feeder_profiles_w` —
    phase-rotated under substation coordination), so the substation
    column is always exactly their sum.  Same trailing ``spec_hash``
    provenance column as :func:`neighborhood_to_csv`.
    """
    if spec is None:
        spec = getattr(grid_result, "spec", None)
    series_map = {"substation": grid_result.substation_w}
    for fleet, series in zip(grid_result.grid.feeders,
                             grid_result.feeder_profiles_w):
        series_map[fleet.name] = series
    constants = None
    if spec is not None:
        from repro.api.spec import spec_hash
        constants = {"spec_hash": spec_hash(spec)}
    return multi_series_to_csv(series_map, path, 0.0,
                               grid_result.horizon, step,
                               constants=constants)


def mac_stats_to_csv(result, path: str | Path) -> Path:
    """The AT stack's loss breakdown as one CSV row.

    Requires a run that exercised the collection network
    (``at_stats`` set — the ``"uncoordinated"`` policy family);
    columns mirror the ``"mac"`` block of :func:`run_result_to_json`.
    """
    stats = result.at_stats
    if stats is None:
        raise ValueError(
            "run has no collection-network stats (at_stats is None); "
            "MAC loss counters only exist for policies that run the "
            "centralized AT stack")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["reports_sent", "reports_delivered",
                         "report_delivery_ratio", "collection_drops",
                         "dropped_channel_busy", "dropped_no_ack"])
        writer.writerow([stats.reports_sent, stats.reports_delivered,
                         stats.report_delivery_ratio,
                         stats.collection_drops,
                         stats.dropped_channel_busy,
                         stats.dropped_no_ack])
    return path


def requests_to_csv(result, path: str | Path) -> Path:
    """Per-request lifecycle log as CSV (latency analysis)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["request_id", "device_id", "arrival_s",
                         "demand_cycles", "state", "admitted_s",
                         "first_burst_s", "completed_s", "wait_s"])
        for r in result.requests:
            writer.writerow([
                r.request_id, r.device_id, r.arrival_time,
                r.demand_cycles, r.state.value,
                r.admitted_at if r.admitted_at is not None else "",
                r.first_burst_at if r.first_burst_at is not None else "",
                r.completed_at if r.completed_at is not None else "",
                r.waiting_time if r.waiting_time is not None else "",
            ])
    return path
