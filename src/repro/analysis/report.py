"""Plain-text rendering of tables and series (no plotting dependencies).

The benches print the same rows and series the paper's Figure 2 shows;
these helpers keep that output readable in a terminal and in the recorded
bench logs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.monitor import StepSeries


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render an aligned ASCII table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a one-line unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    if high == low:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (high - low)
    return "".join(blocks[int((v - low) * scale)] for v in values)


def render_series(series: StepSeries, start: float, end: float,
                  step: float, label: str = "",
                  value_scale: float = 1.0,
                  time_scale: float = 60.0) -> str:
    """Print a step series as `t value` rows (the Figure 2(a) data)."""
    grid, values = series.sample_grid(start, end, step)
    lines = [f"# {label}" if label else "# series"]
    lines.append("# time\tvalue")
    for t, v in zip(grid, values):
        lines.append(f"{t / time_scale:.1f}\t{v * value_scale:.3f}")
    return "\n".join(lines)


def side_by_side_series(series_map: dict[str, StepSeries], start: float,
                        end: float, step: float,
                        value_scale: float = 1.0,
                        time_scale: float = 60.0,
                        time_label: str = "t_min") -> str:
    """Multi-column rendering of several series on one time grid."""
    names = list(series_map)
    lines = ["\t".join([time_label, *names])]
    sampled = {name: series_map[name].sample_grid(start, end, step)[1]
               for name in names}
    grid = np.arange(start, end, step)
    for i, t in enumerate(grid):
        row = [f"{t / time_scale:.1f}"]
        row.extend(f"{sampled[name][i] * value_scale:.3f}" for name in names)
        lines.append("\t".join(row))
    return "\n".join(lines)
