"""Load-profile metrics: everything Figure 2 reports, plus extras.

All statistics are time-weighted (see
:class:`repro.sim.monitor.StepSeries`), so event-driven recording does not
bias them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.monitor import StepSeries
from repro.sim.units import KILOWATT, joules_to_kwh


@dataclass(frozen=True)
class LoadStats:
    """Summary of one load profile over an interval (kW units)."""

    peak_kw: float
    mean_kw: float
    std_kw: float
    min_kw: float
    max_step_kw: float
    energy_kwh: float
    p95_kw: float
    start: float
    end: float

    def row(self) -> tuple[float, ...]:
        """Compact tuple for table rendering."""
        return (self.peak_kw, self.mean_kw, self.std_kw, self.max_step_kw,
                self.energy_kwh)


def load_stats(series_w: StepSeries, start: float, end: float,
               sample_step: float = 60.0) -> LoadStats:
    """Compute :class:`LoadStats` for ``series_w`` (watts) on ``[start, end)``.

    ``p95`` uses a regular ``sample_step`` grid; every other statistic is
    exact over the step function.
    """
    if end <= start:
        raise ValueError("empty interval")
    peak = series_w.maximum(start, end) / KILOWATT
    low = series_w.minimum(start, end) / KILOWATT
    mean = series_w.mean(start, end) / KILOWATT
    std = series_w.std(start, end) / KILOWATT
    step = series_w.max_step(start, end) / KILOWATT
    energy = joules_to_kwh(series_w.integral(start, end))
    _grid, values = series_w.sample_grid(start, end, sample_step)
    p95 = float(np.percentile(values, 95)) / KILOWATT if len(values) else 0.0
    return LoadStats(peak_kw=peak, mean_kw=mean, std_kw=std, min_kw=low,
                     max_step_kw=step, energy_kwh=energy, p95_kw=p95,
                     start=start, end=end)


def percent_reduction(baseline: float, improved: float) -> float:
    """Reduction of ``improved`` relative to ``baseline``, in percent.

    Positive = improvement.  Returns 0 for a zero baseline (no meaningful
    reduction to report).
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def relative_difference(a: float, b: float) -> float:
    """|a − b| normalised by their magnitude (0 when both are 0)."""
    denominator = max(abs(a), abs(b))
    if denominator == 0:
        return 0.0
    return abs(a - b) / denominator


@dataclass(frozen=True)
class ComparisonResult:
    """Coordinated vs uncoordinated, the shape Figure 2 reports."""

    coordinated: LoadStats
    uncoordinated: LoadStats

    @property
    def peak_reduction_pct(self) -> float:
        """The paper's headline "peak load reduced up to 50 %"."""
        return percent_reduction(self.uncoordinated.peak_kw,
                                 self.coordinated.peak_kw)

    @property
    def std_reduction_pct(self) -> float:
        """The paper's "load variations reduced up to 58 %"."""
        return percent_reduction(self.uncoordinated.std_kw,
                                 self.coordinated.std_kw)

    @property
    def mean_drift_pct(self) -> float:
        """Average-load disagreement; the paper claims ≈ 0."""
        return 100.0 * relative_difference(self.coordinated.mean_kw,
                                           self.uncoordinated.mean_kw)


def mean_and_std(values: list[float]) -> tuple[float, float]:
    """Sample mean and (population) std of a metric across seeds."""
    if not values:
        raise ValueError("no values")
    array = np.asarray(values, dtype=float)
    return float(array.mean()), float(array.std())


def coefficient_of_variation(series_w: StepSeries, start: float,
                             end: float) -> float:
    """std/mean of the load — a scale-free smoothness measure."""
    mean = series_w.mean(start, end)
    if mean == 0:
        return 0.0
    return series_w.std(start, end) / mean


def ramp_events(series_w: StepSeries, start: float, end: float,
                threshold_w: float) -> int:
    """Count upward jumps exceeding ``threshold_w`` — "sudden rises".

    Vectorized over the series' cached arrays; jumps are the same
    consecutive-record differences the scalar walk produced (records
    before ``start`` collapse into the ``at(start)`` baseline).
    """
    times, values = series_w._data()
    lo = int(np.searchsorted(times, start, side="left"))
    hi = int(np.searchsorted(times, end, side="left"))
    if hi <= lo:
        return 0
    stepped = values[lo:hi]
    previous = np.empty_like(stepped)
    previous[0] = series_w.at(start)
    previous[1:] = stepped[:-1]
    return int(((stepped - previous) > threshold_w).sum())


def peak_to_average_ratio(stats: LoadStats) -> float:
    """PAR — a standard demand-side-management quality measure."""
    if stats.mean_kw == 0:
        return math.inf if stats.peak_kw > 0 else 1.0
    return stats.peak_kw / stats.mean_kw


def diversity_factor(individual_peaks_kw: list[float],
                     coincident_peak_kw: float) -> float:
    """Sum of individual peaks over the coincident (simultaneous) peak.

    The classic distribution-engineering measure of how much member loads
    stagger: >= 1 always, 1 when every member peaks at the same instant.
    Returns 1.0 for a dead feeder (no meaningful diversity to report).
    """
    if coincident_peak_kw == 0:
        return 1.0
    return float(sum(individual_peaks_kw)) / coincident_peak_kw


def coincidence_factor(individual_peaks_kw: list[float],
                       coincident_peak_kw: float) -> float:
    """Reciprocal of :func:`diversity_factor` (<= 1)."""
    return 1.0 / diversity_factor(individual_peaks_kw, coincident_peak_kw)
