"""Load-profile analysis and plain-text reporting."""

from repro.analysis.loadstats import (
    ComparisonResult,
    LoadStats,
    coefficient_of_variation,
    coincidence_factor,
    diversity_factor,
    load_stats,
    mean_and_std,
    peak_to_average_ratio,
    percent_reduction,
    ramp_events,
    relative_difference,
)
from repro.analysis.export import (
    multi_series_to_csv,
    neighborhood_to_csv,
    neighborhood_to_json,
    requests_to_csv,
    run_result_to_json,
    series_to_csv,
    stats_to_dict,
)
from repro.analysis.report import (
    format_table,
    render_series,
    side_by_side_series,
    sparkline,
)

__all__ = [
    "ComparisonResult",
    "LoadStats",
    "coefficient_of_variation",
    "coincidence_factor",
    "diversity_factor",
    "format_table",
    "load_stats",
    "mean_and_std",
    "multi_series_to_csv",
    "neighborhood_to_csv",
    "neighborhood_to_json",
    "peak_to_average_ratio",
    "percent_reduction",
    "ramp_events",
    "relative_difference",
    "render_series",
    "requests_to_csv",
    "run_result_to_json",
    "series_to_csv",
    "side_by_side_series",
    "sparkline",
    "stats_to_dict",
]
