"""Forecast plane: per-home predicted envelopes for online coordination.

Baseline predictors (persistence / seasonal-naive / EWMA), the
perfect-hindsight oracle, and a seeded noise wrapper — all behind one
:class:`~repro.forecast.forecasters.Forecaster` protocol emitting the
phase-envelope shape the feeder claim plane negotiates over.  See
``docs/online.md`` for where each sits in the online epoch loop.
"""

from repro.forecast.forecasters import (
    FORECASTERS,
    EwmaForecaster,
    Forecaster,
    NoisyForecaster,
    OracleForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
    make_forecaster,
)

__all__ = [
    "FORECASTERS",
    "EwmaForecaster",
    "Forecaster",
    "NoisyForecaster",
    "OracleForecaster",
    "PersistenceForecaster",
    "SeasonalNaiveForecaster",
    "make_forecaster",
]
