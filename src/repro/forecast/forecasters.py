"""Per-home load forecasters emitting phase-envelope predictions.

Every forecaster answers one question, one epoch at a time: *what
per-bin envelope will this home present over the upcoming window?* —
in exactly the shape (:func:`repro.neighborhood.coordination
.phase_envelope_window`) the feeder claim plane negotiates over, so a
predicted envelope drops into :class:`~repro.neighborhood.coordination
.FeederPlane` where a realized one used to go.

The baselines follow the standard short-horizon load-forecasting ladder
(arXiv:1708.04613): **persistence** (next window = last window),
**seasonal-naive** (next window = same window one season ago) and
**EWMA** (exponentially weighted fold over all past windows).  The
**oracle** reads the realized future outright — the zero-error ceiling
online-vs-post-hoc uplift is measured against — and
:class:`NoisyForecaster` corrupts any base forecaster with seeded
multiplicative per-bin noise for the forecast-error sweeps
(:func:`repro.experiments.ablations.online_uplift`).

Determinism: every forecaster is a pure function of
``(home_id, history strictly before the window, window)`` — persistence
and friends draw nothing, and the noise wrapper derives its generator
from a named stream keyed on ``(home_id, window start)`` — so predicted
envelopes are bit-identical for any jobs count, shard size, or call
order.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.neighborhood.coordination import phase_envelope_window
from repro.sim.monitor import StepSeries
from repro.sim.rng import RandomStreams

#: forecaster names the spec/CLI accept, prediction-ladder order
FORECASTERS = ("oracle", "persistence", "seasonal", "ewma")

#: slack for "is there a full past window" boundary tests, seconds
_EDGE = 1e-9


class Forecaster(Protocol):
    """The one protocol every per-home envelope forecaster satisfies."""

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """Predict the home's envelope over ``[start, end)``.

        ``history`` is the home's ingested telemetry strictly before
        ``start`` (the online loop ingests a window only *after*
        predicting it); ``bins`` pins the envelope length so every
        epoch's prediction has the claim plane's expected shape.
        """
        ...  # pragma: no cover - protocol signature only


class OracleForecaster:
    """Perfect hindsight: read the realized window out of the future.

    The zero-error ceiling for uplift accounting — an online run with
    the oracle measures how much of the post-hoc coordinated peak
    reduction survives the move to per-epoch decisions alone, with no
    forecast error mixed in.
    """

    def __init__(self, realized: dict[int, StepSeries]):
        self._realized = realized

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """The realized envelope of ``[start, end)`` itself."""
        return phase_envelope_window(self._realized[home_id], start, end,
                                     bin_s, bins=bins)


class PersistenceForecaster:
    """Next window looks like the last one (naive persistence)."""

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """The previous window's realized envelope; zeros before one
        full window of history exists."""
        span = end - start
        if start - span < -_EDGE:
            return tuple([0.0] * bins)
        return phase_envelope_window(history, start - span, start, bin_s,
                                     bins=bins)


class SeasonalNaiveForecaster:
    """Next window looks like the same window one season ago."""

    def __init__(self, season_epochs: int = 1):
        if season_epochs < 1:
            raise ValueError(
                f"season_epochs must be >= 1, got {season_epochs}")
        self.season_epochs = int(season_epochs)

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """The envelope one season (``season_epochs`` windows) back,
        falling back to persistence until a full season has elapsed."""
        span = end - start
        season_start = start - self.season_epochs * span
        if season_start < -_EDGE:
            return PersistenceForecaster().predict(
                home_id, history, start, end, bin_s, bins)
        return phase_envelope_window(history, season_start,
                                     season_start + span, bin_s,
                                     bins=bins)


class EwmaForecaster:
    """Exponentially weighted fold over every completed past window."""

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """Fold past window envelopes oldest → newest with weight
        ``alpha`` on each newer window; zeros before any history."""
        span = end - start
        n_windows = 0
        while start - (n_windows + 1) * span >= -_EDGE:
            n_windows += 1
        if n_windows == 0:
            return tuple([0.0] * bins)
        prediction: Optional[np.ndarray] = None
        for back in range(n_windows, 0, -1):
            window_start = start - back * span
            envelope = np.asarray(phase_envelope_window(
                history, window_start, window_start + span, bin_s,
                bins=bins))
            if prediction is None:
                prediction = envelope
            else:
                prediction = self.alpha * envelope \
                    + (1.0 - self.alpha) * prediction
        return tuple(prediction.tolist())


class NoisyForecaster:
    """Seeded multiplicative per-bin noise around any base forecaster.

    Each bin's prediction is scaled by ``max(0, 1 + noise·g)`` with
    ``g ~ N(0, 1)`` drawn from the named stream
    ``forecast/home-<id>/t<start>`` — keyed on the home and the window,
    never on call order, so noisy predictions stay bit-identical across
    jobs counts and shard sizes (the forecast-error analogue of the
    simulator's named-stream discipline).
    """

    def __init__(self, base: Forecaster, noise: float, seed: int = 1):
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.base = base
        self.noise = float(noise)
        self._streams = RandomStreams(int(seed))

    def predict(self, home_id: int, history: StepSeries, start: float,
                end: float, bin_s: float,
                bins: int) -> tuple[float, ...]:
        """The base prediction, corrupted bin-wise by seeded noise."""
        envelope = np.asarray(self.base.predict(
            home_id, history, start, end, bin_s, bins))
        if self.noise == 0.0:
            return tuple(envelope.tolist())
        rng = self._streams.stream(f"forecast/home-{home_id}/t{start!r}")
        factors = np.maximum(
            1.0 + self.noise * rng.standard_normal(bins), 0.0)
        return tuple((envelope * factors).tolist())


def make_forecaster(name: str, realized: Optional[
                        dict[int, StepSeries]] = None,
                    noise: float = 0.0, noise_seed: int = 1,
                    ewma_alpha: float = 0.5,
                    season_epochs: int = 1) -> Forecaster:
    """Build a (possibly noise-wrapped) forecaster by spec name.

    ``realized`` is required for (and only read by) the oracle; the
    remaining knobs map one-to-one onto
    :class:`repro.api.spec.ForecastPlan` fields.
    """
    if name == "oracle":
        if realized is None:
            raise ValueError(
                "the oracle forecaster needs the realized per-home "
                "series")
        base: Forecaster = OracleForecaster(realized)
    elif name == "persistence":
        base = PersistenceForecaster()
    elif name == "seasonal":
        base = SeasonalNaiveForecaster(season_epochs=season_epochs)
    elif name == "ewma":
        base = EwmaForecaster(alpha=ewma_alpha)
    else:
        known = ", ".join(FORECASTERS)
        raise ValueError(
            f"forecaster must be one of: {known}; got {name!r}")
    if noise > 0.0:
        return NoisyForecaster(base, noise, seed=noise_seed)
    return base
