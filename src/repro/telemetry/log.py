"""Replayable append-only telemetry log.

The online coordination loop (:mod:`repro.neighborhood.online`) is only
bit-deterministic if the stream of realized samples it consumed can be
reproduced exactly.  :class:`TelemetryLog` is that record: every sample
appended into the telemetry plane is also journalled here, in arrival
order, and :meth:`TelemetryLog.replay` rebuilds the per-home
:class:`~repro.sim.monitor.StepSeries` from nothing but the journal —
bit-identical to the series the live ingestion path maintained, which
``tests/test_telemetry.py`` locks.

The log is append-only by construction (no mutation API), and
:meth:`TelemetryLog.digest` fingerprints the full event stream so two
runs can assert they ingested identical telemetry without shipping the
events themselves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.sim.monitor import StepSeries


@dataclass(frozen=True)
class TelemetryEvent:
    """One journalled sample: ``home_id`` reported ``value`` at ``time``."""

    home_id: int
    time: float
    value: float


class TelemetryLog:
    """Append-only journal of every sample the telemetry plane ingested."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[TelemetryEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> tuple[TelemetryEvent, ...]:
        """The journal so far, in arrival order (immutable view)."""
        return tuple(self._events)

    def extend(self, home_id: int, times: Iterable[float],
               values: Iterable[float]) -> None:
        """Journal one home's batch of samples, in batch order."""
        self._events.extend(
            TelemetryEvent(home_id=int(home_id), time=float(time),
                           value=float(value))
            for time, value in zip(times, values))

    def digest(self) -> str:
        """SHA-256 over the exact event stream (ids, times, value bits).

        Arrival-order sensitive by design: it fingerprints *what the
        plane experienced*, including delivery order — two runs whose
        homes reported in different interleavings digest differently.
        Use :meth:`canonical_digest` for an order-insensitive
        fingerprint of the event multiset.
        """
        hasher = hashlib.sha256()
        for event in self._events:
            hasher.update(
                repr((event.home_id, event.time, event.value)).encode())
        return hasher.hexdigest()

    def canonical_digest(self) -> str:
        """SHA-256 over the *sorted* event multiset (order-insensitive).

        Two journals holding the same samples — however shuffled or
        delayed their arrival order was — produce the same canonical
        digest, which is the equality the late-arrival-storm tests
        assert: a storm permutes arrival, never content.
        """
        hasher = hashlib.sha256()
        ordered = sorted(self._events,
                         key=lambda event: (event.home_id, event.time,
                                            event.value))
        for event in ordered:
            hasher.update(
                repr((event.home_id, event.time, event.value)).encode())
        return hasher.hexdigest()

    def replay(self) -> dict[int, StepSeries]:
        """Rebuild every home's series from the journal alone.

        Per home, events replay through
        :meth:`~repro.sim.monitor.StepSeries.record` in *stable time
        order* — for an in-order journal that is exactly journal order
        (the original replay contract, bit-identical to live
        ingestion), and for a journal whose batches arrived shuffled,
        delayed or duplicated (a late-arrival storm) the sort restores
        the unique time-ordered stream, so the rebuilt series are
        bit-identical to the in-order run's.  Same-time duplicates
        collapse exactly as :meth:`record` defines (last wins;
        no-change records are dropped).
        """
        series: dict[int, StepSeries] = {}
        per_home: dict[int, list[TelemetryEvent]] = {}
        for event in self._events:
            per_home.setdefault(event.home_id, []).append(event)
        for home_id, events in per_home.items():
            events.sort(key=lambda event: event.time)  # stable
            home = StepSeries(name=f"telemetry/home-{home_id}")
            for event in events:
                home.record(event.time, event.value)
            series[home_id] = home
        return series
