"""Replayable append-only telemetry log.

The online coordination loop (:mod:`repro.neighborhood.online`) is only
bit-deterministic if the stream of realized samples it consumed can be
reproduced exactly.  :class:`TelemetryLog` is that record: every sample
appended into the telemetry plane is also journalled here, in arrival
order, and :meth:`TelemetryLog.replay` rebuilds the per-home
:class:`~repro.sim.monitor.StepSeries` from nothing but the journal —
bit-identical to the series the live ingestion path maintained, which
``tests/test_telemetry.py`` locks.

The log is append-only by construction (no mutation API), and
:meth:`TelemetryLog.digest` fingerprints the full event stream so two
runs can assert they ingested identical telemetry without shipping the
events themselves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.sim.monitor import StepSeries


@dataclass(frozen=True)
class TelemetryEvent:
    """One journalled sample: ``home_id`` reported ``value`` at ``time``."""

    home_id: int
    time: float
    value: float


class TelemetryLog:
    """Append-only journal of every sample the telemetry plane ingested."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[TelemetryEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> tuple[TelemetryEvent, ...]:
        """The journal so far, in arrival order (immutable view)."""
        return tuple(self._events)

    def extend(self, home_id: int, times: Iterable[float],
               values: Iterable[float]) -> None:
        """Journal one home's batch of samples, in batch order."""
        self._events.extend(
            TelemetryEvent(home_id=int(home_id), time=float(time),
                           value=float(value))
            for time, value in zip(times, values))

    def digest(self) -> str:
        """SHA-256 over the exact event stream (ids, times, value bits)."""
        hasher = hashlib.sha256()
        for event in self._events:
            hasher.update(
                repr((event.home_id, event.time, event.value)).encode())
        return hasher.hexdigest()

    def replay(self) -> dict[int, StepSeries]:
        """Rebuild every home's series from the journal alone.

        Events replay through :meth:`~repro.sim.monitor.StepSeries.record`
        in journal order — the scalar path
        :meth:`~repro.sim.monitor.StepSeries.append` is defined against —
        so the result is bit-identical to the series the live ingestion
        maintained: the replay contract online runs rely on.
        """
        series: dict[int, StepSeries] = {}
        for event in self._events:
            home = series.get(event.home_id)
            if home is None:
                home = StepSeries(name=f"telemetry/home-{event.home_id}")
                series[event.home_id] = home
            home.record(event.time, event.value)
        return series
