"""Streaming telemetry plane: ingestion, rolling stats, replayable log.

The high-velocity side of online coordination (ROADMAP open item 2,
after arXiv:1708.04613): realized per-home load arrives as append-only
batches (:meth:`repro.sim.monitor.StepSeries.append`), rolling summaries
are maintained incrementally (:class:`RollingStats`), and every sample
is journalled in a :class:`TelemetryLog` whose replay rebuilds the exact
per-home series — the bit-determinism contract
:mod:`repro.neighborhood.online` builds on.
"""

from repro.telemetry.log import TelemetryEvent, TelemetryLog
from repro.telemetry.stream import RollingStats, TelemetryIngest

__all__ = [
    "RollingStats",
    "TelemetryEvent",
    "TelemetryIngest",
    "TelemetryLog",
]
