"""Streaming ingestion: per-home series, rolling stats, journalling.

:class:`TelemetryIngest` is the front door the online loop feeds each
epoch: a batch of realized samples per home goes through
:meth:`~repro.sim.monitor.StepSeries.append` (the vectorized bulk-record
path), updates that home's :class:`RollingStats` incrementally, and is
journalled in the shared :class:`~repro.telemetry.log.TelemetryLog` so
the whole run can be replayed bit-identically.

:class:`RollingStats` maintains windowed summaries without rescanning
history: each appended piecewise-constant segment updates a bounded
deque of recent segments (windowed time-weighted mean and peak) and a
duration-weighted EWMA — the high-velocity-stream treatment of
arXiv:1708.04613, reduced to the three summaries the forecasters and
operators read.  Ingesting one stream in many small batches or one big
batch yields the identical stats, which ``tests/test_telemetry.py``
locks over randomized splits.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional

from repro.sim.monitor import StepSeries
from repro.telemetry.log import TelemetryLog


class RollingStats:
    """Incrementally maintained windowed mean / peak / EWMA of one stream.

    The stream is piecewise constant: each ingested record ``(t, v)``
    closes the previous segment at ``t`` and opens a new one holding
    ``v``.  Only segments overlapping the trailing ``window_s`` are
    retained, so memory is bounded by the event rate inside one window,
    not by stream length.
    """

    __slots__ = ("window_s", "ewma_alpha", "_segments", "_last_time",
                 "_last_value", "_ewma")

    def __init__(self, window_s: float, ewma_alpha: float = 0.5) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.window_s = float(window_s)
        self.ewma_alpha = float(ewma_alpha)
        #: closed segments ``(start, end, value)`` overlapping the window
        self._segments: Deque[tuple[float, float, float]] = deque()
        self._last_time: Optional[float] = None
        self._last_value = 0.0
        self._ewma = 0.0

    def ingest(self, times: Iterable[float],
               values: Iterable[float]) -> None:
        """Fold a batch of records into the rolling summaries."""
        for time, value in zip(times, values):
            time = float(time)
            value = float(value)
            if self._last_time is not None:
                if time < self._last_time:
                    raise ValueError(
                        f"telemetry sample at t={time} precedes "
                        f"t={self._last_time}")
                if time > self._last_time:
                    self._close_segment(time)
            self._last_time = time
            self._last_value = value
        self._evict()

    def _close_segment(self, end: float) -> None:
        start = self._last_time
        duration = end - start
        self._segments.append((start, end, self._last_value))
        # Duration-weighted EWMA: one window's worth of signal moves the
        # average by exactly ``ewma_alpha`` toward that signal.
        effective = 1.0 - (1.0 - self.ewma_alpha) ** (
            duration / self.window_s)
        self._ewma += effective * (self._last_value - self._ewma)

    def _evict(self) -> None:
        if self._last_time is None:
            return
        cutoff = self._last_time - self.window_s
        while self._segments and self._segments[0][1] <= cutoff:
            self._segments.popleft()

    @property
    def now(self) -> float:
        """Time of the most recent sample (0.0 before any sample)."""
        return self._last_time if self._last_time is not None else 0.0

    @property
    def current(self) -> float:
        """Value currently in force (the last sample's value)."""
        return self._last_value

    @property
    def mean(self) -> float:
        """Time-weighted mean over the trailing window."""
        if self._last_time is None:
            return 0.0
        cutoff = self._last_time - self.window_s
        terms = [(min(end, self._last_time) - max(start, cutoff)) * value
                 for start, end, value in self._segments
                 if end > cutoff]
        span = math.fsum(
            min(end, self._last_time) - max(start, cutoff)
            for start, end, _ in self._segments if end > cutoff)
        if span <= 0.0:
            return self._last_value
        return math.fsum(terms) / span

    @property
    def peak(self) -> float:
        """Maximum value over the trailing window (incl. current value)."""
        if self._last_time is None:
            return 0.0
        cutoff = self._last_time - self.window_s
        best = self._last_value
        for _start, end, value in self._segments:
            if end > cutoff and value > best:
                best = value
        return best

    @property
    def ewma(self) -> float:
        """Duration-weighted exponentially-weighted moving average."""
        return self._ewma


class TelemetryIngest:
    """Per-home streaming front door: series + rolling stats + journal."""

    __slots__ = ("window_s", "ewma_alpha", "log", "_series", "_stats")

    def __init__(self, window_s: float, ewma_alpha: float = 0.5,
                 log: Optional[TelemetryLog] = None) -> None:
        self.window_s = float(window_s)
        self.ewma_alpha = float(ewma_alpha)
        self.log = log if log is not None else TelemetryLog()
        self._series: dict[int, StepSeries] = {}
        self._stats: dict[int, RollingStats] = {}

    def ingest(self, home_id: int, times: Iterable[float],
               values: Iterable[float]) -> None:
        """Append one home's batch: series, rolling stats, and journal."""
        times = [float(time) for time in times]
        values = [float(value) for value in values]
        self.series(home_id).append(times, values)
        self.stats(home_id).ingest(times, values)
        self.log.extend(home_id, times, values)

    def ingest_late(self, home_id: int, times: Iterable[float],
                    values: Iterable[float]) -> None:
        """Fold in a batch that arrived *out of order* (late or duplicate).

        The fast path (:meth:`ingest`) assumes non-decreasing time; a
        delayed batch whose samples precede already-ingested ones would
        be rejected there.  This path journals the batch exactly as it
        arrived (the journal records *arrival*, late or not), then
        rebuilds the home's series and rolling stats from its stable
        time-sorted journal events — the same normalization
        :meth:`repro.telemetry.log.TelemetryLog.replay` applies, so the
        post-recovery state is bit-identical to what an on-time
        delivery would have produced.  Duplicate batches collapse under
        :meth:`~repro.sim.monitor.StepSeries.record` semantics.

        Cost is O(home's journalled events) per late batch — the price
        of recovery, paid only on actual late arrivals.
        """
        times = [float(time) for time in times]
        values = [float(value) for value in values]
        self.log.extend(home_id, times, values)
        events = [event for event in self.log.events
                  if event.home_id == home_id]
        events.sort(key=lambda event: event.time)  # stable
        series = StepSeries(name=f"telemetry/home-{home_id}")
        stats = RollingStats(self.window_s, ewma_alpha=self.ewma_alpha)
        for event in events:
            series.record(event.time, event.value)
        stats.ingest([event.time for event in events],
                     [event.value for event in events])
        self._series[home_id] = series
        self._stats[home_id] = stats

    def series(self, home_id: int) -> StepSeries:
        """The home's ingested history (empty series before first batch)."""
        series = self._series.get(home_id)
        if series is None:
            series = StepSeries(name=f"telemetry/home-{home_id}")
            self._series[home_id] = series
        return series

    def stats(self, home_id: int) -> RollingStats:
        """The home's rolling summaries (zeroed before first batch)."""
        stats = self._stats.get(home_id)
        if stats is None:
            stats = RollingStats(self.window_s, ewma_alpha=self.ewma_alpha)
            self._stats[home_id] = stats
        return stats
