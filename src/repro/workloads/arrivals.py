"""Request arrival processes.

The paper evaluates Poisson-like "randomly arriving" user requests at an
aggregate rate (4 / 18 / 30 requests per hour across 26 devices).  This
module provides that process plus burstier alternatives (batch arrivals and
a two-state MMPP) used by ablations to stress the one-by-one admission
property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.han.requests import UserRequest
from repro.sim.units import per_hour_to_per_second

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Called for every generated request; wired to the owning DI agent.
RequestSink = Callable[[UserRequest], None]
#: Draws the demanded number of duty cycles for one request.
DemandSampler = Callable[[np.random.Generator], int]


def fixed_demand(cycles: int = 1) -> DemandSampler:
    """Every request asks for exactly ``cycles`` executions."""
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    return lambda _rng: cycles


def geometric_demand(mean_cycles: float) -> DemandSampler:
    """Geometric demand with the given mean (support {1, 2, ...})."""
    if mean_cycles < 1.0:
        raise ValueError("mean must be >= 1")
    p = 1.0 / mean_cycles
    return lambda rng: int(rng.geometric(p))


@dataclass
class ArrivalStats:
    """What an arrival process generated."""

    generated: int = 0
    per_device: Optional[dict[int, int]] = None


class PoissonArrivals:
    """Aggregate Poisson arrivals, device chosen uniformly at random."""

    def __init__(self, sim: "Simulator", rate_per_hour: float,
                 device_ids: Sequence[int], sinks: dict[int, RequestSink],
                 rng: np.random.Generator,
                 demand: DemandSampler = fixed_demand(1)):
        if rate_per_hour <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = per_hour_to_per_second(rate_per_hour)
        self.device_ids = list(device_ids)
        self.sinks = sinks
        self.rng = rng
        self.demand = demand
        self.stats = ArrivalStats(per_device={d: 0 for d in device_ids})
        self.requests: list[UserRequest] = []

    def run(self):
        """Arrival process; spawn with ``sim.spawn(arrivals.run())``."""
        while True:
            gap = self.rng.exponential(1.0 / self.rate)
            yield self.sim.timeout(gap)
            self._emit()

    def _emit(self) -> None:
        device = int(self.rng.choice(self.device_ids))
        request = UserRequest(device_id=device,
                              arrival_time=self.sim.now,
                              demand_cycles=self.demand(self.rng))
        self.requests.append(request)
        self.stats.generated += 1
        self.stats.per_device[device] += 1
        self.sinks[device](request)


class BatchArrivals(PoissonArrivals):
    """Poisson batch arrivals: every event releases ``batch_size`` requests.

    Models synchronized user behaviour (e.g. everyone returning home at
    once) — the worst case for load stacking, used to demonstrate the
    one-by-one admission property.
    """

    def __init__(self, sim: "Simulator", rate_per_hour: float,
                 device_ids: Sequence[int], sinks: dict[int, RequestSink],
                 rng: np.random.Generator, batch_size: int = 5,
                 demand: DemandSampler = fixed_demand(1)):
        super().__init__(sim, rate_per_hour, device_ids, sinks, rng, demand)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size

    def run(self):
        while True:
            gap = self.rng.exponential(1.0 / self.rate)
            yield self.sim.timeout(gap)
            for _ in range(self.batch_size):
                self._emit()


class MmppArrivals(PoissonArrivals):
    """Two-state Markov-modulated Poisson process (calm / busy).

    Dwell times are exponential; the busy state multiplies the base rate.
    """

    def __init__(self, sim: "Simulator", rate_per_hour: float,
                 device_ids: Sequence[int], sinks: dict[int, RequestSink],
                 rng: np.random.Generator, busy_factor: float = 5.0,
                 mean_dwell_s: float = 1800.0,
                 demand: DemandSampler = fixed_demand(1)):
        super().__init__(sim, rate_per_hour, device_ids, sinks, rng, demand)
        if busy_factor <= 0 or mean_dwell_s <= 0:
            raise ValueError("busy_factor and dwell must be positive")
        self.busy_factor = busy_factor
        self.mean_dwell_s = mean_dwell_s

    def run(self):
        busy = False
        state_ends = self.sim.now + self.rng.exponential(self.mean_dwell_s)
        while True:
            rate = self.rate * (self.busy_factor if busy else 1.0)
            gap = self.rng.exponential(1.0 / rate)
            if self.sim.now + gap >= state_ends:
                yield self.sim.timeout(max(state_ends - self.sim.now, 0.0))
                busy = not busy
                state_ends = self.sim.now + self.rng.exponential(
                    self.mean_dwell_s)
                continue
            yield self.sim.timeout(gap)
            self._emit()
