"""Workload generators and the paper's evaluation scenarios."""

from repro.workloads.arrivals import (
    ArrivalStats,
    BatchArrivals,
    MmppArrivals,
    PoissonArrivals,
    fixed_demand,
    geometric_demand,
)
from repro.workloads.scenarios import (
    FIG2A_RATE,
    PAPER_RATES,
    Scenario,
    burst_scenario,
    paper_scenario,
    stress_scenario,
)

__all__ = [
    "ArrivalStats",
    "BatchArrivals",
    "FIG2A_RATE",
    "MmppArrivals",
    "PAPER_RATES",
    "PoissonArrivals",
    "Scenario",
    "burst_scenario",
    "fixed_demand",
    "geometric_demand",
    "paper_scenario",
    "stress_scenario",
]
