"""Workload generators and the paper's evaluation scenarios."""

from repro.workloads.arrivals import (
    ArrivalStats,
    BatchArrivals,
    MmppArrivals,
    PoissonArrivals,
    fixed_demand,
    geometric_demand,
)
from repro.workloads.scenarios import (
    FIG2A_RATE,
    FLEET_MIXES,
    HOME_ARCHETYPES,
    PAPER_RATES,
    Scenario,
    burst_scenario,
    family_home,
    large_home,
    paper_scenario,
    stress_scenario,
    studio_home,
)

__all__ = [
    "ArrivalStats",
    "BatchArrivals",
    "FIG2A_RATE",
    "FLEET_MIXES",
    "HOME_ARCHETYPES",
    "MmppArrivals",
    "PAPER_RATES",
    "PoissonArrivals",
    "Scenario",
    "burst_scenario",
    "family_home",
    "fixed_demand",
    "geometric_demand",
    "large_home",
    "paper_scenario",
    "stress_scenario",
    "studio_home",
]
