"""The paper's evaluation scenarios and presets.

Section III: 26 DIs on FlockLab, each driving one 1 kW Type-2 device with
``maxDCP`` = 30 min and ``minDCD`` = 15 min; user requests arrive randomly
at *high* (30/h), *moderate* (18/h) or *low* (4/h) aggregate rates; the
experiment observes 350 minutes of system load.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.sim.units import MINUTE

#: Arrival-rate presets (requests/hour), Figure 2(b)/(c) x-axis.
PAPER_RATES: dict[str, float] = {"low": 4.0, "moderate": 18.0, "high": 30.0}

#: Arrival-process kinds a :class:`Scenario` can draw requests from.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "batch", "mmpp")

#: The rate used for the Figure 2(a) time series.
FIG2A_RATE: float = PAPER_RATES["high"]

#: The rate suffix :meth:`Scenario.with_rate` appends (and strips again, so
#: chained calls don't accumulate ``@4/h@18/h`` tails).
_RATE_SUFFIX = re.compile(r"@[0-9.eE+-]+/h$")


@dataclass(frozen=True)
class Scenario:
    """A fully specified workload + fleet configuration."""

    name: str
    n_devices: int = 26
    device_power_w: float = 1000.0
    min_dcd: float = 15 * MINUTE
    max_dcp: float = 30 * MINUTE
    arrival_rate_per_hour: float = 30.0
    horizon: float = 350 * MINUTE
    demand_cycles: int = 1
    arrival_kind: str = "poisson"  # poisson | batch | mmpp
    batch_size: int = 5
    notes: str = ""

    @property
    def base_name(self) -> str:
        """The name with any ``@<rate>/h`` suffix stripped."""
        return _RATE_SUFFIX.sub("", self.name)

    def with_rate(self, rate_per_hour: float) -> "Scenario":
        """The same scenario at a different arrival rate.

        Chaining is idempotent on the name: any previous rate suffix is
        replaced, never accumulated.
        """
        return replace(self, arrival_rate_per_hour=rate_per_hour,
                       name=f"{self.base_name}@{rate_per_hour:g}/h")


def paper_scenario(rate_name: str = "high") -> Scenario:
    """Exactly the paper's §III setup at a named rate preset."""
    try:
        rate = PAPER_RATES[rate_name]
    except KeyError:
        known = ", ".join(sorted(PAPER_RATES))
        raise KeyError(f"unknown rate preset {rate_name!r}; one of: {known}")
    return Scenario(name=f"paper-{rate_name}", arrival_rate_per_hour=rate,
                    notes="26x1kW Type-2, minDCD=15min, maxDCP=30min, "
                          "350min horizon (paper §III)")


def stress_scenario(n_devices: int = 40,
                    rate_per_hour: float = 60.0) -> Scenario:
    """Beyond-paper stress point for the scaling ablation."""
    return Scenario(name=f"stress-{n_devices}dev",
                    n_devices=n_devices,
                    arrival_rate_per_hour=rate_per_hour,
                    notes="scaling ablation")


def burst_scenario(batch_size: int = 8,
                   rate_per_hour: float = 6.0) -> Scenario:
    """Synchronized-arrival worst case for the small-steps property."""
    return Scenario(name=f"burst-x{batch_size}",
                    arrival_kind="batch", batch_size=batch_size,
                    arrival_rate_per_hour=rate_per_hour,
                    notes="batch arrivals: everyone comes home at once")


# -- neighborhood fleet presets -----------------------------------------------
#
# The paper evaluates one 26-device home; the neighborhood layer composes
# many smaller, heterogeneous homes behind one feeder.  Each archetype is a
# per-home :class:`Scenario` template; fleet builders jitter device counts,
# power ratings and arrival rates per home (see
# :mod:`repro.neighborhood.fleet`).


def studio_home() -> Scenario:
    """A small flat: few light duty-cycled loads, sparse requests."""
    return Scenario(name="studio", n_devices=6, device_power_w=800.0,
                    min_dcd=10 * MINUTE, max_dcp=30 * MINUTE,
                    arrival_rate_per_hour=6.0,
                    notes="studio archetype: 6x0.8kW, sparse Poisson")


def family_home() -> Scenario:
    """A family house: the paper's device class at a moderate bursty rate."""
    return Scenario(name="family", n_devices=12, device_power_w=1000.0,
                    min_dcd=15 * MINUTE, max_dcp=30 * MINUTE,
                    arrival_rate_per_hour=14.0, arrival_kind="mmpp",
                    notes="family archetype: 12x1kW, bursty MMPP evenings")


def large_home() -> Scenario:
    """A large house: heavy loads, synchronized come-home batches."""
    return Scenario(name="large", n_devices=20, device_power_w=1500.0,
                    min_dcd=15 * MINUTE, max_dcp=45 * MINUTE,
                    arrival_rate_per_hour=24.0, arrival_kind="batch",
                    batch_size=3,
                    notes="large archetype: 20x1.5kW, batch arrivals")


#: Home archetypes a fleet can draw from, by name.
HOME_ARCHETYPES: dict[str, Callable[[], Scenario]] = {
    "studio": studio_home,
    "family": family_home,
    "large": large_home,
}

#: Named neighborhood compositions: archetype → sampling weight.
FLEET_MIXES: dict[str, tuple[tuple[str, float], ...]] = {
    "suburb": (("family", 0.6), ("large", 0.25), ("studio", 0.15)),
    "apartments": (("studio", 0.7), ("family", 0.3)),
    "mixed": (("studio", 1.0), ("family", 1.0), ("large", 1.0)),
}

#: Every named scenario a declarative
#: :class:`~repro.api.spec.ScenarioSpec` can start from — the paper's
#: three rate presets, the beyond-paper stress/burst points and the
#: neighborhood home archetypes.
SCENARIO_PRESETS: dict[str, Callable[[], Scenario]] = {
    "paper-low": lambda: paper_scenario("low"),
    "paper-moderate": lambda: paper_scenario("moderate"),
    "paper-high": lambda: paper_scenario("high"),
    "stress": stress_scenario,
    "burst": burst_scenario,
    **HOME_ARCHETYPES,
}
