"""The paper's evaluation scenarios and presets.

Section III: 26 DIs on FlockLab, each driving one 1 kW Type-2 device with
``maxDCP`` = 30 min and ``minDCD`` = 15 min; user requests arrive randomly
at *high* (30/h), *moderate* (18/h) or *low* (4/h) aggregate rates; the
experiment observes 350 minutes of system load.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.units import MINUTE

#: Arrival-rate presets (requests/hour), Figure 2(b)/(c) x-axis.
PAPER_RATES: dict[str, float] = {"low": 4.0, "moderate": 18.0, "high": 30.0}

#: The rate used for the Figure 2(a) time series.
FIG2A_RATE: float = PAPER_RATES["high"]


@dataclass(frozen=True)
class Scenario:
    """A fully specified workload + fleet configuration."""

    name: str
    n_devices: int = 26
    device_power_w: float = 1000.0
    min_dcd: float = 15 * MINUTE
    max_dcp: float = 30 * MINUTE
    arrival_rate_per_hour: float = 30.0
    horizon: float = 350 * MINUTE
    demand_cycles: int = 1
    arrival_kind: str = "poisson"  # poisson | batch | mmpp
    batch_size: int = 5
    notes: str = ""

    def with_rate(self, rate_per_hour: float) -> "Scenario":
        """The same scenario at a different arrival rate."""
        return replace(self, arrival_rate_per_hour=rate_per_hour,
                       name=f"{self.name}@{rate_per_hour:g}/h")


def paper_scenario(rate_name: str = "high") -> Scenario:
    """Exactly the paper's §III setup at a named rate preset."""
    try:
        rate = PAPER_RATES[rate_name]
    except KeyError:
        known = ", ".join(sorted(PAPER_RATES))
        raise KeyError(f"unknown rate preset {rate_name!r}; one of: {known}")
    return Scenario(name=f"paper-{rate_name}", arrival_rate_per_hour=rate,
                    notes="26x1kW Type-2, minDCD=15min, maxDCP=30min, "
                          "350min horizon (paper §III)")


def stress_scenario(n_devices: int = 40,
                    rate_per_hour: float = 60.0) -> Scenario:
    """Beyond-paper stress point for the scaling ablation."""
    return Scenario(name=f"stress-{n_devices}dev",
                    n_devices=n_devices,
                    arrival_rate_per_hour=rate_per_hour,
                    notes="scaling ablation")


def burst_scenario(batch_size: int = 8,
                   rate_per_hour: float = 6.0) -> Scenario:
    """Synchronized-arrival worst case for the small-steps property."""
    return Scenario(name=f"burst-x{batch_size}",
                    arrival_kind="batch", batch_size=batch_size,
                    arrival_rate_per_hour=rate_per_hour,
                    notes="batch arrivals: everyone comes home at once")
