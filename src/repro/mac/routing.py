"""ETX collection-tree routing (CTP/RPL-lite) for the AT baseline.

The centralized HAN needs multi-hop unicast paths from every DI to the
controller.  As in CTP/RPL, each node picks the parent minimising the
expected number of transmissions (ETX) to the sink.  The tree is computed
from the channel's link-quality estimates and recomputed when nodes fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.radio.channel import Channel


@dataclass
class CollectionTree:
    """Routing state: per-node parent pointers toward the sink."""

    sink: int
    parent: dict[int, Optional[int]] = field(default_factory=dict)
    etx_to_sink: dict[int, float] = field(default_factory=dict)

    def next_hop(self, node: int) -> Optional[int]:
        """The node to forward to on the way to the sink (None = no route)."""
        return self.parent.get(node)

    def route(self, node: int) -> list[int]:
        """Full path from ``node`` to the sink (inclusive); [] if no route."""
        path = [node]
        current = node
        seen = {node}
        while current != self.sink:
            nxt = self.parent.get(current)
            if nxt is None or nxt in seen:
                return []
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path

    def depth(self, node: int) -> int:
        """Hop distance from ``node`` to the sink (-1 if unreachable)."""
        path = self.route(node)
        return len(path) - 1 if path else -1

    def children(self, node: int) -> list[int]:
        """Direct children of ``node`` in the tree."""
        return sorted(child for child, par in self.parent.items()
                      if par == node)


def build_collection_tree(channel: Channel, sink: int,
                          alive: Optional[Sequence[int]] = None,
                          prr_threshold: float = 0.5,
                          probe_bytes: int = 40) -> CollectionTree:
    """Compute the minimum-ETX tree toward ``sink`` over usable links."""
    graph = channel.connectivity_graph(prr_threshold, probe_bytes)
    if alive is not None:
        dead = set(graph.nodes) - set(alive)
        graph.remove_nodes_from(dead)
    tree = CollectionTree(sink=sink)
    if sink not in graph:
        return tree
    lengths, paths = nx.single_source_dijkstra(graph, sink, weight="etx")
    for node, path in paths.items():
        if node == sink:
            tree.parent[node] = None
        else:
            # path runs sink -> ... -> node; the parent is the hop before.
            tree.parent[node] = path[-2]
        tree.etx_to_sink[node] = lengths[node]
    return tree
