"""Unslotted CSMA/CA MAC (IEEE 802.15.4) over the continuous-time medium.

This is the traditional Asynchronous-Transmission stack the paper's
introduction argues against: nodes contend for the channel with binary
exponential backoff, unicasts are acknowledged and retried, and radios
listen continuously (no network-wide schedule exists to let them sleep).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.radio import phy
from repro.radio.energy import EnergyMeter
from repro.radio.medium import CsmaMedium
from repro.radio.packet import BROADCAST, Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: 802.15.4 default CSMA parameters.
MAC_MIN_BE: int = 3
MAC_MAX_BE: int = 5
MAC_MAX_CSMA_BACKOFFS: int = 4
MAC_MAX_FRAME_RETRIES: int = 3
#: How long a sender waits for an immediate ACK, seconds.
ACK_WAIT: float = 864e-6


@dataclass
class SendReport:
    """Outcome of one MAC-layer send."""

    frame: Frame
    accepted: bool
    acked: bool
    attempts: int
    cca_failures: int
    elapsed: float


class CsmaNode:
    """One always-listening CSMA/CA transceiver plus its MAC logic."""

    def __init__(self, sim: "Simulator", node_id: int, medium: CsmaMedium,
                 rng: np.random.Generator,
                 receive_callback: Optional[Callable[[Frame], None]] = None):
        self.sim = sim
        self.node_id = node_id
        self.medium = medium
        self.rng = rng
        self.receive_callback = receive_callback
        self.energy = EnergyMeter()
        self.alive = True
        self._born = sim.now
        self._tx_seconds = 0.0
        self._sequence = count(1)
        self._ack_waiters: dict[tuple[int, int], object] = {}
        self._seen: set[tuple[int, int]] = set()
        self._seen_order: list[tuple[int, int]] = []
        medium.register(node_id, self._on_frame)
        # MAC statistics
        self.sent_data = 0
        self.sent_acks = 0
        self.delivered_to_app = 0
        self.dropped_channel_busy = 0
        self.dropped_no_ack = 0

    # -- lifecycle ---------------------------------------------------------

    def fail(self) -> None:
        """Crash the node: stop receiving and transmitting."""
        self.alive = False
        self.medium.unregister(self.node_id)

    def recover(self) -> None:
        """Restart a crashed node."""
        if not self.alive:
            self.alive = True
            self.medium.register(self.node_id, self._on_frame)

    def finalize_energy(self) -> EnergyMeter:
        """Charge idle-listening time and return the meter.

        The AT stack keeps the receiver on whenever not transmitting, which
        is where its energy disadvantage against ST duty-cycled rounds
        comes from.
        """
        elapsed = self.sim.now - self._born
        rx_time = max(elapsed - self._tx_seconds, 0.0)
        charged = self.energy.seconds["rx"]
        if rx_time > charged:
            self.energy.add("rx", rx_time - charged)
        return self.energy

    # -- sending -------------------------------------------------------------

    def next_sequence(self) -> int:
        return next(self._sequence) & 0xFF

    def make_frame(self, destination: int, payload: object,
                   payload_bytes: int, kind: str = "data") -> Frame:
        return Frame(source=self.node_id, destination=destination,
                     payload=payload, payload_bytes=payload_bytes, kind=kind,
                     sequence=self.next_sequence())

    def send(self, frame: Frame):
        """CSMA/CA transmission sub-process; yields a :class:`SendReport`.

        Use as ``report = yield from node.send(frame)``.
        """
        start = self.sim.now
        if not self.alive:
            return SendReport(frame, False, False, 0, 0, 0.0)
        cca_failures = 0
        attempts = 0
        retries_left = MAC_MAX_FRAME_RETRIES if not frame.is_broadcast else 0
        while True:
            granted = yield from self._csma_acquire()
            if not granted:
                cca_failures += 1
                self.dropped_channel_busy += 1
                return SendReport(frame, False, False, attempts,
                                  cca_failures, self.sim.now - start)
            attempts += 1
            ack_event = None
            if not frame.is_broadcast:
                ack_event = self.sim.event()
                self._ack_waiters[(frame.destination,
                                   frame.sequence)] = ack_event
            self.sent_data += 1
            self._tx_seconds += frame.airtime
            self.energy.add("tx", frame.airtime)
            yield from self.medium.transmit(self.node_id, frame)
            if frame.is_broadcast:
                return SendReport(frame, True, False, attempts,
                                  cca_failures, self.sim.now - start)
            # Unicast: wait for the immediate ACK.
            timeout = self.sim.timeout(ACK_WAIT)
            outcome = yield ack_event | timeout
            self._ack_waiters.pop((frame.destination, frame.sequence), None)
            if ack_event in outcome:
                return SendReport(frame, True, True, attempts,
                                  cca_failures, self.sim.now - start)
            if retries_left == 0:
                self.dropped_no_ack += 1
                return SendReport(frame, True, False, attempts,
                                  cca_failures, self.sim.now - start)
            retries_left -= 1

    def _csma_acquire(self):
        """Binary-exponential-backoff channel acquisition; True if clear."""
        backoff_exponent = MAC_MIN_BE
        for _ in range(MAC_MAX_CSMA_BACKOFFS + 1):
            slots = int(self.rng.integers(0, 2 ** backoff_exponent))
            yield self.sim.timeout(slots * phy.BACKOFF_UNIT + phy.CCA_TIME)
            if not self.medium.channel_busy(self.node_id):
                yield self.sim.timeout(phy.TURNAROUND_TIME)
                return True
            backoff_exponent = min(backoff_exponent + 1, MAC_MAX_BE)
        return False

    # -- receiving ------------------------------------------------------------

    def _on_frame(self, frame: Frame, rssi_dbm: float) -> None:
        if not self.alive:
            return
        if frame.kind == "ack":
            waiter = self._ack_waiters.get((frame.source, frame.sequence))
            if waiter is not None and not waiter.triggered:
                waiter.succeed(frame)
            return
        if frame.destination == self.node_id:
            self.sim.spawn(self._send_ack(frame), name="ack")
        key = (frame.source, frame.sequence)
        if key in self._seen:
            return
        self._remember(key)
        self.delivered_to_app += 1
        if self.receive_callback is not None:
            self.receive_callback(frame)

    def _remember(self, key: tuple[int, int]) -> None:
        self._seen.add(key)
        self._seen_order.append(key)
        if len(self._seen_order) > 512:
            old = self._seen_order.pop(0)
            self._seen.discard(old)

    def _send_ack(self, data_frame: Frame):
        yield self.sim.timeout(phy.TURNAROUND_TIME)
        ack = Frame(source=self.node_id, destination=data_frame.source,
                    payload=None, payload_bytes=0, kind="ack",
                    sequence=data_frame.sequence, mac_header_bytes=3)
        self.sent_acks += 1
        self._tx_seconds += ack.airtime
        self.energy.add("tx", ack.airtime)
        yield from self.medium.transmit(self.node_id, ack)
