"""Asynchronous-Transmission baseline stack: CSMA/CA, tree routing, collection."""

from repro.mac.collection import (
    CollectionNetwork,
    CollectionStats,
    Dissemination,
    Report,
)
from repro.mac.csma import CsmaNode, SendReport
from repro.mac.routing import CollectionTree, build_collection_tree

__all__ = [
    "CollectionNetwork",
    "CollectionStats",
    "CollectionTree",
    "CsmaNode",
    "Dissemination",
    "Report",
    "SendReport",
    "build_collection_tree",
]
