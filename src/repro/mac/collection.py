"""Centralized data collection and dissemination over the AT stack.

This models the conventional HAN architecture the paper contrasts with:
every DI unicasts reports hop-by-hop up an ETX tree to a central controller,
and the controller pushes schedules back down with per-hop rebroadcast
flooding.  The ST-vs-AT ablation measures this stack's end-to-end latency,
reliability and radio cost against one MiniCast round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.radio.medium import CsmaMedium
from repro.radio.packet import BROADCAST, Frame
from repro.mac.csma import CsmaNode
from repro.mac.routing import CollectionTree, build_collection_tree

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.radio.channel import Channel


@dataclass
class Report:
    """One DI status/request report travelling to the controller."""

    origin: int
    payload: object
    created_at: float
    report_id: int


@dataclass
class Dissemination:
    """One schedule push from the controller."""

    version: int
    payload: object
    created_at: float


@dataclass
class CollectionStats:
    """End-to-end behaviour of the centralized stack."""

    reports_sent: int = 0
    reports_delivered: int = 0
    report_latencies: list[float] = field(default_factory=list)
    dissemination_latencies: dict[int, list[float]] = field(
        default_factory=dict)
    #: frames abandoned because every CCA attempt found the channel busy
    #: (folded from the per-node MAC counters at snapshot time)
    dropped_channel_busy: int = 0
    #: unicast frames abandoned after exhausting MAC ACK retries
    dropped_no_ack: int = 0

    @property
    def report_delivery_ratio(self) -> float:
        if not self.reports_sent:
            return 1.0
        return self.reports_delivered / self.reports_sent

    @property
    def collection_drops(self) -> int:
        """Reports that never reached the sink (end-to-end loss)."""
        return self.reports_sent - self.reports_delivered

    def mean_report_latency(self) -> float:
        if not self.report_latencies:
            return 0.0
        return float(np.mean(self.report_latencies))


class CollectionNetwork:
    """All DIs + controller wired over CSMA with tree routing."""

    def __init__(self, sim: "Simulator", channel: "Channel",
                 medium: CsmaMedium, node_ids: list[int], sink: int,
                 rng_factory: Callable[[str], np.random.Generator],
                 report_bytes: int = 24, schedule_bytes: int = 64,
                 on_report: Optional[Callable[[Report], None]] = None,
                 on_schedule: Optional[Callable[[int, Dissemination],
                                                None]] = None):
        self.sim = sim
        self.channel = channel
        self.medium = medium
        self.sink = sink
        self.report_bytes = report_bytes
        self.schedule_bytes = schedule_bytes
        self.on_report = on_report
        self.on_schedule = on_schedule
        self.stats = CollectionStats()
        self.tree: CollectionTree = build_collection_tree(channel, sink)
        self._report_ids = iter(range(1, 10 ** 9))
        self._seen_reports: set[int] = set()
        self._seen_schedules: dict[int, int] = {}
        self.nodes: dict[int, CsmaNode] = {}
        for node_id in node_ids:
            node = CsmaNode(sim, node_id, medium,
                            rng_factory(f"csma-{node_id}"),
                            receive_callback=self._make_receiver(node_id))
            self.nodes[node_id] = node

    def snapshot_stats(self) -> CollectionStats:
        """The stats with the per-node MAC loss counters folded in.

        The nodes own the raw counters (:class:`CsmaNode` increments
        them at drop time); this sums them into the end-to-end record
        so exported results carry the full loss breakdown.  Safe to
        call repeatedly — the fold overwrites, never accumulates.
        """
        self.stats.dropped_channel_busy = sum(
            node.dropped_channel_busy for node in self.nodes.values())
        self.stats.dropped_no_ack = sum(
            node.dropped_no_ack for node in self.nodes.values())
        return self.stats

    # -- failures -----------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Crash a node and reroute the tree around it."""
        self.nodes[node_id].fail()
        self.tree = build_collection_tree(
            self.channel, self.sink,
            alive=[i for i, n in self.nodes.items() if n.alive])

    @property
    def controller_alive(self) -> bool:
        return self.nodes[self.sink].alive

    # -- upward reports ---------------------------------------------------------------

    def submit_report(self, origin: int, payload: object) -> None:
        """A DI hands a report to its MAC for delivery to the controller."""
        report = Report(origin=origin, payload=payload,
                        created_at=self.sim.now,
                        report_id=next(self._report_ids))
        self.stats.reports_sent += 1
        if origin == self.sink:
            self._deliver_report(report)
            return
        self.sim.spawn(self._forward_report(origin, report),
                       name=f"report-{report.report_id}")

    def _forward_report(self, at_node: int, report: Report):
        next_hop = self.tree.next_hop(at_node)
        if next_hop is None:
            return  # no route (e.g. partitioned after failures)
        node = self.nodes[at_node]
        frame = node.make_frame(next_hop, report, self.report_bytes)
        outcome = yield from node.send(frame)
        if not outcome.acked:
            return  # dropped after MAC retries: end-to-end loss
        # Reception side continues the relay in _make_receiver.

    def _deliver_report(self, report: Report) -> None:
        if report.report_id in self._seen_reports:
            return
        self._seen_reports.add(report.report_id)
        self.stats.reports_delivered += 1
        self.stats.report_latencies.append(self.sim.now - report.created_at)
        if self.on_report is not None:
            self.on_report(report)

    # -- downward dissemination -----------------------------------------------------

    def disseminate(self, version: int, payload: object) -> None:
        """Controller floods a schedule to every node (per-hop rebroadcast)."""
        if not self.controller_alive:
            return
        bundle = Dissemination(version=version, payload=payload,
                               created_at=self.sim.now)
        self._accept_schedule(self.sink, bundle)
        self.sim.spawn(self._rebroadcast(self.sink, bundle),
                       name=f"dissem-{version}")

    def _rebroadcast(self, at_node: int, bundle: Dissemination):
        node = self.nodes[at_node]
        frame = node.make_frame(BROADCAST, bundle, self.schedule_bytes)
        yield from node.send(frame)

    def _accept_schedule(self, node_id: int, bundle: Dissemination) -> None:
        best = self._seen_schedules.get(node_id, -1)
        if bundle.version <= best:
            return
        self._seen_schedules[node_id] = bundle.version
        latency = self.sim.now - bundle.created_at
        self.stats.dissemination_latencies.setdefault(
            bundle.version, []).append(latency)
        if self.on_schedule is not None:
            self.on_schedule(node_id, bundle)

    # -- frame demux --------------------------------------------------------------

    def _make_receiver(self, node_id: int) -> Callable[[Frame], None]:
        def receive(frame: Frame) -> None:
            payload = frame.payload
            if isinstance(payload, Report):
                if node_id == self.sink:
                    self._deliver_report(payload)
                elif frame.destination == node_id:
                    self.sim.spawn(self._forward_report(node_id, payload),
                                   name=f"relay-{payload.report_id}")
            elif isinstance(payload, Dissemination):
                already = self._seen_schedules.get(node_id, -1)
                self._accept_schedule(node_id, payload)
                if payload.version > already:
                    self.sim.spawn(self._rebroadcast(node_id, payload),
                                   name="dissem-relay")
        return receive
