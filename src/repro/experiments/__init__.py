"""Experiment harness: paper figures, CP trace, ablations."""

from repro.experiments.ablations import (
    cp_period_sweep,
    loss_sweep,
    neighborhood_coordination,
    scale_sweep,
    scheduler_variants,
    slots_sweep,
    spof_comparison,
    st_vs_at,
)
from repro.experiments.cp_trace import CpTraceResult, trace_cp
from repro.experiments.figures import (
    FigureData,
    fig2a,
    fig2b,
    fig2c,
    headline_numbers,
)
from repro.experiments.runner import (
    ParallelRunner,
    PolicyOutcome,
    RunSpec,
    WorkerFailure,
    compare_policies,
    run_registry,
    sweep_rates,
)
from repro.experiments import registry

__all__ = [
    "CpTraceResult",
    "FigureData",
    "ParallelRunner",
    "PolicyOutcome",
    "RunSpec",
    "WorkerFailure",
    "compare_policies",
    "cp_period_sweep",
    "fig2a",
    "fig2b",
    "fig2c",
    "headline_numbers",
    "loss_sweep",
    "neighborhood_coordination",
    "scale_sweep",
    "scheduler_variants",
    "slots_sweep",
    "registry",
    "run_registry",
    "spof_comparison",
    "st_vs_at",
    "sweep_rates",
    "trace_cp",
]
