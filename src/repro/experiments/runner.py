"""Experiment orchestration: policy comparisons over seed replications.

The :class:`ParallelRunner` fans independently seeded runs — registry
entries, (policy, seed) grids, neighborhood homes — out over
``multiprocessing`` workers.  Every run derives all randomness from its own
:class:`~repro.sim.rng.RandomStreams` root seed through order-independent
named streams, so results are bit-identical no matter how many workers
execute the batch or in which order they finish.

Units of work are picklable :class:`RunSpec` values; worker failures
surface as :class:`WorkerFailure` carrying the failing run's *name* plus
its traceback.  Higher-level grids (:func:`compare_policies`,
:func:`sweep_rates`, :func:`run_registry`) flatten every cell into one
batch so wall-clock is bounded by the slowest single run.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.loadstats import LoadStats, load_stats, mean_and_std
from repro.core.system import HanConfig, RunResult, run_experiment
from repro.workloads.scenarios import Scenario


class WorkerFailure(RuntimeError):
    """A fanned-out run raised; carries the failing run's name.

    The original traceback text rides along so the parent process can show
    *where* the worker died, not just that it did.
    """

    def __init__(self, name: str, detail: str):
        super().__init__(f"run {name!r} failed in worker:\n{detail}")
        self.name = name
        self.detail = detail


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a named, fully-specified experiment."""

    name: str
    config: HanConfig
    until: Optional[float] = None


def _execute_run_spec(spec: RunSpec) -> tuple:
    """Worker body for :meth:`ParallelRunner.run` (module-level: picklable).

    Failures are returned as data, not raised: exception instances don't
    always survive pickling, a ``(status, name, payload)`` triple always
    does.
    """
    try:
        result = run_experiment(spec.config, until=spec.until)
        return ("ok", spec.name, result.portable())
    except Exception:
        return ("err", spec.name, traceback.format_exc())


def _execute_registry_entry(exp_id: str) -> tuple:
    """Worker body for :meth:`ParallelRunner.regenerate`."""
    from repro.experiments.registry import get
    try:
        return ("ok", exp_id, get(exp_id).regenerate())
    except Exception:
        return ("err", exp_id, traceback.format_exc())


class ParallelRunner:
    """Order-preserving fan-out of independent runs over worker processes.

    ``jobs=1`` executes in-process (no pickling round-trip), which the
    determinism tests exploit: the same specs must produce bit-identical
    results under 1 and N workers.
    """

    def __init__(self, jobs: int = 1, mp_context: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._mp_context = mp_context

    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute every spec; results come back in input order."""
        return self._map(_execute_run_spec, list(specs))

    def regenerate(self, exp_ids: Sequence[str]) -> list[object]:
        """Regenerate registry artefacts (figures/ablations) by id."""
        return self._map(_execute_registry_entry, list(exp_ids))

    def _map(self, worker: Callable[[object], tuple],
             items: list) -> list:
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            outcomes = [worker(item) for item in items]
        else:
            context = multiprocessing.get_context(self._mp_context)
            processes = min(self.jobs, len(items))
            with context.Pool(processes=processes) as pool:
                outcomes = pool.map(worker, items, chunksize=1)
        results = []
        for status, name, payload in outcomes:
            if status == "err":
                raise WorkerFailure(name, payload)
            results.append(payload)
        return results


def run_registry(exp_ids: Optional[Sequence[str]] = None,
                 jobs: int = 1) -> list[tuple[str, object]]:
    """Regenerate registry entries (all of them by default), in parallel.

    Returns ``(exp_id, artefact)`` pairs in id order.  Unknown ids raise
    ``KeyError`` up front, before any work is spawned.
    """
    from repro.experiments.registry import all_experiments, get
    if exp_ids:
        ids = [get(exp_id).exp_id for exp_id in exp_ids]
    else:
        ids = [entry.exp_id for entry in all_experiments()]
    artefacts = ParallelRunner(jobs=jobs).regenerate(ids)
    return list(zip(ids, artefacts))


@dataclass
class PolicyOutcome:
    """Per-policy aggregation over seeds."""

    policy: str
    results: list[RunResult] = field(default_factory=list)

    def stats(self) -> list[LoadStats]:
        """Per-seed :class:`~repro.analysis.loadstats.LoadStats`."""
        return [r.stats() for r in self.results]

    def metric(self, name: str) -> tuple[float, float]:
        """Mean ± std of one LoadStats field across seeds."""
        values = [getattr(s, name) for s in self.stats()]
        return mean_and_std(values)

    def waiting_time_mean(self) -> float:
        """Mean request waiting time pooled across every seed's run."""
        waits: list[float] = []
        for result in self.results:
            waits.extend(result.waiting_times())
        return float(np.mean(waits)) if waits else 0.0


def compare_policies(scenario: Scenario,
                     policies: Sequence[str] = ("coordinated",
                                                "uncoordinated"),
                     seeds: Sequence[int] = (1, 2, 3),
                     cp_fidelity: str = "round",
                     horizon: Optional[float] = None,
                     jobs: int = 1,
                     **config_kwargs) -> dict[str, PolicyOutcome]:
    """Run every (policy, seed) combination of one scenario."""
    specs = [RunSpec(name=f"{scenario.name}/{policy}/seed{seed}",
                     config=HanConfig(scenario=scenario, policy=policy,
                                      cp_fidelity=cp_fidelity, seed=seed,
                                      **config_kwargs),
                     until=horizon)
             for policy in policies for seed in seeds]
    results = ParallelRunner(jobs=jobs).run(specs)
    outcomes = {policy: PolicyOutcome(policy) for policy in policies}
    for result in results:
        outcomes[result.config.policy].results.append(result)
    return outcomes


def sweep_rates(scenario: Scenario, rates: Sequence[float],
                policies: Sequence[str] = ("coordinated", "uncoordinated"),
                seeds: Sequence[int] = (1, 2, 3),
                cp_fidelity: str = "round",
                horizon: Optional[float] = None,
                jobs: int = 1,
                **config_kwargs) -> dict[float, dict[str, PolicyOutcome]]:
    """The Figure 2(b)/(c) sweep: policies × arrival rates × seeds.

    With ``jobs > 1`` the *whole* grid — every (rate, policy, seed) cell —
    is one flat batch, so wall-clock is bounded by the slowest single run.
    """
    specs = []
    for rate in rates:
        rated = scenario.with_rate(rate)
        for policy in policies:
            for seed in seeds:
                specs.append(RunSpec(
                    name=f"{rated.name}/{policy}/seed{seed}",
                    config=HanConfig(scenario=rated, policy=policy,
                                     cp_fidelity=cp_fidelity, seed=seed,
                                     **config_kwargs),
                    until=horizon))
    results = ParallelRunner(jobs=jobs).run(specs)
    table: dict[float, dict[str, PolicyOutcome]] = {
        rate: {policy: PolicyOutcome(policy) for policy in policies}
        for rate in rates}
    for result in results:
        rate = result.config.scenario.arrival_rate_per_hour
        table[rate][result.config.policy].results.append(result)
    return table
