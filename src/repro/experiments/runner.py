"""Experiment orchestration: policy comparisons over seed replications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.loadstats import LoadStats, load_stats, mean_and_std
from repro.core.system import HanConfig, RunResult, run_experiment
from repro.workloads.scenarios import Scenario


@dataclass
class PolicyOutcome:
    """Per-policy aggregation over seeds."""

    policy: str
    results: list[RunResult] = field(default_factory=list)

    def stats(self) -> list[LoadStats]:
        return [r.stats() for r in self.results]

    def metric(self, name: str) -> tuple[float, float]:
        """Mean ± std of one LoadStats field across seeds."""
        values = [getattr(s, name) for s in self.stats()]
        return mean_and_std(values)

    def waiting_time_mean(self) -> float:
        waits: list[float] = []
        for result in self.results:
            waits.extend(result.waiting_times())
        return float(np.mean(waits)) if waits else 0.0


def compare_policies(scenario: Scenario,
                     policies: Sequence[str] = ("coordinated",
                                                "uncoordinated"),
                     seeds: Sequence[int] = (1, 2, 3),
                     cp_fidelity: str = "round",
                     horizon: Optional[float] = None,
                     **config_kwargs) -> dict[str, PolicyOutcome]:
    """Run every (policy, seed) combination of one scenario."""
    outcomes = {policy: PolicyOutcome(policy) for policy in policies}
    for policy in policies:
        for seed in seeds:
            config = HanConfig(scenario=scenario, policy=policy,
                               cp_fidelity=cp_fidelity, seed=seed,
                               **config_kwargs)
            outcomes[policy].results.append(
                run_experiment(config, until=horizon))
    return outcomes


def sweep_rates(scenario: Scenario, rates: Sequence[float],
                policies: Sequence[str] = ("coordinated", "uncoordinated"),
                seeds: Sequence[int] = (1, 2, 3),
                cp_fidelity: str = "round",
                **config_kwargs) -> dict[float, dict[str, PolicyOutcome]]:
    """The Figure 2(b)/(c) sweep: policies × arrival rates × seeds."""
    table: dict[float, dict[str, PolicyOutcome]] = {}
    for rate in rates:
        table[rate] = compare_policies(scenario.with_rate(rate), policies,
                                       seeds, cp_fidelity, **config_kwargs)
    return table
