"""Experiment orchestration: policy comparisons over seed replications.

The :class:`ParallelRunner` fans independently seeded runs — registry
entries, (policy, seed) grids, neighborhood homes — out over the
persistent worker pool of :mod:`repro.experiments.pool`.  Every run
derives all randomness from its own
:class:`~repro.sim.rng.RandomStreams` root seed through order-independent
named streams, so results are bit-identical no matter how many workers
execute the batch, in which order they finish, or whether the pool was
freshly spawned or reused from an earlier batch.

Units of work are picklable :class:`RunSpec` values; worker failures
surface as :class:`WorkerFailure` carrying the failing run's *name* plus
its traceback.  Higher-level grids (:func:`compare_policies`,
:func:`sweep_rates`, :func:`run_registry`) flatten every cell into one
batch so wall-clock is bounded by the slowest single run.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.loadstats import LoadStats, load_stats, mean_and_std
from repro.core.system import HanConfig, RunResult, execute_config
from repro.experiments.pool import WorkerPool, shared_pool
from repro.workloads.scenarios import Scenario


class WorkerFailure(RuntimeError):
    """A fanned-out run raised; carries the failing run's name.

    The original traceback text rides along so the parent process can show
    *where* the worker died, not just that it did.
    """

    def __init__(self, name: str, detail: str):
        super().__init__(f"run {name!r} failed in worker:\n{detail}")
        self.name = name
        self.detail = detail


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a named, fully-specified experiment."""

    name: str
    config: HanConfig
    until: Optional[float] = None


def _execute_run_spec(spec: RunSpec) -> tuple:
    """Worker body for :meth:`ParallelRunner.run` (module-level: picklable).

    Failures are returned as data, not raised: exception instances don't
    always survive pickling, a ``(status, name, payload)`` triple always
    does.
    """
    try:
        result = execute_config(spec.config, until=spec.until)
        return ("ok", spec.name, result.portable())
    except Exception:
        return ("err", spec.name, traceback.format_exc())


def _execute_registry_entry(item: tuple) -> tuple:
    """Worker body for :meth:`ParallelRunner.regenerate`.

    ``item`` is ``(exp_id, cache)`` — the experiment id plus the (possibly
    ``None``) :class:`~repro.api.cache.ResultCache` to consult.  Registry
    entries are declarative now: when the experiment carries an
    :class:`~repro.api.spec.ExperimentSpec` (all built-ins do), the
    worker executes it through the spec API — the same path
    ``repro run --spec`` takes, including the result cache — and falls
    back to the entry's bare ``regenerate`` callable otherwise.
    """
    exp_id, cache = item
    from repro.experiments.registry import get
    try:
        experiment = get(exp_id)
        if experiment.spec is not None:
            from repro.api import run as run_spec
            return ("ok", exp_id,
                    run_spec(experiment.spec, cache=cache).artefact)
        return ("ok", exp_id, experiment.regenerate())
    except Exception:
        return ("err", exp_id, traceback.format_exc())


class ParallelRunner:
    """Order-preserving fan-out of independent runs over worker processes.

    ``jobs > 1`` draws a persistent pool from
    :func:`repro.experiments.pool.shared_pool` (or uses an explicitly
    provided :class:`~repro.experiments.pool.WorkerPool`), so
    consecutive batches reuse warm workers instead of forking per batch.
    ``jobs=1`` executes in-process (no pickling round-trip), which the
    determinism tests exploit: the same specs must produce bit-identical
    results under 1 worker, N workers, and a reused pool.
    """

    def __init__(self, jobs: int = 1, mp_context: Optional[str] = None,
                 pool: Optional[WorkerPool] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._mp_context = mp_context
        self._pool = pool

    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute every spec; results come back in input order."""
        return self._map(_execute_run_spec, list(specs))

    def regenerate(self, exp_ids: Sequence[str],
                   cache: Optional[object] = None) -> list[object]:
        """Regenerate registry artefacts (figures/ablations) by id.

        ``cache`` (a :class:`~repro.api.cache.ResultCache`, or ``None``)
        rides along to every worker, so spec-backed entries are served
        from / stored to the result cache.
        """
        return self._map(_execute_registry_entry,
                         [(exp_id, cache) for exp_id in exp_ids])

    def execute(self, worker: Callable[[object], tuple],
                items: Sequence[object]) -> list[tuple]:
        """Fan a custom worker body over the pool, runner-style.

        ``worker`` must be module-level picklable and return the
        ``("ok"|"err", name, payload)`` triples the built-in bodies use
        (failures as data — tracebacks always survive pickling).  Unlike
        :meth:`run`, the triples come back **raw**: callers whose ok
        payloads own external resources (the fleet shard executor's
        shared-memory frames, :mod:`repro.neighborhood.shard`) must be
        able to reclaim them before surfacing an error triple as
        :class:`WorkerFailure`.
        """
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return [worker(item) for item in items]
        pool = self._pool if self._pool is not None \
            else shared_pool(self.jobs, self._mp_context)
        return pool.map(worker, items)

    def _map(self, worker: Callable[[object], tuple],
             items: list) -> list:
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            outcomes = [worker(item) for item in items]
        else:
            pool = self._pool if self._pool is not None \
                else shared_pool(self.jobs, self._mp_context)
            outcomes = pool.map(worker, items)
        results = []
        for status, name, payload in outcomes:
            if status == "err":
                raise WorkerFailure(name, payload)
            results.append(payload)
        return results


def run_registry(exp_ids: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 cache: Optional[object] = None) -> list[tuple[str, object]]:
    """Regenerate registry entries (all of them by default), in parallel.

    Returns ``(exp_id, artefact)`` pairs in id order.  Unknown ids raise
    ``KeyError`` up front, before any work is spawned.  ``cache`` is
    forwarded to every spec execution (see
    :func:`repro.api.run.run`); ``repro regen`` passes the default
    on-disk cache so unchanged artefacts regenerate near-instantly.
    """
    from repro.experiments.registry import all_experiments, get
    if exp_ids:
        ids = [get(exp_id).exp_id for exp_id in exp_ids]
    else:
        ids = [entry.exp_id for entry in all_experiments()]
    artefacts = ParallelRunner(jobs=jobs).regenerate(ids, cache=cache)
    return list(zip(ids, artefacts))


@dataclass
class PolicyOutcome:
    """Per-policy aggregation over seeds."""

    policy: str
    results: list[RunResult] = field(default_factory=list)

    def stats(self) -> list[LoadStats]:
        """Per-seed :class:`~repro.analysis.loadstats.LoadStats`."""
        return [r.stats() for r in self.results]

    def metric(self, name: str) -> tuple[float, float]:
        """Mean ± std of one LoadStats field across seeds."""
        values = [getattr(s, name) for s in self.stats()]
        return mean_and_std(values)

    def waiting_time_mean(self) -> float:
        """Mean request waiting time pooled across every seed's run."""
        waits: list[float] = []
        for result in self.results:
            waits.extend(result.waiting_times())
        return float(np.mean(waits)) if waits else 0.0


def _sweep_spec(scenario: Scenario, rates: Sequence[float],
                policies: Sequence[str], seeds: Sequence[int],
                cp_fidelity: str, horizon: Optional[float],
                config_kwargs: dict):
    """Build the ExperimentSpec equivalent of a legacy grid call."""
    from repro.api.spec import (
        ControlSpec,
        ExperimentSpec,
        SweepSpec,
        spec_from_scenario,
    )
    from dataclasses import replace as dc_replace
    control_kwargs = dict(config_kwargs)
    if "topology_name" in control_kwargs:
        control_kwargs["topology"] = control_kwargs.pop("topology_name")
    control = ControlSpec(cp_fidelity=cp_fidelity, **control_kwargs)
    scenario_spec = spec_from_scenario(scenario)
    if rates:
        # Each cell's rate comes from the axis; the base scenario's own
        # rate would be dead configuration (the validator rejects it).
        scenario_spec = dc_replace(scenario_spec, rate_per_hour=None)
    return ExperimentSpec(
        name=f"{scenario.base_name}-sweep", kind="sweep",
        scenario=scenario_spec, control=control,
        seeds=tuple(seeds), until_s=horizon,
        sweep=SweepSpec(rates=tuple(rates), policies=tuple(policies)))


def compare_policies(scenario: Scenario,
                     policies: Sequence[str] = ("coordinated",
                                                "uncoordinated"),
                     seeds: Sequence[int] = (1, 2, 3),
                     cp_fidelity: str = "round",
                     horizon: Optional[float] = None,
                     jobs: int = 1,
                     **config_kwargs) -> dict[str, PolicyOutcome]:
    """Deprecated grid runner; use :func:`repro.api.run.run`.

    Shim: builds the equivalent sweep
    :class:`~repro.api.spec.ExperimentSpec` (rate axis empty), delegates
    to the spec API and reshapes the uniform result back into the legacy
    per-policy mapping — bit-identically.
    """
    import warnings
    warnings.warn(
        "compare_policies() is deprecated; build a sweep ExperimentSpec "
        "and call repro.api.run() instead", DeprecationWarning,
        stacklevel=2)
    from repro.api import run as run_spec
    spec = _sweep_spec(scenario, (), policies, seeds, cp_fidelity,
                       horizon, config_kwargs)
    return run_spec(spec, jobs=jobs).by_policy()


def sweep_rates(scenario: Scenario, rates: Sequence[float],
                policies: Sequence[str] = ("coordinated", "uncoordinated"),
                seeds: Sequence[int] = (1, 2, 3),
                cp_fidelity: str = "round",
                horizon: Optional[float] = None,
                jobs: int = 1,
                **config_kwargs) -> dict[float, dict[str, PolicyOutcome]]:
    """Deprecated Figure 2(b)/(c) sweep; use :func:`repro.api.run.run`.

    Shim: builds the equivalent sweep
    :class:`~repro.api.spec.ExperimentSpec` and delegates; the compiled
    grid flattens exactly as before (every (rate, policy, seed) cell one
    batch entry), so results and worker fan-out are unchanged.
    """
    import warnings
    warnings.warn(
        "sweep_rates() is deprecated; build a sweep ExperimentSpec and "
        "call repro.api.run() instead", DeprecationWarning, stacklevel=2)
    from repro.api import run as run_spec
    spec = _sweep_spec(scenario, rates, policies, seeds, cp_fidelity,
                       horizon, config_kwargs)
    return run_spec(spec, jobs=jobs).sweep_table()
