"""A registry of every reproducible artefact in this repository.

Maps experiment ids (DESIGN.md's experiment index) to the callables that
regenerate them, so tooling — the CLI, docs generators, CI — can enumerate
and run them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments import ablations, cp_trace, figures


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact."""

    exp_id: str
    paper_artefact: str
    description: str
    regenerate: Callable[..., object]
    bench: str


REGISTRY: dict[str, Experiment] = {}


def _register(exp_id: str, paper_artefact: str, description: str,
              regenerate: Callable[..., object], bench: str) -> None:
    REGISTRY[exp_id] = Experiment(exp_id, paper_artefact, description,
                                  regenerate, bench)


_register(
    "FIG2A", "Figure 2(a)",
    "total system load vs time (350 min, 30 req/h), with vs w/o "
    "coordination",
    figures.fig2a, "benchmarks/test_bench_fig2a.py")
_register(
    "FIG2B", "Figure 2(b)",
    "peak load vs arrival rate {4, 18, 30}/h, with vs w/o coordination",
    figures.fig2b, "benchmarks/test_bench_fig2b.py")
_register(
    "FIG2C", "Figure 2(c)",
    "average load with load-deviation bars vs arrival rate",
    figures.fig2c, "benchmarks/test_bench_fig2c.py")
_register(
    "HEADLINE", "abstract / §III text",
    "peak reduced up to 50%, variation up to 58%, average unchanged",
    figures.headline_numbers, "benchmarks/test_bench_headline.py")
_register(
    "FIG1", "Figure 1",
    "MiniCast Communication-Plane rounds every 2 s (latency, delivery, "
    "sync, energy)",
    cp_trace.trace_cp, "benchmarks/test_bench_cp_round.py")
_register(
    "ABL-CP-PERIOD", "design choice (2 s round period)",
    "CP-period sweep: admission latency vs load shape",
    ablations.cp_period_sweep,
    "benchmarks/test_bench_ablation_cp_period.py")
_register(
    "ABL-LOSS", "robustness",
    "path-loss sweep across the flood-delivery cliff",
    ablations.loss_sweep, "benchmarks/test_bench_ablation_loss.py")
_register(
    "ABL-SCALE", "scalability",
    "fleet-size sweep 10→60 devices at constant per-device rate",
    ablations.scale_sweep, "benchmarks/test_bench_ablation_scale.py")
_register(
    "ABL-SLOTS", "sensitivity",
    "minDCD/maxDCP working-point sweep",
    ablations.slots_sweep, "benchmarks/test_bench_ablation_slots.py")
_register(
    "ABL-VARIANTS", "design choice (placement mode)",
    "stagger vs grid placement; period vs strict deferral",
    ablations.scheduler_variants,
    "benchmarks/test_bench_ablation_variants.py")
_register(
    "NBHD-COORD", "beyond-paper: feeder-level coordination",
    "cross-home phase staggering vs independent homes: diversity-factor "
    "uplift across fleet mixes and sizes",
    ablations.neighborhood_coordination,
    "benchmarks/test_bench_neighborhood.py")
_register(
    "ABL-ST-VS-AT", "introduction's motivation",
    "ST vs AT stacks: energy, latency, request storms",
    ablations.st_vs_at, "benchmarks/test_bench_st_vs_at.py")
_register(
    "ABL-SPOF", "introduction's motivation",
    "controller death vs one-DI death",
    ablations.spof_comparison,
    "benchmarks/test_bench_ablation_variants.py")


def get(exp_id: str) -> Experiment:
    """Look up one experiment (KeyError lists the known ids)."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")


def all_experiments() -> list[Experiment]:
    """Every registered experiment, in id order."""
    return [REGISTRY[key] for key in sorted(REGISTRY)]
