"""A registry of every reproducible artefact in this repository.

Maps experiment ids (DESIGN.md's experiment index) to declarative
:class:`~repro.api.spec.ExperimentSpec` values plus the expected-artefact
locations, so tooling — the CLI (``repro spec show/dump``, ``repro
regen``), docs generators, CI's spec-roundtrip job — can enumerate,
serialize and run them uniformly.  Each entry still carries its direct
``regenerate`` callable, but execution routes through the spec
(``repro.api.run``): the spec *is* the experiment, the callable just
names its generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.api.spec import ArtefactSpec, ExperimentSpec
from repro.experiments import ablations, cp_trace, figures


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact: a named spec + where its output lives."""

    exp_id: str
    paper_artefact: str
    description: str
    regenerate: Callable[..., object]
    bench: str
    #: The declarative spec equivalent to calling ``regenerate()`` with
    #: defaults; ``repro regen`` executes this through the spec API.
    spec: Optional[ExperimentSpec] = field(default=None)
    #: Committed rendering of the expected artefact (the golden text the
    #: bench harness regenerates), relative to the repo root.
    artefact_path: str = ""


REGISTRY: dict[str, Experiment] = {}


def _register(exp_id: str, paper_artefact: str, description: str,
              regenerate: Callable[..., object], bench: str,
              artefact_kind: str, artefact_file: str) -> None:
    spec = ExperimentSpec(name=exp_id, kind="artefact",
                          artefact=ArtefactSpec(kind=artefact_kind))
    REGISTRY[exp_id] = Experiment(
        exp_id, paper_artefact, description, regenerate, bench,
        spec=spec,
        artefact_path=f"benchmarks/results/{artefact_file}.txt")


_register(
    "FIG2A", "Figure 2(a)",
    "total system load vs time (350 min, 30 req/h), with vs w/o "
    "coordination",
    figures.fig2a, "benchmarks/test_bench_fig2a.py",
    "fig2a", "fig2a")
_register(
    "FIG2B", "Figure 2(b)",
    "peak load vs arrival rate {4, 18, 30}/h, with vs w/o coordination",
    figures.fig2b, "benchmarks/test_bench_fig2b.py",
    "fig2b", "fig2b")
_register(
    "FIG2C", "Figure 2(c)",
    "average load with load-deviation bars vs arrival rate",
    figures.fig2c, "benchmarks/test_bench_fig2c.py",
    "fig2c", "fig2c")
_register(
    "HEADLINE", "abstract / §III text",
    "peak reduced up to 50%, variation up to 58%, average unchanged",
    figures.headline_numbers, "benchmarks/test_bench_headline.py",
    "headline", "headline")
_register(
    "FIG1", "Figure 1",
    "MiniCast Communication-Plane rounds every 2 s (latency, delivery, "
    "sync, energy)",
    cp_trace.trace_cp, "benchmarks/test_bench_cp_round.py",
    "cp-trace", "fig1-cp-trace")
_register(
    "ABL-CP-PERIOD", "design choice (2 s round period)",
    "CP-period sweep: admission latency vs load shape",
    ablations.cp_period_sweep,
    "benchmarks/test_bench_ablation_cp_period.py",
    "abl-cp-period", "abl-cp-period")
_register(
    "ABL-LOSS", "robustness",
    "path-loss sweep across the flood-delivery cliff",
    ablations.loss_sweep, "benchmarks/test_bench_ablation_loss.py",
    "abl-loss", "abl-loss")
_register(
    "ABL-SCALE", "scalability",
    "fleet-size sweep 10→60 devices at constant per-device rate",
    ablations.scale_sweep, "benchmarks/test_bench_ablation_scale.py",
    "abl-scale", "abl-scale")
_register(
    "ABL-SLOTS", "sensitivity",
    "minDCD/maxDCP working-point sweep",
    ablations.slots_sweep, "benchmarks/test_bench_ablation_slots.py",
    "abl-slots", "abl-slots")
_register(
    "ABL-VARIANTS", "design choice (placement mode)",
    "stagger vs grid placement; period vs strict deferral",
    ablations.scheduler_variants,
    "benchmarks/test_bench_ablation_variants.py",
    "abl-variants", "abl-variants")
_register(
    "NBHD-COORD", "beyond-paper: feeder-level coordination",
    "cross-home phase staggering vs independent homes: diversity-factor "
    "uplift across fleet mixes and sizes",
    ablations.neighborhood_coordination,
    "benchmarks/test_bench_neighborhood.py",
    "nbhd-coord", "nbhd-coord")
_register(
    "ABL-ST-VS-AT", "introduction's motivation",
    "ST vs AT stacks: energy, latency, request storms",
    ablations.st_vs_at, "benchmarks/test_bench_st_vs_at.py",
    "abl-st-vs-at", "abl-st-vs-at")
_register(
    "ABL-SPOF", "introduction's motivation",
    "controller death vs one-DI death",
    ablations.spof_comparison,
    "benchmarks/test_bench_ablation_variants.py",
    "abl-spof", "abl-spof")
_register(
    "GRID-10K", "beyond-paper: hierarchical multi-feeder grid",
    "10,000 homes on 20 feeders under one substation: two-tier "
    "coordination and the substation-level diversity uplift, "
    "profile-digest locked",
    ablations.grid_uplift,
    "benchmarks/test_bench_grid.py",
    "grid-10k", "grid-10k")
_register(
    "NBHD-ONLINE", "beyond-paper: online per-epoch coordination",
    "500 homes re-negotiating phase offsets each CP epoch against "
    "forecast envelopes: oracle recovery of the hindsight ceiling and "
    "the noise-degradation sweep, profile-digest locked",
    ablations.online_uplift,
    "benchmarks/test_bench_online.py",
    "nbhd-online", "nbhd-online")


def get(exp_id: str) -> Experiment:
    """Look up one experiment (KeyError lists the known ids)."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")


def all_experiments() -> list[Experiment]:
    """Every registered experiment, in id order."""
    return [REGISTRY[key] for key in sorted(REGISTRY)]
