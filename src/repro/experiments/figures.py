"""Regeneration of every figure in the paper's evaluation (Figure 2a–c).

Each function returns a plain data structure and a rendered text block, so
the benchmark harness can both assert on the numbers and print the same
series/rows the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.loadstats import percent_reduction
from repro.analysis.report import format_table, side_by_side_series, sparkline
from repro.api import run as run_spec
from repro.api.spec import ControlSpec, ExperimentSpec, SweepSpec
from repro.sim.units import KILOWATT, MINUTE
from repro.workloads.scenarios import PAPER_RATES, paper_scenario


def _paper_sweep(name: str, rates: Sequence[float], seeds: Sequence[int],
                 cp_fidelity: str):
    """Run the paper scenario's (rate x policy x seed) grid via the API."""
    spec = ExperimentSpec(
        name=name, kind="sweep",
        control=ControlSpec(cp_fidelity=cp_fidelity),
        seeds=tuple(seeds),
        sweep=SweepSpec(rates=tuple(rates)))
    return run_spec(spec).sweep_table()


@dataclass
class FigureData:
    """One regenerated figure: data + rendered text."""

    figure_id: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def fig2a(seed: int = 1, cp_fidelity: str = "round",
          sample_step: float = 1.0 * MINUTE,
          horizon: Optional[float] = None) -> FigureData:
    """Figure 2(a): total load vs time, high rate, with vs w/o coordination."""
    scenario = paper_scenario("high")
    series = {}
    stats = {}
    for policy, label in (("coordinated", "with_coordination"),
                          ("uncoordinated", "wo_coordination")):
        result = run_spec(ExperimentSpec(
            name=f"fig2a-{policy}",
            control=ControlSpec(policy=policy, cp_fidelity=cp_fidelity),
            seeds=(seed,), until_s=horizon)).run_result()
        series[label] = result.load_w
        stats[label] = result.stats(end=horizon)
    end = horizon if horizon is not None else scenario.horizon
    table = side_by_side_series(series, 0.0, end, sample_step,
                                value_scale=1.0 / KILOWATT)
    sparks = "\n".join(
        f"{label:>18}: "
        + sparkline(list(s.sample_grid(0.0, end, sample_step)[1]))
        for label, s in series.items())
    summary = format_table(
        ["series", "peak kW", "mean kW", "std kW", "max step kW"],
        [[label, st.peak_kw, st.mean_kw, st.std_kw, st.max_step_kw]
         for label, st in stats.items()],
        title="Figure 2(a): load vs time (high arrival rate)")
    return FigureData(
        figure_id="fig2a",
        text=f"{summary}\n\n{sparks}\n\n{table}",
        data={"series": series, "stats": stats, "seed": seed})


def fig2b(seeds: Sequence[int] = (1, 2, 3), cp_fidelity: str = "round",
          rates: Optional[Sequence[float]] = None,
          horizon: Optional[float] = None) -> FigureData:
    """Figure 2(b): peak load vs arrival rate, with vs w/o coordination."""
    rates = list(rates) if rates is not None else sorted(PAPER_RATES.values())
    sweep = _paper_sweep("fig2b", rates, seeds, cp_fidelity)
    rows = []
    data = {}
    for rate in rates:
        with_mean, with_std = sweep[rate]["coordinated"].metric("peak_kw")
        wo_mean, wo_std = sweep[rate]["uncoordinated"].metric("peak_kw")
        reduction = percent_reduction(wo_mean, with_mean)
        rows.append([f"{rate:g}", wo_mean, wo_std, with_mean, with_std,
                     reduction])
        data[rate] = {"with": (with_mean, with_std),
                      "without": (wo_mean, wo_std),
                      "reduction_pct": reduction}
    text = format_table(
        ["rate/h", "w/o peak kW", "±", "with peak kW", "±", "reduction %"],
        rows, title="Figure 2(b): peak load vs arrival rate")
    best = max(d["reduction_pct"] for d in data.values())
    text += f"\npeak-load reduction up to {best:.1f}% (paper: up to 50%)"
    return FigureData(figure_id="fig2b", text=text,
                      data={"rates": data, "best_reduction_pct": best})


def fig2c(seeds: Sequence[int] = (1, 2, 3), cp_fidelity: str = "round",
          rates: Optional[Sequence[float]] = None,
          horizon: Optional[float] = None) -> FigureData:
    """Figure 2(c): average load with deviation bars vs arrival rate.

    The paper's error bars show the *time variation* of the load (its
    standard deviation over the run), which is what coordination shrinks.
    """
    rates = list(rates) if rates is not None else sorted(PAPER_RATES.values())
    sweep = _paper_sweep("fig2c", rates, seeds, cp_fidelity)
    rows = []
    data = {}
    for rate in rates:
        with_mean, _ = sweep[rate]["coordinated"].metric("mean_kw")
        wo_mean, _ = sweep[rate]["uncoordinated"].metric("mean_kw")
        with_dev, _ = sweep[rate]["coordinated"].metric("std_kw")
        wo_dev, _ = sweep[rate]["uncoordinated"].metric("std_kw")
        reduction = percent_reduction(wo_dev, with_dev)
        rows.append([f"{rate:g}", wo_mean, wo_dev, with_mean, with_dev,
                     reduction])
        data[rate] = {"with": (with_mean, with_dev),
                      "without": (wo_mean, wo_dev),
                      "std_reduction_pct": reduction}
    text = format_table(
        ["rate/h", "w/o avg kW", "±dev", "with avg kW", "±dev",
         "dev reduction %"],
        rows, title="Figure 2(c): average load ± load deviation")
    best = max(d["std_reduction_pct"] for d in data.values())
    text += f"\nload-variation reduction up to {best:.1f}% (paper: up to 58%)"
    return FigureData(figure_id="fig2c", text=text,
                      data={"rates": data, "best_reduction_pct": best})


def headline_numbers(seeds: Sequence[int] = (1, 2, 3, 4, 5),
                     cp_fidelity: str = "round") -> FigureData:
    """§III text: peak ↓ up to 50 %, variation ↓ up to 58 %, mean equal."""
    rates = sorted(PAPER_RATES.values())
    sweep = _paper_sweep("headline", rates, seeds, cp_fidelity)
    peak_reductions = []
    std_reductions = []
    mean_drifts = []
    for rate in rates:
        for with_stats, wo_stats in zip(
                sweep[rate]["coordinated"].stats(),
                sweep[rate]["uncoordinated"].stats()):
            peak_reductions.append(percent_reduction(
                wo_stats.peak_kw, with_stats.peak_kw))
            std_reductions.append(percent_reduction(
                wo_stats.std_kw, with_stats.std_kw))
            drift_base = max(wo_stats.mean_kw, 1e-9)
            mean_drifts.append(100.0 * abs(
                with_stats.mean_kw - wo_stats.mean_kw) / drift_base)
    data = {
        "peak_reduction_max_pct": float(np.max(peak_reductions)),
        "peak_reduction_mean_pct": float(np.mean(peak_reductions)),
        "std_reduction_max_pct": float(np.max(std_reductions)),
        "std_reduction_mean_pct": float(np.mean(std_reductions)),
        "mean_drift_mean_pct": float(np.mean(mean_drifts)),
    }
    text = format_table(
        ["metric", "paper", "measured"],
        [["peak reduction (up to)", "50%",
          f"{data['peak_reduction_max_pct']:.1f}%"],
         ["peak reduction (mean)", "-",
          f"{data['peak_reduction_mean_pct']:.1f}%"],
         ["load-variation reduction (up to)", "58%",
          f"{data['std_reduction_max_pct']:.1f}%"],
         ["load-variation reduction (mean)", "-",
          f"{data['std_reduction_mean_pct']:.1f}%"],
         ["average-load drift", "~0%",
          f"{data['mean_drift_mean_pct']:.1f}%"]],
        title="Headline claims (paper §III) vs this reproduction")
    return FigureData(figure_id="headline", text=text, data=data)
