"""Ablations supporting the design choices DESIGN.md calls out.

Each function returns a :class:`~repro.experiments.figures.FigureData` whose
``text`` is the printable table and whose ``data`` carries the raw numbers
for assertions in the bench harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.analysis.loadstats import percent_reduction
from repro.analysis.report import format_table
from repro.core.scheduler import SchedulerConfig
from repro.core.system import HanConfig, HanSystem, execute_config
from repro.experiments.cp_trace import trace_cp
from repro.experiments.figures import FigureData
from repro.han.dutycycle import DutyCycleSpec
from repro.mac.collection import CollectionNetwork
from repro.radio.medium import CsmaMedium, FloodMedium
from repro.radio.topology import flocklab26
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import HOUR, MINUTE
from repro.workloads.scenarios import Scenario, paper_scenario


def _mean_wait_minutes(results) -> float:
    waits = []
    for result in results:
        waits.extend(result.waiting_times())
    return float(np.mean(waits)) / MINUTE if waits else 0.0


def cp_period_sweep(periods: Sequence[float] = (0.5, 2.0, 10.0, 60.0),
                    seeds: Sequence[int] = (1, 2),
                    horizon: Optional[float] = None) -> FigureData:
    """ABL-CP-PERIOD: how the 2 s MiniCast period affects coordination.

    The CP period bounds request-dissemination (hence admission) latency;
    at 15-minute slots even a 60 s period barely moves the load shape —
    evidence the paper's 2 s choice is comfortably conservative.
    """
    scenario = paper_scenario("high")
    rows = []
    data = {}
    for period in periods:
        results = [execute_config(
            HanConfig(scenario=scenario, policy="coordinated",
                      cp_fidelity="round", cp_period=period, seed=seed),
            until=horizon) for seed in seeds]
        stats = [r.stats(end=horizon) for r in results]
        admission_lat = []
        for result in results:
            admission_lat.extend(
                r.admitted_at - r.arrival_time for r in result.requests
                if r.admitted_at is not None)
        row = {
            "period_s": period,
            "admission_latency_s": float(np.mean(admission_lat))
            if admission_lat else 0.0,
            "peak_kw": float(np.mean([s.peak_kw for s in stats])),
            "std_kw": float(np.mean([s.std_kw for s in stats])),
            "wait_min": _mean_wait_minutes(results),
        }
        data[period] = row
        rows.append([f"{period:g}", row["admission_latency_s"],
                     row["peak_kw"], row["std_kw"], row["wait_min"]])
    text = format_table(
        ["CP period s", "admission lat s", "peak kW", "std kW",
         "wait min"],
        rows, title="ABL-CP-PERIOD: MiniCast period sweep (coordinated)")
    return FigureData(figure_id="abl-cp-period", text=text, data=data)


def loss_sweep(exponents: Sequence[float] = (3.5, 4.3, 4.4, 4.45),
               seeds: Sequence[int] = (1, 2),
               horizon: Optional[float] = None) -> FigureData:
    """ABL-LOSS: coordination robustness to a degrading radio channel.

    Concurrent-flood dissemination is famously binary — constructive
    interference keeps delivery near 100% until the topology approaches
    partition, so the sweep walks the path-loss exponent across that
    cliff (3.5 = the FlockLab-like default; 4.45 ≈ 60-70% per-round
    delivery).  DIs always see their *own* requests, so admission never
    stalls; what degrades gracefully is coordination quality (peaks and
    variance creep toward the uncoordinated baseline as views go stale).
    """
    scenario = paper_scenario("high")
    rows = []
    data = {}
    for exponent in exponents:
        results = [execute_config(
            HanConfig(scenario=scenario, policy="coordinated",
                      cp_fidelity="round", path_loss_exponent=exponent,
                      seed=seed), until=horizon) for seed in seeds]
        stats = [r.stats(end=horizon) for r in results]
        delivery = float(np.mean(
            [r.cp_calibration.mean_delivery for r in results]))
        cp_ratio = float(np.mean(
            [r.cp_stats.delivery_ratio for r in results]))
        admitted = float(np.mean(
            [sum(1 for q in r.requests if q.admitted_at is not None)
             / max(len(r.requests), 1) for r in results]))
        row = {
            "exponent": exponent,
            "flood_delivery": delivery,
            "cp_delivery": cp_ratio,
            "admitted_fraction": admitted,
            "peak_kw": float(np.mean([s.peak_kw for s in stats])),
            "std_kw": float(np.mean([s.std_kw for s in stats])),
            "wait_min": _mean_wait_minutes(results),
        }
        data[exponent] = row
        rows.append([f"{exponent:g}", delivery, cp_ratio, admitted,
                     row["peak_kw"], row["std_kw"], row["wait_min"]])
    text = format_table(
        ["path-loss exp", "flood delivery", "CP delivery", "admitted",
         "peak kW", "std kW", "wait min"],
        rows, title="ABL-LOSS: channel degradation sweep (coordinated)")
    return FigureData(figure_id="abl-loss", text=text, data=data)


def scale_sweep(device_counts: Sequence[int] = (10, 26, 40, 60),
                seeds: Sequence[int] = (1, 2),
                horizon: Optional[float] = None) -> FigureData:
    """ABL-SCALE: benefit vs fleet size at constant per-device demand."""
    base = paper_scenario("high")
    per_device_rate = base.arrival_rate_per_hour / base.n_devices
    rows = []
    data = {}
    for n in device_counts:
        scenario = replace(base, n_devices=n,
                           arrival_rate_per_hour=per_device_rate * n,
                           name=f"scale-{n}")
        peaks = {"coordinated": [], "uncoordinated": []}
        stds = {"coordinated": [], "uncoordinated": []}
        for policy in peaks:
            for seed in seeds:
                result = execute_config(
                    HanConfig(scenario=scenario, policy=policy,
                              cp_fidelity="round", seed=seed),
                    until=horizon)
                stats = result.stats(end=horizon)
                peaks[policy].append(stats.peak_kw)
                stds[policy].append(stats.std_kw)
        peak_red = percent_reduction(
            float(np.mean(peaks["uncoordinated"])),
            float(np.mean(peaks["coordinated"])))
        std_red = percent_reduction(
            float(np.mean(stds["uncoordinated"])),
            float(np.mean(stds["coordinated"])))
        row = {"n": n,
               "peak_wo": float(np.mean(peaks["uncoordinated"])),
               "peak_with": float(np.mean(peaks["coordinated"])),
               "peak_reduction_pct": peak_red,
               "std_reduction_pct": std_red}
        data[n] = row
        rows.append([n, row["peak_wo"], row["peak_with"], peak_red,
                     std_red])
    text = format_table(
        ["devices", "w/o peak kW", "with peak kW", "peak red %",
         "std red %"],
        rows, title="ABL-SCALE: fleet-size sweep (per-device rate const)")
    return FigureData(figure_id="abl-scale", text=text, data=data)


def slots_sweep(specs: Sequence[tuple[float, float]] = ((15, 30), (10, 30),
                                                        (15, 45), (5, 30)),
                seeds: Sequence[int] = (1, 2),
                horizon: Optional[float] = None) -> FigureData:
    """ABL-SLOTS: sensitivity to the minDCD/maxDCP working point."""
    base = paper_scenario("high")
    rows = []
    data = {}
    for min_dcd_min, max_dcp_min in specs:
        scenario = replace(base, min_dcd=min_dcd_min * MINUTE,
                           max_dcp=max_dcp_min * MINUTE,
                           name=f"spec-{min_dcd_min:g}-{max_dcp_min:g}")
        peaks = {"coordinated": [], "uncoordinated": []}
        stds = {"coordinated": [], "uncoordinated": []}
        for policy in peaks:
            for seed in seeds:
                result = execute_config(
                    HanConfig(scenario=scenario, policy=policy,
                              cp_fidelity="round", seed=seed),
                    until=horizon)
                stats = result.stats(end=horizon)
                peaks[policy].append(stats.peak_kw)
                stds[policy].append(stats.std_kw)
        peak_red = percent_reduction(
            float(np.mean(peaks["uncoordinated"])),
            float(np.mean(peaks["coordinated"])))
        std_red = percent_reduction(
            float(np.mean(stds["uncoordinated"])),
            float(np.mean(stds["coordinated"])))
        key = (min_dcd_min, max_dcp_min)
        data[key] = {"peak_reduction_pct": peak_red,
                     "std_reduction_pct": std_red}
        rows.append([f"{min_dcd_min:g}/{max_dcp_min:g}",
                     float(np.mean(peaks["uncoordinated"])),
                     float(np.mean(peaks["coordinated"])),
                     peak_red, std_red])
    text = format_table(
        ["minDCD/maxDCP min", "w/o peak kW", "with peak kW",
         "peak red %", "std red %"],
        rows, title="ABL-SLOTS: duty-cycle constraint sweep")
    return FigureData(figure_id="abl-slots", text=text, data=data)


def scheduler_variants(seeds: Sequence[int] = (1, 2, 3),
                       horizon: Optional[float] = None) -> FigureData:
    """ABL-VARIANTS: stagger vs grid placement, period vs strict deferral.

    Exercised through a patched scheduler config on otherwise identical
    systems; shows why continuous staggering with full-period latitude is
    the primary mode.
    """
    scenario = paper_scenario("high")
    variants = [
        ("stagger/period", {"mode": "stagger", "deferral": "period"}),
        ("stagger/strict", {"mode": "stagger", "deferral": "strict"}),
        ("grid", {"mode": "grid"}),
    ]
    baseline_stats = [execute_config(
        HanConfig(scenario=scenario, policy="uncoordinated",
                  cp_fidelity="round", seed=seed),
        until=horizon).stats(end=horizon) for seed in seeds]
    wo_peak = float(np.mean([s.peak_kw for s in baseline_stats]))
    wo_std = float(np.mean([s.std_kw for s in baseline_stats]))
    rows = [["uncoordinated", wo_peak, wo_std, "-", "-", "-"]]
    data = {"uncoordinated": {"peak_kw": wo_peak, "std_kw": wo_std}}
    for label, overrides in variants:
        stats = []
        waits = []
        for seed in seeds:
            system = HanSystem(HanConfig(
                scenario=scenario, policy="coordinated",
                cp_fidelity="round", seed=seed))
            system.sched_config = replace(system.sched_config, **overrides)
            for agent in system.agents.values():
                agent.config = system.sched_config
            result = system.run(until=horizon)
            stats.append(result.stats(end=horizon))
            waits.extend(result.waiting_times())
        peak = float(np.mean([s.peak_kw for s in stats]))
        std = float(np.mean([s.std_kw for s in stats]))
        wait_min = float(np.mean(waits)) / MINUTE if waits else 0.0
        data[label] = {
            "peak_kw": peak, "std_kw": std, "wait_min": wait_min,
            "peak_reduction_pct": percent_reduction(wo_peak, peak),
            "std_reduction_pct": percent_reduction(wo_std, std)}
        rows.append([label, peak, std,
                     data[label]["peak_reduction_pct"],
                     data[label]["std_reduction_pct"], wait_min])
    text = format_table(
        ["variant", "peak kW", "std kW", "peak red %", "std red %",
         "wait min"],
        rows, title="ABL-VARIANTS: scheduler placement variants")
    return FigureData(figure_id="abl-variants", text=text, data=data)


def neighborhood_coordination(n_homes: Sequence[int] = (6, 12),
                              mixes: Sequence[str] = ("suburb",
                                                      "apartments",
                                                      "mixed"),
                              seed: int = 1,
                              cp_fidelity: str = "round",
                              horizon: Optional[float] = None,
                              jobs: int = 1) -> FigureData:
    """NBHD-COORD: feeder-level coordination vs independent homes.

    For every (fleet mix, fleet size) cell, runs one neighborhood with the
    feeder collaboration plane on
    (:func:`~repro.neighborhood.federation.execute_fleet` with
    ``coordination="feeder"``) — one run yields both sides, since the
    independent baseline profile rides along in the
    :class:`~repro.neighborhood.coordination.FeederCoordination` record.
    Reports the diversity factor with and without cross-home staggering,
    the coincident-peak reduction, and the (identically zero) per-home
    energy drift.
    """
    from repro.neighborhood import build_fleet, execute_fleet
    rows = []
    data = {}
    for mix in mixes:
        for n in n_homes:
            fleet = build_fleet(n, mix=mix, seed=seed,
                                cp_fidelity=cp_fidelity, horizon=horizon)
            result = execute_fleet(fleet, jobs=jobs, until=horizon,
                                   coordination="feeder")
            comparison = result.comparison()
            row = {
                "mix": mix,
                "n_homes": n,
                "df_independent": comparison.independent.diversity_factor,
                "df_coordinated": comparison.coordinated.diversity_factor,
                "diversity_uplift": comparison.diversity_uplift,
                "peak_reduction_pct": comparison.peak_reduction_pct,
                "variation_reduction_pct":
                    comparison.variation_reduction_pct,
                "energy_drift_pct": comparison.energy_drift_pct,
                "applied": result.coordination.applied,
            }
            data[(mix, n)] = row
            rows.append([mix, n,
                         f"{row['df_independent']:.3f}",
                         f"{row['df_coordinated']:.3f}",
                         f"{row['diversity_uplift']:.3f}x",
                         row["peak_reduction_pct"],
                         f"{row['energy_drift_pct']:.2e}"])
    text = format_table(
        ["mix", "homes", "DF indep", "DF coord", "uplift",
         "peak red %", "energy drift %"],
        rows,
        title="NBHD-COORD: feeder-level coordination vs independent homes")
    return FigureData(figure_id="nbhd-coord", text=text, data=data)


def st_vs_at(seed: int = 1, report_minutes: float = 10.0) -> FigureData:
    """ABL-ST-VS-AT: the intro's motivation, quantified.

    Compares the ST Communication Plane against the traditional AT stack
    on the same 26-node topology:

    * per-node radio energy per hour (ST duty-cycled rounds vs always-on
      CSMA listening),
    * time until one request is known network-wide (one MiniCast round vs
      report-to-controller + dissemination),
    * behaviour when 26 reports collide (a request storm).
    """
    # --- ST side: measured by the slot-level CP trace -------------------
    st = trace_cp(rounds=25, seed=seed)
    st_energy_per_hour = st.energy_per_round_mj * (HOUR / 2.0) / 1e3  # J
    st_latency_s = st.mean_duration_ms / 1e3

    # --- AT side: CSMA + collection tree -------------------------------
    def run_at(jitter_s: float) -> dict:
        """One AT trial: 25 reports spread over ``jitter_s`` seconds."""
        streams = RandomStreams(seed)
        topo = flocklab26()
        channel = topo.make_channel(rng=streams.stream("channel"))
        sim = Simulator()
        medium = CsmaMedium(sim, channel, streams.stream("csma-medium"))
        delivered_at: dict[int, float] = {}
        informed_at: dict[int, float] = {}
        network = CollectionNetwork(
            sim, channel, medium, list(range(topo.n)), sink=0,
            rng_factory=lambda name: streams.stream(name),
            on_report=lambda rep: delivered_at.setdefault(
                rep.origin, sim.now),
            on_schedule=lambda node, bundle: informed_at.setdefault(
                node, sim.now))
        jitter_rng = streams.stream("jitter")

        def traffic(sim: Simulator):
            offsets = sorted(jitter_rng.uniform(0.0, max(jitter_s, 1e-9))
                             for _ in range(topo.n - 1))
            start = sim.now
            for origin, offset in zip(range(1, topo.n), offsets):
                gap = start + offset - sim.now
                if gap > 0:
                    yield sim.timeout(gap)
                network.submit_report(origin, ("request", origin))
            yield sim.timeout(2.0)
            network.disseminate(1, ("decisions",))

        sim.spawn(traffic(sim))
        sim.run(until=report_minutes * MINUTE)
        for node in network.nodes.values():
            node.finalize_energy()
        return {
            "delivered": len(delivered_at),
            "collect_makespan": (max(delivered_at.values())
                                 if delivered_at else float("nan")),
            "informed": len(informed_at),
            "energy_per_hour": float(np.mean(
                [n.energy.energy_joules()
                 for n in network.nodes.values()])) * HOUR / sim.now,
        }

    at_storm = run_at(jitter_s=0.0)       # everyone presses at once
    at_jittered = run_at(jitter_s=2.0)    # spread over one CP period

    data = {
        "st_energy_j_per_hour": st_energy_per_hour,
        "at_energy_j_per_hour": at_jittered["energy_per_hour"],
        "energy_ratio": at_jittered["energy_per_hour"]
        / max(st_energy_per_hour, 1e-9),
        "st_all_informed_s": st_latency_s,
        "at_jittered_makespan_s": at_jittered["collect_makespan"],
        "at_jittered_delivered": at_jittered["delivered"],
        "at_storm_delivered": at_storm["delivered"],
        "at_nodes_informed": at_jittered["informed"],
        "st_delivery": st.mean_delivery,
    }
    text = format_table(
        ["metric", "ST (MiniCast)", "AT (CSMA + tree)"],
        [["radio energy / node / hour",
          f"{st_energy_per_hour:.1f} J",
          f"{at_jittered['energy_per_hour']:.1f} J"],
         ["all 25 requests known (jittered over 2 s)",
          f"{st_latency_s * 1e3:.0f} ms (one round)",
          f"{at_jittered['collect_makespan'] * 1e3:.0f} ms, "
          f"{at_jittered['delivered']}/25 delivered"],
         ["all 25 requests known (simultaneous storm)",
          f"{st_latency_s * 1e3:.0f} ms (one round)",
          f"{at_storm['delivered']}/25 delivered"],
         ["schedule dissemination",
          "same round", f"{at_jittered['informed']}/26 informed"],
         ["all-to-all delivery", f"{st.mean_delivery:.4f}", "n/a"]],
        title="ABL-ST-VS-AT: synchronous vs asynchronous stacks")
    text += (f"\nAT spends {data['energy_ratio']:.0f}x the ST radio energy "
             f"(always-on listening vs 2 s duty-cycled rounds); a "
             f"synchronized request storm collapses AT collection "
             f"({at_storm['delivered']}/25) while one ST round carries "
             f"everything.")
    return FigureData(figure_id="abl-st-vs-at", text=text, data=data)


def spof_comparison(fail_at: float = 120 * MINUTE, seed: int = 3,
                    horizon: Optional[float] = None) -> FigureData:
    """ABL-SPOF: controller death vs DI death.

    Centralized: killing the controller halts all future admissions.
    Decentralized: killing one DI only takes that device's share down.
    """
    scenario = paper_scenario("high")
    end = horizon if horizon is not None else scenario.horizon
    data = {}

    # --- centralized with a controller failure --------------------------
    system = HanSystem(HanConfig(scenario=scenario, policy="centralized",
                                 cp_fidelity="ideal", seed=seed))

    def kill_controller(sim):
        yield sim.timeout(fail_at)
        system.controller.fail()

    system.sim.spawn(kill_controller(system.sim))
    central = system.run(until=end)
    data["centralized"] = _post_failure_completion(central, fail_at,
                                                   exclude=set())

    # --- coordinated with one DI failure ---------------------------------
    system = HanSystem(HanConfig(scenario=scenario, policy="coordinated",
                                 cp_fidelity="round", seed=seed))
    victim = system.config.controller_id

    def kill_di(sim):
        yield sim.timeout(fail_at)
        system.cp.fail_node(victim)

    system.sim.spawn(kill_di(system.sim))
    coordinated = system.run(until=end)
    data["coordinated"] = _post_failure_completion(coordinated, fail_at,
                                                   exclude={victim})

    rows = [[label,
             f"{values['requests_after_failure']}",
             f"{100 * values['admitted_after_failure']:.0f}%",
             f"{100 * values['completion_after_failure']:.0f}%"]
            for label, values in data.items()]
    text = format_table(
        ["architecture", "requests after failure", "still admitted",
         "still completed"],
        rows,
        title=f"ABL-SPOF: failure at t={fail_at / MINUTE:.0f} min "
              "(controller vs one DI)")
    return FigureData(figure_id="abl-spof", text=text, data=data)


def _post_failure_completion(result, fail_at: float,
                             exclude: set[int]) -> dict:
    margin = 35 * MINUTE  # exclude the horizon tail where nothing completes
    late = [r for r in result.requests
            if fail_at <= r.arrival_time < result.horizon - margin
            and r.device_id not in exclude]
    admitted = sum(1 for r in late if r.admitted_at is not None)
    done = sum(1 for r in late if r.completed_at is not None)
    return {"requests_after_failure": len(late),
            "admitted_after_failure": admitted / len(late) if late else 1.0,
            "completion_after_failure": done / len(late) if late else 1.0}


def grid_uplift(feeders: int = 20, homes: int = 500, mix: str = "suburb",
                seed: int = 1, cp_fidelity: str = "ideal",
                horizon: Optional[float] = 10 * MINUTE,
                jobs: int = 1) -> FigureData:
    """GRID-10K: substation-tier diversity uplift on a multi-feeder grid.

    Builds a grid of ``feeders`` identical feeder plans (``homes`` homes
    each — the registry defaults make the 10,000-home / 20-feeder
    flagship) and runs it once in ``"substation"`` mode: per-feeder CP
    rounds first, then feeder-level phase envelopes negotiating at the
    substation (:func:`repro.neighborhood.grid.execute_grid`).  One run
    yields both sides of the comparison — the fully-independent
    substation profile is the partition-invariant exact sum that rides
    along in every :class:`~repro.neighborhood.grid.GridResult`.

    The rendered text embeds a digest over the substation and
    independent profile bits, so the committed artefact is a golden
    lock on grid *execution*, not merely on its summary statistics.
    """
    import hashlib
    from repro.neighborhood import build_grid, execute_grid
    plans = [{"homes": homes, "mix": mix} for _ in range(feeders)]
    grid = build_grid(plans, seed=seed, cp_fidelity=cp_fidelity,
                      horizon=horizon)
    result = execute_grid(grid, jobs=jobs, coordination="substation")
    comparison = result.comparison()
    digest = hashlib.sha256(repr((
        tuple(result.independent_w.times),
        tuple(result.independent_w.values),
        tuple(result.substation_w.times),
        tuple(result.substation_w.values),
        result.coordination.offsets_s,
    )).encode()).hexdigest()
    data = {
        "n_feeders": result.n_feeders,
        "n_homes": result.n_homes,
        "total_devices": grid.total_devices,
        "requests": result.total_requests(),
        "df_independent": comparison.independent.diversity_factor,
        "df_coordinated": comparison.coordinated.diversity_factor,
        "diversity_uplift": comparison.diversity_uplift,
        "peak_independent_kw": comparison.independent.coincident_peak_kw,
        "peak_coordinated_kw": comparison.coordinated.coincident_peak_kw,
        "peak_reduction_pct": comparison.peak_reduction_pct,
        "energy_drift_pct": comparison.energy_drift_pct,
        "applied": result.coordination.applied,
        "digest": digest,
    }
    rows = [
        ["feeders x homes", f"{feeders} x {homes} = {result.n_homes}"],
        ["devices", f"{grid.total_devices}"],
        ["requests", f"{data['requests']}"],
        ["DF independent", f"{data['df_independent']:.3f}"],
        ["DF coordinated", f"{data['df_coordinated']:.3f}"],
        ["diversity uplift", f"{data['diversity_uplift']:.4f}x"],
        ["peak independent", f"{data['peak_independent_kw']:.2f} kW"],
        ["peak coordinated", f"{data['peak_coordinated_kw']:.2f} kW"],
        ["peak reduction", f"{data['peak_reduction_pct']:.1f}%"],
        ["energy drift", f"{data['energy_drift_pct']:.2e}%"],
        ["substation plan", "applied" if data["applied"] else "declined"],
        ["profile digest", digest[:16]],
    ]
    text = format_table(
        ["metric", "value"], rows,
        title=f"GRID-10K: substation coordination over {feeders} feeders "
              f"(seed {seed}, {cp_fidelity} CP)")
    return FigureData(figure_id="grid-10k", text=text, data=data)


def online_uplift(homes: int = 500, mix: str = "suburb", seed: int = 1,
                  cp_fidelity: str = "ideal",
                  horizon: Optional[float] = 10 * MINUTE,
                  epoch: Optional[float] = 2 * MINUTE,
                  noises: Sequence[float] = (0.1, 0.25, 0.5),
                  jobs: int = 1) -> FigureData:
    """NBHD-ONLINE: online epoch replanning vs post-hoc coordination.

    Runs one fleet once, then replays the *same* per-home results
    through the online epoch loop
    (:func:`repro.neighborhood.online.coordinate_fleet_online`) under
    increasingly degraded information: the perfect-hindsight oracle,
    the oracle with multiplicative per-bin noise at each amplitude in
    ``noises``, and the history-only persistence and EWMA baselines.

    The yardstick is the *hindsight ceiling*: an oracle run with
    ``replan="cold"`` — full from-scratch negotiation on realized
    envelopes every epoch, the best plan the per-epoch actuator can
    reach with all data in hand.  Each sweep entry's *recovery
    fraction* is its share of the ceiling's peak reduction; the
    headline number is the oracle's, which isolates the cost of the
    incremental diff-and-renegotiate path (claim seeding, changed-homes
    tokens) from prediction error.  The classic full-horizon post-hoc
    plan (``"feeder"`` mode, free to move load *across* epoch
    boundaries — a structurally different actuator) is reported
    alongside for context, not used as the denominator.

    The rendered text embeds a digest over the oracle run's coordinated
    profile bits, per-epoch offsets and telemetry journal, so the
    committed artefact is a golden lock on online *execution*.
    """
    import hashlib

    from repro.neighborhood import (
        ForecastConfig,
        build_fleet,
        coordinate_fleet,
        coordinate_fleet_online,
        execute_fleet,
    )
    from repro.neighborhood.coordination import FeederConfig
    fleet = build_fleet(homes, mix=mix, seed=seed,
                        cp_fidelity=cp_fidelity, horizon=horizon)
    baseline = execute_fleet(fleet, jobs=jobs, until=horizon)
    results = baseline.homes
    config = FeederConfig(epoch=epoch)
    posthoc = coordinate_fleet(fleet, results, horizon, config=config)
    ind_peak = posthoc.independent_w.maximum(0.0, horizon)
    posthoc_peak = posthoc.coordinated_w.maximum(0.0, horizon)

    def online(forecast: ForecastConfig, replan: str = "diff"):
        return coordinate_fleet_online(fleet, results, horizon,
                                       config=config, forecast=forecast,
                                       replan=replan)

    ceiling = online(ForecastConfig(forecaster="oracle"), replan="cold")
    ceiling_peak = ceiling.coordinated_w.maximum(0.0, horizon)
    ceiling_cut = ind_peak - ceiling_peak

    def recovery(plan) -> float:
        cut = ind_peak - plan.coordinated_w.maximum(0.0, horizon)
        return cut / ceiling_cut if ceiling_cut > 0.0 else 0.0

    oracle = online(ForecastConfig(forecaster="oracle"))
    sweep = [("oracle", oracle)]
    for noise in noises:
        sweep.append((f"oracle+noise{noise:g}",
                      online(ForecastConfig(forecaster="oracle",
                                            noise=noise))))
    for name in ("persistence", "ewma"):
        sweep.append((name, online(ForecastConfig(forecaster=name))))

    digest = hashlib.sha256(repr((
        tuple(oracle.coordinated_w.times),
        tuple(oracle.coordinated_w.values),
        tuple(outcome.offsets_s for outcome in oracle.epochs),
        oracle.telemetry_digest,
    )).encode()).hexdigest()
    drift = oracle.coordinated_w.integral(0.0, horizon) \
        - oracle.independent_w.integral(0.0, horizon)
    data = {
        "n_homes": fleet.n_homes,
        "requests": baseline.total_requests(),
        "n_epochs": oracle.n_epochs,
        "peak_independent_kw": ind_peak / 1e3,
        "peak_posthoc_kw": posthoc_peak / 1e3,
        "peak_ceiling_kw": ceiling_peak / 1e3,
        "ceiling_reduction_kw": ceiling_cut / 1e3,
        "ceiling_cp_deliveries": ceiling.cp_stats.deliveries,
        "oracle_cp_deliveries": oracle.cp_stats.deliveries,
        "oracle_recovery": recovery(oracle),
        "oracle_energy_drift_wh": drift / 3600.0,
        "telemetry_events": oracle.telemetry_events,
        "sweep": {label: {
            "peak_kw": plan.coordinated_w.maximum(0.0, horizon) / 1e3,
            "recovery": recovery(plan),
            "epochs_applied": plan.epochs_applied,
            "replanned_homes": plan.replanned_homes,
            "cp_rounds": plan.cp_stats.rounds_total,
        } for label, plan in sweep},
        "digest": digest,
    }
    rows = [
        ["homes / epochs", f"{fleet.n_homes} / {oracle.n_epochs}"],
        ["requests", f"{data['requests']}"],
        ["peak independent", f"{data['peak_independent_kw']:.2f} kW"],
        ["peak hindsight ceiling", f"{data['peak_ceiling_kw']:.2f} kW "
                                   f"(cold replan, "
                                   f"{data['ceiling_cp_deliveries']} "
                                   f"CP deliveries)"],
        ["peak post-hoc full-horizon", f"{data['peak_posthoc_kw']:.2f} "
                                       f"kW (cross-epoch actuator)"],
    ]
    for label, plan in sweep:
        entry = data["sweep"][label]
        rows.append([f"peak {label}",
                     f"{entry['peak_kw']:.2f} kW "
                     f"({entry['recovery'] * 100.0:.1f}% recovered, "
                     f"{entry['epochs_applied']}/{oracle.n_epochs} "
                     f"epochs)"])
    rows += [
        ["oracle energy drift", f"{data['oracle_energy_drift_wh']:.2e} Wh"],
        ["telemetry events", f"{data['telemetry_events']}"],
        ["profile digest", digest[:16]],
    ]
    text = format_table(
        ["metric", "value"], rows,
        title=f"NBHD-ONLINE: per-epoch online coordination over "
              f"{fleet.n_homes} homes (seed {seed}, {cp_fidelity} CP)")
    return FigureData(figure_id="nbhd-online", text=text, data=data)
