"""Persistent, reusable worker pools for experiment fan-out.

Before this module the :class:`~repro.experiments.runner.ParallelRunner`
forked a fresh ``multiprocessing.Pool`` for every batch, so a sweep, a
registry regeneration and a neighborhood fleet each paid full process
start-up (interpreter boot + imports under ``spawn``; page-table setup
under ``fork``) per call.  :func:`shared_pool` instead hands out one
long-lived :class:`WorkerPool` per ``(jobs, mp_context)`` signature:

* workers are spawned once and reused across every subsequent batch of
  the process (sweeps, ``repro regen``, neighborhood fleets);
* each worker runs :func:`_warm_worker` once at birth, pre-importing the
  whole simulation substrate (kernel, radio, scheduler, scenario catalog)
  so no batch pays import cost — under the default ``fork`` context the
  catalog and topology tables are additionally shared copy-on-write with
  the parent;
* dispatch is chunked (:func:`dispatch_chunksize`) instead of one task
  per IPC round-trip, bounding queue overhead for large fleets.

Determinism is untouched: work items are pure functions of their spec
(every run derives its randomness from named per-seed RNG streams), and
``Pool.map`` preserves input order regardless of chunking, so results
are bit-identical for any pool shape or reuse pattern.

Pools live until :func:`shutdown_pools` (registered via ``atexit``) or
until a batch raises, in which case the pool is discarded so the next
batch starts from a clean slate.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
from typing import Callable, Optional, Sequence

#: Target number of chunks handed to every worker per batch; >1 keeps
#: the pool load-balanced when per-item runtimes vary (e.g. coordinated
#: vs uncoordinated cells), while bounding per-item IPC overhead.
CHUNKS_PER_WORKER = 4


def _warm_worker() -> None:
    """Worker initializer: pre-import the simulation substrate once.

    Runs once per worker process, not once per batch; pulls in the
    kernel, radio, scheduler, scenario catalog and registry modules so
    every subsequent task starts hot.
    """
    import repro.core.system  # noqa: F401
    import repro.experiments.registry  # noqa: F401
    import repro.neighborhood.fleet  # noqa: F401


def dispatch_chunksize(n_items: int, jobs: int) -> int:
    """Batch size per IPC dispatch: ``CHUNKS_PER_WORKER`` chunks/worker."""
    return max(1, -(-n_items // (jobs * CHUNKS_PER_WORKER)))


class WorkerPool:
    """A lazily-spawned, reusable multiprocessing pool.

    ``map`` is order-preserving and chunked.  ``jobs=1`` executes
    in-process (no pickling round-trip) — the degenerate pool the
    determinism locks compare the multi-worker results against.
    """

    def __init__(self, jobs: int, mp_context: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.mp_context = mp_context
        self._pool: Optional[multiprocessing.pool.Pool] = None
        #: generation counter, bumped on every (re)spawn — lets tests
        #: assert that consecutive batches genuinely reused one pool
        self.spawn_count = 0

    @property
    def alive(self) -> bool:
        """True while worker processes are up and accepting batches."""
        return self._pool is not None

    def _ensure(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(self.mp_context)
            self._pool = context.Pool(processes=self.jobs,
                                      initializer=_warm_worker)
            self.spawn_count += 1
        return self._pool

    def map(self, func: Callable[[object], object],
            items: Sequence[object]) -> list:
        """Apply ``func`` to every item; results come back in input order.

        A failing batch (a worker dying, not a task returning an error
        value) closes the pool so the next call starts fresh.
        """
        items = list(items)
        if not items:
            return []
        if self.jobs == 1:
            return [func(item) for item in items]
        pool = self._ensure()
        try:
            return pool.map(func, items,
                            chunksize=dispatch_chunksize(len(items),
                                                         self.jobs))
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        """Terminate the workers; the next ``map`` respawns them."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


#: Live pools by (jobs, mp_context) signature, least-recently-used first
#: — see :func:`shared_pool`.
_POOLS: dict[tuple[int, Optional[str]], WorkerPool] = {}

#: Most pool *shapes* kept alive at once.  Every distinct
#: ``(jobs, mp_context)`` used to accumulate workers for the life of the
#: process; a long session cycling through shapes (sweeps at ``--jobs 4``,
#: a fleet at ``--jobs 8``, a test suite doing both) now evicts — and
#: terminates — the least recently drawn shape beyond this many.
MAX_POOL_SHAPES = 4


def shared_pool(jobs: int, mp_context: Optional[str] = None) -> WorkerPool:
    """The process-wide persistent pool for a ``(jobs, mp_context)`` shape.

    Every ``repro.api.run`` call (and the deprecated grid shims under it)
    draws from here, so consecutive experiment batches reuse the same
    warm workers instead of forking per batch.  At most
    :data:`MAX_POOL_SHAPES` shapes stay alive — drawing a new shape
    beyond that closes the least recently used one first.
    """
    key = (jobs, mp_context)
    pool = _POOLS.pop(key, None)
    if pool is None:
        while len(_POOLS) >= MAX_POOL_SHAPES:
            oldest = next(iter(_POOLS))
            _POOLS.pop(oldest).close()
        pool = WorkerPool(jobs, mp_context=mp_context)
    # (Re-)insert at the most-recent end: dict order is the LRU order.
    _POOLS[key] = pool
    return pool


def shutdown_all() -> None:
    """Terminate every shared pool (idempotent; also runs at exit).

    Tests and the CLI call this on the way out so worker processes never
    outlive the work; the next :func:`shared_pool` draw after a shutdown
    transparently respawns.
    """
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


#: Backwards-compatible alias (pre-PR 5 name).
shutdown_pools = shutdown_all

atexit.register(shutdown_all)
