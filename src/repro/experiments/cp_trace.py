"""FIG1: the Communication Plane in action.

Figure 1 of the paper sketches MiniCast rounds every 2 s carrying requests
to every DI.  This experiment runs the slot-level CP on the FlockLab-like
topology and reports per-round latency, all-to-all delivery, sync error and
radio cost — the properties the scheduling layer builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.report import format_table
from repro.radio.clock import DriftingClock
from repro.radio.energy import EnergyMeter
from repro.radio.medium import FloodMedium
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.radio.topology import flocklab26
from repro.st.minicast import MiniCast, MiniCastConfig
from repro.st.glossy import run_flood
from repro.st.sync import SyncService


@dataclass
class CpTraceResult:
    """Measured CP behaviour over a number of rounds."""

    rounds: int
    round_durations: list[float] = field(default_factory=list)
    delivery_ratios: list[float] = field(default_factory=list)
    sync_errors_us: list[float] = field(default_factory=list)
    energy_per_round_mj: float = 0.0
    radio_duty_cycle: float = 0.0
    text: str = ""

    @property
    def mean_duration_ms(self) -> float:
        return 1e3 * float(np.mean(self.round_durations))

    @property
    def mean_delivery(self) -> float:
        return float(np.mean(self.delivery_ratios))


def trace_cp(rounds: int = 25, seed: int = 1, period: float = 2.0,
             aggregation: int = 2, n_tx: int = 3,
             drift_ppm_std: float = 20.0) -> CpTraceResult:
    """Run ``rounds`` slot-level CP rounds and measure their behaviour."""
    streams = RandomStreams(seed)
    topo = flocklab26()
    channel = topo.make_channel(rng=streams.stream("channel"))
    medium = FloodMedium(channel, streams.stream("floods"))
    config = MiniCastConfig(aggregation=aggregation)
    sim = Simulator()
    nodes = list(range(topo.n))
    clocks = {i: DriftingClock(
        sim, drift_ppm=float(streams.stream("drift").normal(
            0.0, drift_ppm_std)))
        for i in nodes}
    sync = SyncService(clocks, streams.stream("sync"), config.flood)
    minicast = MiniCast(medium, config)
    energy = {i: EnergyMeter() for i in nodes}

    result = CpTraceResult(rounds=rounds)

    def round_process(sim: Simulator):
        for _ in range(rounds):
            beacon = run_flood(medium, nodes[0], nodes, config.flood)
            sync.apply_flood(beacon)
            reference = clocks[nodes[0]]
            errors = [abs(clocks[n].error_vs(reference)) * 1e6
                      for n in nodes if n != nodes[0]
                      and n not in sync.stats.unsynced_nodes]
            if errors:
                result.sync_errors_us.append(float(np.max(errors)))
            outcome = minicast.run_round(nodes, energy=energy)
            result.round_durations.append(beacon.duration + outcome.duration)
            result.delivery_ratios.append(outcome.delivery_ratio(nodes))
            yield sim.timeout(period)

    sim.spawn(round_process(sim))
    sim.run()

    elapsed = rounds * period
    joules = [m.energy_joules() for m in energy.values()]
    result.energy_per_round_mj = 1e3 * float(np.mean(joules)) / rounds
    result.radio_duty_cycle = float(np.mean(
        [m.radio_on_time for m in energy.values()])) / elapsed
    result.text = format_table(
        ["metric", "value"],
        [["rounds", rounds],
         ["round period (paper)", f"{period:.1f} s"],
         ["mean round on-air time", f"{result.mean_duration_ms:.1f} ms"],
         ["all-to-all delivery ratio", f"{result.mean_delivery:.4f}"],
         ["worst sync error", (f"{max(result.sync_errors_us):.1f} us"
                               if result.sync_errors_us else "n/a")],
         ["radio energy / round / node",
          f"{result.energy_per_round_mj:.2f} mJ"],
         ["radio duty cycle", f"{100 * result.radio_duty_cycle:.2f} %"]],
        title="FIG1: Communication Plane (slot-level MiniCast on "
              "flocklab26)")
    return result
