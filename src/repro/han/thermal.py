"""First-order thermal models deriving duty-cycle behaviour.

The paper notes that a Type-2 device's constraints vary with the
environment: "to achieve a target temperature of 20°C, the maxDCP would be
lesser compared to a target of 30°C when the external temperature is 40°C".
This module supplies that physics: a lumped RC thermal node heated or cooled
by the appliance, from which effective ``minDCD``/``maxDCP`` values follow.

Used by the richer examples and the dynamic-constraint extension; the
paper's headline experiment fixes the constraints at 15/30 minutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.han.dutycycle import DutyCycleSpec


@dataclass
class ThermalParams:
    """Lumped thermal-node parameters.

    Attributes:
        capacitance_j_per_k: heat capacity of the conditioned mass.
        resistance_k_per_w: thermal resistance to ambient.
        appliance_heat_w: heat the appliance injects when ON (negative for
            cooling devices such as ACs and fridges).
    """

    capacitance_j_per_k: float
    resistance_k_per_w: float
    appliance_heat_w: float

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0 or self.resistance_k_per_w <= 0:
            raise ValueError("thermal parameters must be positive")

    @property
    def time_constant(self) -> float:
        """RC time constant, seconds."""
        return self.capacitance_j_per_k * self.resistance_k_per_w


class ThermalNode:
    """Temperature state T with dT/dt = (T_amb − T)/RC + Q/C."""

    def __init__(self, params: ThermalParams, initial_temp_c: float,
                 ambient_c: Callable[[float], float] | float):
        self.params = params
        self.temperature_c = initial_temp_c
        if callable(ambient_c):
            self.ambient_fn = ambient_c
        else:
            self.ambient_fn = lambda _t, _a=float(ambient_c): _a
        self._last_update = 0.0

    def advance(self, now: float, appliance_on: bool) -> float:
        """Integrate the node to ``now``; returns the new temperature.

        Uses the exact exponential solution for a constant-input interval,
        so step size does not affect accuracy.
        """
        dt = now - self._last_update
        if dt < 0:
            raise ValueError("time went backwards")
        if dt == 0:
            return self.temperature_c
        ambient = self.ambient_fn(now)
        heat = self.params.appliance_heat_w if appliance_on else 0.0
        # Steady state the node decays toward during this interval:
        target = ambient + heat * self.params.resistance_k_per_w
        decay = math.exp(-dt / self.params.time_constant)
        self.temperature_c = target + (self.temperature_c - target) * decay
        self._last_update = now
        return self.temperature_c


def required_duty_fraction(params: ThermalParams, target_c: float,
                           ambient_c: float) -> float:
    """Long-run ON fraction needed to hold ``target_c`` against ``ambient_c``.

    From the steady-state balance ``duty * Q = (target − ambient)/R``;
    clipped to [0, 1].  Values near 1 mean the appliance is undersized.
    """
    if params.appliance_heat_w == 0:
        raise ValueError("appliance adds no heat; duty undefined")
    needed_w = (target_c - ambient_c) / params.resistance_k_per_w
    duty = needed_w / params.appliance_heat_w
    return min(max(duty, 0.0), 1.0)


def derive_duty_spec(params: ThermalParams, target_c: float,
                     ambient_c: float, min_dcd: float,
                     max_period_cap: float = 3600.0) -> DutyCycleSpec:
    """Translate a thermal situation into scheduler constraints.

    Keeps ``minDCD`` fixed (a hardware property of compressors/heaters) and
    derives the ``maxDCP`` that maintains the target: with one ``minDCD``
    burst per period, duty = minDCD / maxDCP must meet the required duty
    fraction, so ``maxDCP = minDCD / duty`` (capped; a hotter day → larger
    required duty → *shorter* allowable period, exactly the paper's
    example).
    """
    duty = required_duty_fraction(params, target_c, ambient_c)
    if duty <= 0.0:
        return DutyCycleSpec(min_dcd=min_dcd, max_dcp=max_period_cap)
    max_dcp = min(min_dcd / duty, max_period_cap)
    return DutyCycleSpec(min_dcd=min_dcd, max_dcp=max(max_dcp, min_dcd))
