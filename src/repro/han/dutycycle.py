"""Duty-cycle grid arithmetic for Type-2 appliances.

The paper constrains every Type-2 device by

* ``minDCD`` — minimum duty-cycle duration: once ON, stay ON at least this
  long, and
* ``maxDCP`` — maximum duty-cycle period: while active, at least one
  ``minDCD`` execution must happen inside every window of this length.

The collaborative scheduler discretises time into **epochs** of length
``maxDCP`` aligned at t = 0 (all DIs share a synchronised clock), each
divided into ``slots_per_epoch`` slots of length ``minDCD``.  This module
owns that grid arithmetic; it is deliberately free of simulation state so it
can be property-tested exhaustively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DutyCycleSpec:
    """A Type-2 device's duty-cycle constraints (seconds)."""

    min_dcd: float
    max_dcp: float

    def __post_init__(self) -> None:
        if self.min_dcd <= 0:
            raise ValueError(f"minDCD must be positive, got {self.min_dcd}")
        if self.max_dcp < self.min_dcd:
            raise ValueError(
                f"maxDCP ({self.max_dcp}) must be >= minDCD ({self.min_dcd})")

    @property
    def slots_per_epoch(self) -> int:
        """How many full ``minDCD`` slots fit in one ``maxDCP`` epoch."""
        return int(self.max_dcp // self.min_dcd)

    @property
    def duty_fraction(self) -> float:
        """Fraction of time a device executing once per epoch is ON."""
        return self.min_dcd / self.max_dcp


@dataclass(frozen=True)
class SlotRef:
    """One concrete slot on the global grid."""

    epoch: int
    slot: int

    def index_in(self, spec: DutyCycleSpec) -> int:
        """Absolute slot number since t = 0."""
        return self.epoch * spec.slots_per_epoch + self.slot


class DutyCycleGrid:
    """Epoch/slot arithmetic over a :class:`DutyCycleSpec`."""

    def __init__(self, spec: DutyCycleSpec, origin: float = 0.0):
        self.spec = spec
        self.origin = origin

    # -- time -> grid -------------------------------------------------------

    def epoch_of(self, time: float) -> int:
        """Epoch index containing ``time``."""
        return math.floor((time - self.origin) / self.spec.max_dcp)

    def slot_of(self, time: float) -> SlotRef:
        """Grid slot containing ``time``.

        Times in the tail of an epoch beyond the last full slot (when
        ``max_dcp`` is not an exact multiple of ``min_dcd``) belong to the
        epoch's last slot for containment purposes.
        """
        epoch = self.epoch_of(time)
        offset = (time - self.origin) - epoch * self.spec.max_dcp
        slot = min(int(offset // self.spec.min_dcd),
                   self.spec.slots_per_epoch - 1)
        return SlotRef(epoch=epoch, slot=slot)

    # -- grid -> time --------------------------------------------------------

    def epoch_start(self, epoch: int) -> float:
        return self.origin + epoch * self.spec.max_dcp

    def slot_start(self, ref: SlotRef) -> float:
        return self.epoch_start(ref.epoch) + ref.slot * self.spec.min_dcd

    def slot_end(self, ref: SlotRef) -> float:
        return self.slot_start(ref) + self.spec.min_dcd

    # -- scheduling queries --------------------------------------------------

    def next_slot_starts(self, time: float) -> list[SlotRef]:
        """Slots whose start lies in ``(time, time + maxDCP]``.

        These are exactly the candidate execution windows guaranteeing a
        newly admitted device one full ``minDCD`` burst within ``maxDCP`` of
        ``time`` — the paper's liveness constraint.  There are always
        ``slots_per_epoch`` candidates, one per slot position.
        """
        result: list[SlotRef] = []
        epoch = self.epoch_of(time)
        spots = self.spec.slots_per_epoch
        candidate_epoch = epoch
        while len(result) < spots:
            for slot in range(spots):
                ref = SlotRef(candidate_epoch, slot)
                start = self.slot_start(ref)
                if time < start <= time + self.spec.max_dcp:
                    result.append(ref)
                    if len(result) == spots:
                        break
            candidate_epoch += 1
            if candidate_epoch > epoch + 2:  # pragma: no cover - safety
                break
        return result

    def next_slot_boundary(self, time: float) -> tuple[SlotRef, float]:
        """First slot whose start lies strictly after ``time``.

        Returns the slot reference and its start time.  Handles epochs whose
        tail (``max_dcp`` not an exact multiple of ``min_dcd``) contains no
        slot start.
        """
        epoch = self.epoch_of(time)
        for candidate_epoch in (epoch, epoch + 1):
            for slot in range(self.spec.slots_per_epoch):
                ref = SlotRef(candidate_epoch, slot)
                start = self.slot_start(ref)
                if start > time:
                    return ref, start
        raise AssertionError("a boundary always exists")  # pragma: no cover

    def occurrence_of_slot(self, slot: int, after: float) -> SlotRef:
        """First occurrence of slot position ``slot`` starting after ``after``."""
        if not 0 <= slot < self.spec.slots_per_epoch:
            raise ValueError(f"slot {slot} out of range")
        epoch = self.epoch_of(after)
        ref = SlotRef(epoch, slot)
        if self.slot_start(ref) > after:
            return ref
        return SlotRef(epoch + 1, slot)
