"""A catalog of common household appliances.

Gives the examples and workload generators realistic devices.  Powers are
typical nameplate values; Type-2 entries carry default duty-cycle
constraints in line with the paper's 15 min / 30 min working point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.han.dutycycle import DutyCycleSpec
from repro.sim.units import MINUTE


@dataclass(frozen=True)
class CatalogEntry:
    """Blueprint for instantiating an appliance."""

    name: str
    appliance_type: int            # 1 = instant-start, 2 = deferrable
    power_w: float
    duty_spec: Optional[DutyCycleSpec] = None   # Type-2 only
    typical_run_s: float = 30.0 * MINUTE        # Type-1 run duration
    standby_w: float = 0.0

    def __post_init__(self) -> None:
        if self.appliance_type not in (1, 2):
            raise ValueError(f"appliance_type must be 1 or 2")
        if self.appliance_type == 2 and self.duty_spec is None:
            raise ValueError(f"{self.name}: Type-2 entries need a duty spec")


def _spec(min_dcd_min: float, max_dcp_min: float) -> DutyCycleSpec:
    return DutyCycleSpec(min_dcd=min_dcd_min * MINUTE,
                         max_dcp=max_dcp_min * MINUTE)


#: Type-2 (deferrable, duty-cycled) appliances — the paper's focus.
TYPE2_CATALOG: dict[str, CatalogEntry] = {
    "air_conditioner": CatalogEntry("air_conditioner", 2, 1500.0,
                                    _spec(15, 30)),
    "room_heater": CatalogEntry("room_heater", 2, 1200.0, _spec(15, 30)),
    "water_heater": CatalogEntry("water_heater", 2, 2000.0, _spec(15, 30)),
    "water_cooler": CatalogEntry("water_cooler", 2, 800.0, _spec(15, 30)),
    "fridge": CatalogEntry("fridge", 2, 150.0, _spec(10, 40), standby_w=5.0),
    "pool_pump": CatalogEntry("pool_pump", 2, 1100.0, _spec(30, 120)),
    "ev_charger": CatalogEntry("ev_charger", 2, 3300.0, _spec(30, 60)),
    #: the paper's synthetic experiment device: 1 kW, 15/30 minutes
    "paper_unit_load": CatalogEntry("paper_unit_load", 2, 1000.0,
                                    _spec(15, 30)),
}

#: Type-1 (instant-start) appliances.
TYPE1_CATALOG: dict[str, CatalogEntry] = {
    "ceiling_fan": CatalogEntry("ceiling_fan", 1, 75.0,
                                typical_run_s=120 * MINUTE),
    "television": CatalogEntry("television", 1, 120.0,
                               typical_run_s=90 * MINUTE),
    "laptop": CatalogEntry("laptop", 1, 60.0, typical_run_s=180 * MINUTE),
    "hair_dryer": CatalogEntry("hair_dryer", 1, 1200.0,
                               typical_run_s=8 * MINUTE),
    "blender": CatalogEntry("blender", 1, 400.0, typical_run_s=3 * MINUTE),
    "microwave": CatalogEntry("microwave", 1, 1100.0,
                              typical_run_s=5 * MINUTE),
    "lighting": CatalogEntry("lighting", 1, 200.0,
                             typical_run_s=240 * MINUTE),
}

CATALOG: dict[str, CatalogEntry] = {**TYPE2_CATALOG, **TYPE1_CATALOG}


def lookup(name: str) -> CatalogEntry:
    """Fetch a catalog entry by name (KeyError with guidance if absent)."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown appliance {name!r}; catalog has: {known}")
