"""AMI smart metering: premise-level load aggregation and tariffs.

:class:`SmartMeter` is the AMI endpoint of the premise: every appliance
publishes its draw into the meter's gauge, producing the total-load step
series the paper's Figure 2 plots.  Time-of-use pricing lets examples reason
about cost, one of the optimisation criteria centralized schedulers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.sim.monitor import GaugeSum, StepSeries
from repro.sim.units import HOUR, KILOWATT, joules_to_kwh

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class SmartMeter:
    """Aggregates appliance draws into the premise load profile."""

    def __init__(self, sim: "Simulator", name: str = "premise"):
        self.sim = sim
        self.name = name
        self.gauge = GaugeSum(name)

    @property
    def load_series_w(self) -> StepSeries:
        """Total premise load over time, watts."""
        return self.gauge.series

    @property
    def current_load_w(self) -> float:
        return self.gauge.total

    def energy_kwh(self, start: float, end: float) -> float:
        """Energy through the meter in ``[start, end)``, kWh."""
        return joules_to_kwh(self.load_series_w.integral(start, end))

    def load_kw_at(self, time: float) -> float:
        return self.load_series_w.at(time) / KILOWATT


@dataclass(frozen=True)
class TariffBand:
    """One time-of-use price band (daily-recurring, seconds-of-day)."""

    start_s: float
    end_s: float
    price_per_kwh: float

    def __post_init__(self) -> None:
        if not 0 <= self.start_s < self.end_s <= 24 * HOUR:
            raise ValueError("band must lie within one day, start < end")
        if self.price_per_kwh < 0:
            raise ValueError("negative price")


class TimeOfUseTariff:
    """A daily-recurring tariff made of contiguous bands."""

    def __init__(self, bands: Sequence[TariffBand]):
        ordered = sorted(bands, key=lambda b: b.start_s)
        covered = 0.0
        for band in ordered:
            if band.start_s != covered:
                raise ValueError("tariff bands must tile the full day")
            covered = band.end_s
        if covered != 24 * HOUR:
            raise ValueError("tariff bands must cover 24 hours")
        self.bands = tuple(ordered)

    def price_at(self, time: float) -> float:
        """Price per kWh at absolute simulation time ``time``."""
        second_of_day = time % (24 * HOUR)
        for band in self.bands:
            if band.start_s <= second_of_day < band.end_s:
                return band.price_per_kwh
        raise AssertionError("bands tile the day")  # pragma: no cover

    def cost(self, load_w: StepSeries, start: float, end: float,
             step: float = 60.0) -> float:
        """Approximate cost of ``load_w`` over ``[start, end)``.

        Integrates the stepwise product of load and price on a ``step`` grid
        refined with the series' own change points.
        """
        if end <= start:
            raise ValueError("empty interval")
        cost = 0.0
        t = start
        while t < end:
            t_next = min(t + step, end)
            kw = load_w.at(t) / KILOWATT
            hours = (t_next - t) / HOUR
            cost += kw * hours * self.price_at(t)
            t = t_next
        return cost


def flat_tariff(price_per_kwh: float) -> TimeOfUseTariff:
    """A single-band tariff at a constant price."""
    return TimeOfUseTariff([TariffBand(0.0, 24 * HOUR, price_per_kwh)])


def evening_peak_tariff(base: float = 0.10, peak: float = 0.30,
                        peak_start_h: float = 17.0,
                        peak_end_h: float = 21.0) -> TimeOfUseTariff:
    """A typical residential TOU tariff with an evening peak window."""
    return TimeOfUseTariff([
        TariffBand(0.0, peak_start_h * HOUR, base),
        TariffBand(peak_start_h * HOUR, peak_end_h * HOUR, peak),
        TariffBand(peak_end_h * HOUR, 24 * HOUR, base),
    ])
