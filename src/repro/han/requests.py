"""User requests and their lifecycle.

A request asks one Type-2 device to perform ``demand_cycles`` duty-cycle
executions (each one ``minDCD`` long).  For Type-1 devices a request simply
turns the device on for its drawn duration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_request_ids = count(1)


class RequestState(enum.Enum):
    """Where a request is in its life."""

    PENDING = "pending"        # arrived, not yet admitted by the scheduler
    ADMITTED = "admitted"      # slot assigned / execution planned
    RUNNING = "running"        # at least one burst executed, more remain
    COMPLETED = "completed"    # all demanded cycles executed


@dataclass
class UserRequest:
    """One user request against one device."""

    device_id: int
    arrival_time: float
    demand_cycles: int = 1
    request_id: int = field(default_factory=lambda: next(_request_ids))
    state: RequestState = RequestState.PENDING
    admitted_at: Optional[float] = None
    first_burst_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: True when admission extended an already-active device (the liveness
    #: window then applies to the device, not to this queued request)
    extended_existing: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.demand_cycles < 1:
            raise ValueError(
                f"demand_cycles must be >= 1, got {self.demand_cycles}")

    @property
    def waiting_time(self) -> Optional[float]:
        """Arrival → first execution delay (None until it runs)."""
        if self.first_burst_at is None:
            return None
        return self.first_burst_at - self.arrival_time

    @property
    def sort_key(self) -> tuple[float, int]:
        """Deterministic one-by-one admission order (paper §II)."""
        return (self.arrival_time, self.request_id)


@dataclass(frozen=True)
class RequestAnnouncement:
    """The compact form of a request shared over the Communication Plane."""

    request_id: int
    device_id: int
    arrival_time: float
    demand_cycles: int
    #: rated power of the requesting device, so any DI can project load
    power_w: float = 0.0

    @classmethod
    def of(cls, request: UserRequest,
           power_w: float = 0.0) -> "RequestAnnouncement":
        return cls(request_id=request.request_id,
                   device_id=request.device_id,
                   arrival_time=request.arrival_time,
                   demand_cycles=request.demand_cycles,
                   power_w=power_w)

    @property
    def sort_key(self) -> tuple[float, int]:
        return (self.arrival_time, self.request_id)

    #: serialized bytes on the radio (id 4 + dev 2 + time 4 + n 1 + power 2)
    WIRE_BYTES: int = 13
