"""Electrical appliance models.

The paper splits appliances into **Type-1** (must start instantly when the
user asks: fans, TVs, hair-dryers) and **Type-2** (power-hungry but
deferrable because they internally duty-cycle: ACs, heaters, fridges).
A Type-2 appliance exposes the power-hungry module (e.g. the compressor)
that its Device Interface may switch ON/OFF, subject to its
:class:`~repro.han.dutycycle.DutyCycleSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.han.dutycycle import DutyCycleSpec
from repro.sim.monitor import GaugeSum

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ApplianceError(Exception):
    """Raised on physically impossible switching (e.g. violating minDCD)."""


@dataclass
class SwitchRecord:
    """One ON interval of an appliance, for audit and invariant checks."""

    on_at: float
    off_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.off_at is None:
            return None
        return self.off_at - self.on_at


class Appliance:
    """Base appliance: a named load that can be ON or OFF."""

    def __init__(self, sim: "Simulator", device_id: int, name: str,
                 power_w: float, meter: Optional[GaugeSum] = None,
                 standby_w: float = 0.0):
        if power_w < 0 or standby_w < 0:
            raise ValueError("power must be non-negative")
        self.sim = sim
        self.device_id = device_id
        self.name = name
        self.power_w = power_w
        self.standby_w = standby_w
        self.meter = meter
        self.is_on = False
        self.history: list[SwitchRecord] = []
        self._energy_j = 0.0
        self._last_change = sim.now
        self._publish()

    # -- switching --------------------------------------------------------------

    def turn_on(self) -> None:
        """Energise the load (idempotent)."""
        if self.is_on:
            return
        self._settle_energy()
        self.is_on = True
        self.history.append(SwitchRecord(on_at=self.sim.now))
        self._publish()

    def turn_off(self) -> None:
        """De-energise the load (idempotent)."""
        if not self.is_on:
            return
        self._settle_energy()
        self.is_on = False
        self.history[-1].off_at = self.sim.now
        self._publish()

    # -- accounting ---------------------------------------------------------------

    @property
    def current_draw_w(self) -> float:
        """Instantaneous power draw, watts."""
        return self.power_w if self.is_on else self.standby_w

    def _settle_energy(self) -> None:
        self._energy_j += self.current_draw_w * (self.sim.now
                                                 - self._last_change)
        self._last_change = self.sim.now

    def energy_joules(self) -> float:
        """Energy consumed so far (including the open interval)."""
        open_part = self.current_draw_w * (self.sim.now - self._last_change)
        return self._energy_j + open_part

    def total_on_time(self) -> float:
        """Accumulated ON seconds (including an open ON interval)."""
        total = 0.0
        for record in self.history:
            end = record.off_at if record.off_at is not None else self.sim.now
            total += end - record.on_at
        return total

    def _publish(self) -> None:
        if self.meter is not None:
            self.meter.set_level(self.device_id, self.current_draw_w,
                                 self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "ON" if self.is_on else "off"
        return f"<{type(self).__name__} {self.name!r} #{self.device_id} {state}>"


class Type1Appliance(Appliance):
    """Instant-start appliance: runs immediately for a requested duration."""

    def run_for(self, duration: float):
        """Process: turn on now, off after ``duration``."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.turn_on()
        yield self.sim.timeout(duration)
        self.turn_off()


class Type2Appliance(Appliance):
    """Duty-cycled appliance whose module switching the DI controls."""

    def __init__(self, sim: "Simulator", device_id: int, name: str,
                 power_w: float, duty_spec: DutyCycleSpec,
                 meter: Optional[GaugeSum] = None, standby_w: float = 0.0):
        super().__init__(sim, device_id, name, power_w, meter,
                         standby_w=standby_w)
        self.duty_spec = duty_spec
        self.bursts_completed = 0

    def turn_off(self) -> None:
        """De-energise, enforcing the minDCD constraint.

        The physical device refuses to cut a burst short (compressors need
        their minimum run time); a scheduler bug that tries is surfaced
        loudly rather than silently tolerated.
        """
        if self.is_on:
            elapsed = self.sim.now - self.history[-1].on_at
            if elapsed + 1e-9 < self.duty_spec.min_dcd:
                raise ApplianceError(
                    f"{self.name}: OFF after {elapsed:.1f}s violates "
                    f"minDCD={self.duty_spec.min_dcd:.1f}s")
            self.bursts_completed += 1
        super().turn_off()

    def run_burst(self):
        """Process: one full minDCD execution."""
        self.turn_on()
        yield self.sim.timeout(self.duty_spec.min_dcd)
        self.turn_off()
