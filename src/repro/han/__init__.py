"""Home-Area-Network substrate: appliances, duty cycles, requests, metering."""

from repro.han.appliance import (
    Appliance,
    ApplianceError,
    SwitchRecord,
    Type1Appliance,
    Type2Appliance,
)
from repro.han.catalog import CATALOG, TYPE1_CATALOG, TYPE2_CATALOG, CatalogEntry, lookup
from repro.han.dutycycle import DutyCycleGrid, DutyCycleSpec, SlotRef
from repro.han.meter import (
    SmartMeter,
    TariffBand,
    TimeOfUseTariff,
    evening_peak_tariff,
    flat_tariff,
)
from repro.han.requests import RequestAnnouncement, RequestState, UserRequest
from repro.han.thermal import (
    ThermalNode,
    ThermalParams,
    derive_duty_spec,
    required_duty_fraction,
)

__all__ = [
    "Appliance",
    "ApplianceError",
    "CATALOG",
    "CatalogEntry",
    "DutyCycleGrid",
    "DutyCycleSpec",
    "RequestAnnouncement",
    "RequestState",
    "SlotRef",
    "SmartMeter",
    "SwitchRecord",
    "TariffBand",
    "ThermalNode",
    "ThermalParams",
    "TimeOfUseTariff",
    "TYPE1_CATALOG",
    "TYPE2_CATALOG",
    "Type1Appliance",
    "Type2Appliance",
    "UserRequest",
    "derive_duty_spec",
    "evening_peak_tariff",
    "flat_tariff",
    "lookup",
    "required_duty_fraction",
]
