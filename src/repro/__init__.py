"""Collaborative Load Management in Smart Home Area Networks.

A from-scratch reproduction of Debadarshini & Saha (ICDCS 2022,
arXiv:2207.04733): a decentralized HAN in which Device Interfaces share
state over Synchronous-Transmission rounds (MiniCast) and collaboratively
stagger the duty cycles of power-hungry Type-2 appliances, cutting peak
load and load variance without deferring energy.

Quickstart (the declarative front door — see ``docs/experiment-spec.md``)::

    from repro.api import ExperimentSpec, run

    spec = ExperimentSpec.from_json('''{
        "name": "quickstart",
        "scenario": {"preset": "paper-high"},
        "control": {"policy": "coordinated"},
        "seeds": [1]
    }''')
    result = run(spec)
    print(result.stats()[0].peak_kw, result.provenance.short_hash)
"""

from repro.core import (
    HanConfig,
    HanSystem,
    RunResult,
    run_experiment,
)
from repro.workloads import PAPER_RATES, Scenario, paper_scenario

#: Release version; also the result-cache invalidation key — bumped here
#: because pickled result layouts changed (NeighborhoodResult's
#: coordination payload may now be an ``OnlineCoordination`` with
#: per-epoch outcomes, and ExperimentSpec grew the ``forecast``
#: section), so pre-1.5 cache entries must miss.
__version__ = "1.5.0"

__all__ = [
    "HanConfig",
    "HanSystem",
    "PAPER_RATES",
    "RunResult",
    "Scenario",
    "paper_scenario",
    "run_experiment",
    "__version__",
]
