"""Network-wide time synchronisation from reference floods.

Every CP round starts with a sync flood from a reference node (the
lowest-id alive DI).  A node that decodes the flood knows the packet's
transmit time in the reference clock and its own first-reception slot, so it
can set its local clock to the reference within per-hop jitter (sub-µs per
hop on real Glossy hardware; we model it as Gaussian noise per hop).

The scheduling layer needs clocks agreeing to *well below* one duty-cycle
slot (minutes); this service delivers agreement within microseconds,
mirroring the real system's comfortable margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.radio.clock import DriftingClock
from repro.st.glossy import FloodResult, GlossyConfig

#: Standard deviation of per-hop retransmission jitter, seconds.
PER_HOP_JITTER_STD: float = 0.2e-6


@dataclass
class SyncStats:
    """Running statistics of post-synchronisation clock error."""

    samples: int = 0
    max_abs_error: float = 0.0
    sum_abs_error: float = 0.0
    unsynced_nodes: set[int] = field(default_factory=set)

    @property
    def mean_abs_error(self) -> float:
        return self.sum_abs_error / self.samples if self.samples else 0.0


class SyncService:
    """Applies reference-flood corrections to a set of drifting clocks."""

    def __init__(self, clocks: dict[int, DriftingClock],
                 rng: np.random.Generator,
                 config: GlossyConfig = GlossyConfig()):
        self.clocks = clocks
        self.rng = rng
        self.config = config
        self.stats = SyncStats()

    def apply_flood(self, flood: FloodResult,
                    reference_node: Optional[int] = None) -> None:
        """Synchronise every receiver of ``flood`` to the initiator's clock.

        ``reference_node`` defaults to the flood initiator.  Nodes that did
        not decode the flood keep free-running (recorded in stats).
        """
        reference = reference_node if reference_node is not None \
            else flood.initiator
        ref_clock = self.clocks[reference]
        self.stats.unsynced_nodes.clear()
        for node, clock in self.clocks.items():
            if node == reference:
                continue
            hops = flood.hop_count(node)
            if hops is None:
                self.stats.unsynced_nodes.add(node)
                continue
            # The receiver reconstructs the initiator's local time at its
            # own reception instant; per-hop jitter limits the accuracy.
            jitter = float(self.rng.normal(
                0.0, PER_HOP_JITTER_STD * np.sqrt(hops)))
            clock.synchronize(ref_clock.local_time() + jitter)
            error = abs(clock.error_vs(ref_clock))
            self.stats.samples += 1
            self.stats.sum_abs_error += error
            self.stats.max_abs_error = max(self.stats.max_abs_error, error)
