"""Glossy-style concurrent flooding — the ST primitive under MiniCast.

A flood proceeds in radio slots: the initiator transmits in slot 0; every
node that decodes the packet in slot *s* retransmits it in slot *s + 1*,
until each node has transmitted ``n_tx`` times or ``max_slots`` elapse.
Because all transmitters send the identical packet nearly simultaneously,
receivers exploit constructive interference and capture rather than
suffering collisions (see :class:`repro.radio.medium.FloodMedium`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.radio.medium import FloodMedium
from repro.radio.phy import frame_airtime

#: Software/processing gap between consecutive flood slots, seconds.
SLOT_PROCESSING_GAP: float = 200e-6


@dataclass(frozen=True)
class GlossyConfig:
    """Flood parameters.

    Attributes:
        n_tx: transmissions each node performs per flood.
        max_slots: hard bound on flood length, slots.
        payload_bytes: application payload carried in the flood packet.
        header_bytes: flood header (relay counter, initiator id, type).
    """

    n_tx: int = 3
    max_slots: int = 24
    payload_bytes: int = 16
    header_bytes: int = 4

    @property
    def psdu_bytes(self) -> int:
        """PHY payload: flood header + app payload + MAC overhead."""
        return 9 + self.header_bytes + self.payload_bytes + 2

    @property
    def slot_length(self) -> float:
        """Length of one flood slot, seconds."""
        return frame_airtime(self.psdu_bytes) + SLOT_PROCESSING_GAP


@dataclass
class FloodResult:
    """Outcome of one flood."""

    initiator: int
    #: first slot index in which each node decoded the packet
    first_rx_slot: dict[int, int] = field(default_factory=dict)
    #: transmissions performed per node
    tx_counts: dict[int, int] = field(default_factory=dict)
    slots_used: int = 0
    duration: float = 0.0

    @property
    def receivers(self) -> set[int]:
        """Nodes (excluding the initiator) that decoded the packet."""
        return set(self.first_rx_slot)

    def hop_count(self, node: int) -> Optional[int]:
        """Flood-slot distance of ``node`` from the initiator."""
        if node == self.initiator:
            return 0
        slot = self.first_rx_slot.get(node)
        return None if slot is None else slot + 1

    def latency(self, node: int, config: GlossyConfig) -> Optional[float]:
        """Time from flood start until ``node`` decoded (seconds)."""
        if node == self.initiator:
            return 0.0
        slot = self.first_rx_slot.get(node)
        if slot is None:
            return None
        return (slot + 1) * config.slot_length


def run_flood(medium: FloodMedium, initiator: int,
              participants: Iterable[int],
              config: GlossyConfig = GlossyConfig()) -> FloodResult:
    """Simulate one Glossy flood at slot granularity.

    ``participants`` are the alive nodes taking part (must include the
    initiator).  Returns per-node first-reception slots and transmit counts;
    the caller charges energy from these and ``config.slot_length``.
    """
    nodes = set(participants)
    if initiator not in nodes:
        raise ValueError(f"initiator {initiator} not among participants")

    result = FloodResult(initiator=initiator)
    tx_counts: dict[int, int] = {n: 0 for n in nodes}
    #: nodes that will transmit in the current slot
    transmitters: set[int] = {initiator}

    slot = 0
    while transmitters and slot < config.max_slots:
        listeners = [n for n in nodes
                     if n not in transmitters and tx_counts[n] < config.n_tx]
        received = medium.flood_slot(sorted(transmitters), listeners,
                                     config.psdu_bytes)
        for node in transmitters:
            tx_counts[node] += 1
        next_transmitters: set[int] = set()
        for node in received:
            if node not in result.first_rx_slot and node != initiator:
                result.first_rx_slot[node] = slot
            next_transmitters.add(node)
        # Glossy: the initiator alternates TX/RX slots until its budget ends.
        if tx_counts[initiator] < config.n_tx and initiator in transmitters:
            next_transmitters.discard(initiator)
        elif tx_counts[initiator] < config.n_tx:
            next_transmitters.add(initiator)
        transmitters = {n for n in next_transmitters
                        if tx_counts[n] < config.n_tx}
        slot += 1

    result.tx_counts = tx_counts
    result.slots_used = slot
    result.duration = slot * config.slot_length
    return result
