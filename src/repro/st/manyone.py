"""Many-to-one collection and one-to-many dissemination (ref [8]).

The centralized-but-ST variant: every round the DIs flood their items toward
a *sink* (the controller), which computes a schedule and floods it back.
Used by the ST-vs-AT ablation to separate the cost of centralisation from
the cost of asynchronous communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.radio.energy import EnergyMeter
from repro.radio.medium import FloodMedium
from repro.st.glossy import FloodResult, GlossyConfig, run_flood
from repro.st.minicast import MiniCastConfig


@dataclass
class CollectionOutcome:
    """Result of one collect + disseminate round."""

    sink: int
    #: origins whose item reached the sink
    collected: set[int] = field(default_factory=set)
    #: nodes that decoded the sink's dissemination flood
    informed: set[int] = field(default_factory=set)
    duration: float = 0.0
    floods: list[FloodResult] = field(default_factory=list)


class ManyToOne:
    """Collection rounds: TDMA floods toward a sink, one reply flood back."""

    def __init__(self, medium: FloodMedium,
                 config: Optional[MiniCastConfig] = None):
        self.medium = medium
        self.config = config or MiniCastConfig()

    def run_round(self, participants: Iterable[int], sink: int,
                  energy: Optional[dict[int, EnergyMeter]] = None,
                  ) -> CollectionOutcome:
        """Collect every participant's item at ``sink`` and flood the reply."""
        nodes = sorted(set(participants))
        if sink not in nodes:
            raise ValueError(f"sink {sink} not among participants")
        outcome = CollectionOutcome(sink=sink)
        elapsed = 0.0
        slot = self.config.flood.slot_length
        agg = max(self.config.aggregation, 1)
        sources = [n for n in nodes if n != sink]
        for i in range(0, len(sources), agg):
            group = sources[i:i + agg]
            flood = run_flood(self.medium, group[0], nodes, self.config.flood)
            outcome.floods.append(flood)
            if sink in flood.receivers:
                outcome.collected.update(group)
            elapsed += flood.duration + self.config.inter_flood_gap
            self._charge(energy, nodes, flood, slot)
        # Sink floods the computed schedule back out.
        reply = run_flood(self.medium, sink, nodes, self.config.flood)
        outcome.floods.append(reply)
        outcome.informed = reply.receivers | {sink}
        elapsed += reply.duration
        self._charge(energy, nodes, reply, slot)
        outcome.duration = elapsed
        return outcome

    @staticmethod
    def _charge(energy: Optional[dict[int, EnergyMeter]],
                nodes: Iterable[int], flood: FloodResult,
                slot: float) -> None:
        if energy is None:
            return
        for node in nodes:
            tx_time = flood.tx_counts.get(node, 0) * slot
            energy[node].add("tx", tx_time)
            energy[node].add("rx", max(flood.duration - tx_time, 0.0))
