"""Synchronous-Transmission protocol suite: Glossy, MiniCast, CP drivers."""

from repro.st.glossy import FloodResult, GlossyConfig, run_flood
from repro.st.manyone import CollectionOutcome, ManyToOne
from repro.st.minicast import MiniCast, MiniCastConfig, RoundOutcome
from repro.st.rounds import (
    CpApplication,
    CpCalibration,
    CpStats,
    IdealCP,
    SampledCP,
    SlotLevelCP,
)
from repro.st.sync import SyncService, SyncStats

__all__ = [
    "CollectionOutcome",
    "CpApplication",
    "CpCalibration",
    "CpStats",
    "FloodResult",
    "GlossyConfig",
    "IdealCP",
    "ManyToOne",
    "MiniCast",
    "MiniCastConfig",
    "RoundOutcome",
    "SampledCP",
    "SlotLevelCP",
    "SyncService",
    "SyncStats",
    "run_flood",
]
