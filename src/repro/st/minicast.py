"""MiniCast — many-to-many data sharing over concurrent floods (ref [7]).

MiniCast organises one *round* as a TDMA sequence of Glossy floods, one per
participating node.  In its flood slot, a node disseminates its current data
item (here: the DI's device status and any pending user requests); all other
nodes decode it.  After a full round every node holds every node's items —
the all-to-all sharing the paper's Communication Plane relies on
(Figure 1: "MiniCast period = 2 sec").

The real protocol additionally aggregates several items per packet; the
``aggregation`` parameter folds ``aggregation`` node items into one flood,
shortening the round the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.radio.energy import EnergyMeter
from repro.radio.medium import FloodMedium
from repro.st.glossy import FloodResult, GlossyConfig, run_flood


@dataclass
class MiniCastConfig:
    """Round parameters for the all-to-all share."""

    flood: GlossyConfig = field(default_factory=GlossyConfig)
    #: how many node items ride in one flood packet
    aggregation: int = 2
    #: gap between consecutive floods in the round, seconds
    inter_flood_gap: float = 0.5e-3


@dataclass
class RoundOutcome:
    """Everything one MiniCast round produced."""

    #: ``delivered[origin]`` = set of nodes that decoded origin's item
    delivered: dict[int, set[int]] = field(default_factory=dict)
    #: individual flood results, in TDMA order
    floods: list[FloodResult] = field(default_factory=list)
    duration: float = 0.0

    def reached(self, origin: int, node: int) -> bool:
        """Did ``node`` obtain ``origin``'s item this round?"""
        return node == origin or node in self.delivered.get(origin, ())

    def delivery_ratio(self, nodes: Sequence[int]) -> float:
        """Fraction of (origin, receiver) pairs served this round."""
        n = len(nodes)
        if n < 2:
            return 1.0
        got = sum(len(self.delivered.get(o, ())) for o in nodes)
        return got / (n * (n - 1))


class MiniCast:
    """Executes all-to-all sharing rounds at flood-slot granularity."""

    def __init__(self, medium: FloodMedium,
                 config: Optional[MiniCastConfig] = None):
        self.medium = medium
        self.config = config or MiniCastConfig()

    def round_duration(self, n_participants: int) -> float:
        """Worst-case on-air length of one round with ``n_participants``."""
        floods = -(-n_participants // max(self.config.aggregation, 1))
        flood_len = self.config.flood.max_slots * self.config.flood.slot_length
        return floods * (flood_len + self.config.inter_flood_gap)

    def run_round(self, participants: Iterable[int],
                  energy: Optional[dict[int, EnergyMeter]] = None,
                  ) -> RoundOutcome:
        """Run one full round among ``participants``.

        With ``aggregation = k``, participants are grouped k-at-a-time; the
        group's first member initiates the flood carrying every group
        member's item, so a decoded flood delivers all k items.  (The real
        protocol exchanges items within the group in earlier rounds; the
        grouping here preserves the round length and delivery behaviour.)

        ``energy`` maps node id to its meter; each participant is charged
        listening for the whole round minus its own transmit slots.
        """
        nodes = sorted(set(participants))
        outcome = RoundOutcome()
        agg = max(self.config.aggregation, 1)
        elapsed = 0.0
        for i in range(0, len(nodes), agg):
            group = nodes[i:i + agg]
            initiator = group[0]
            flood = run_flood(self.medium, initiator, nodes,
                              self.config.flood)
            outcome.floods.append(flood)
            receivers = flood.receivers
            for origin in group:
                # Group members other than the initiator already hold their
                # own item; everyone that decoded the flood gains them all.
                outcome.delivered[origin] = (
                    receivers | set(group)) - {origin}
            elapsed += flood.duration + self.config.inter_flood_gap
            if energy is not None:
                slot = self.config.flood.slot_length
                for node in nodes:
                    tx_time = flood.tx_counts.get(node, 0) * slot
                    energy[node].add("tx", tx_time)
                    energy[node].add("rx", max(flood.duration - tx_time, 0.0))
        outcome.duration = elapsed
        return outcome


PayloadProvider = Callable[[int], object]
