"""Communication-Plane drivers.

The paper's Communication Plane (CP) runs one MiniCast round every 2 s so
that every DI holds every device's status and every pending user request
(Figure 1).  Three interchangeable drivers trade fidelity for speed:

* :class:`SlotLevelCP` — full flood-slot simulation (sync beacon + MiniCast
  round); the ground truth, used by protocol tests and microbenches.
* :class:`SampledCP` — per-round delivery sampled from a matrix *calibrated
  against the slot-level model* on the same topology; the default for the
  350-minute load experiments.
* :class:`IdealCP` — loss-free instantaneous sharing, for pure-algorithm
  unit tests.

Applications implement :class:`CpApplication`; payloads are *full current
state* (idempotent), so a missed delivery is healed by any later round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

import numpy as np

from repro.radio.clock import DriftingClock
from repro.radio.energy import EnergyMeter
from repro.radio.medium import FloodMedium
from repro.st.glossy import GlossyConfig, run_flood
from repro.st.minicast import MiniCast, MiniCastConfig
from repro.st.sync import SyncService

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class CpApplication(Protocol):
    """What the coordination layer exposes to the CP driver."""

    def cp_payload(self, node: int, round_index: int) -> Optional[object]:
        """The item ``node`` shares this round (None = nothing new)."""

    def cp_deliver(self, node: int, packets: dict[int, object],
                   round_index: int) -> None:
        """Hand ``node`` the payloads (origin → payload) it decoded."""


@dataclass
class CpStats:
    """Aggregate CP behaviour over a run."""

    rounds_total: int = 0
    rounds_active: int = 0
    deliveries: int = 0
    misses: int = 0
    duration_on_air: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        attempted = self.deliveries + self.misses
        return self.deliveries / attempted if attempted else 1.0


class _CpBase:
    """Shared alive-set and process bookkeeping."""

    def __init__(self, sim: "Simulator", app: CpApplication,
                 nodes: Sequence[int], period: float = 2.0):
        self.sim = sim
        self.app = app
        self.nodes = list(nodes)
        self.period = period
        self.alive: set[int] = set(nodes)
        self.stats = CpStats()
        self.round_index = 0
        self._process = None

    def start(self) -> None:
        """Begin periodic rounds (first round runs immediately)."""
        if self._process is not None:
            raise RuntimeError("CP already started")
        self._process = self.sim.spawn(self._run(), name="cp-rounds")

    def fail_node(self, node: int) -> None:
        """Crash ``node``: it stops initiating, relaying and receiving."""
        self.alive.discard(node)

    def recover_node(self, node: int) -> None:
        """Bring a crashed node back into the CP."""
        if node in self.nodes:
            self.alive.add(node)

    def _run(self):
        while True:
            self._round()
            self.round_index += 1
            yield self.sim.timeout(self.period)

    # -- interface for subclasses ------------------------------------------------

    def _round(self) -> None:
        raise NotImplementedError

    def _gather_payloads(self) -> dict[int, object]:
        """Fresh payloads this round, keyed by node, in ``nodes`` order.

        When the application can name the nodes that *may* share
        (``cp_pending_nodes``, a conservative superset — see
        :meth:`repro.core.system.HanSystem.cp_pending_nodes`), every
        other node is skipped without a call: on quiet rounds — the vast
        majority at CP period 2 s — gathering costs one set lookup
        instead of one call chain per node.  Behaviour is identical
        either way, because ``cp_payload`` on a non-pending node returns
        ``None`` without side effects.
        """
        payloads = {}
        app = self.app
        round_index = self.round_index
        pending = getattr(app, "cp_pending_nodes", None)
        if pending is not None:
            candidates = pending()
            if not candidates:
                return payloads
            alive = self.alive
            for node in self.nodes:
                if node in candidates and node in alive:
                    payload = app.cp_payload(node, round_index)
                    if payload is not None:
                        payloads[node] = payload
            return payloads
        for node in self.nodes:
            if node not in self.alive:
                continue
            payload = app.cp_payload(node, round_index)
            if payload is not None:
                payloads[node] = payload
        return payloads


class IdealCP(_CpBase):
    """Loss-free, zero-latency all-to-all sharing."""

    def _round(self) -> None:
        self.stats.rounds_total += 1
        payloads = self._gather_payloads()
        if not payloads:
            return
        self.stats.rounds_active += 1
        for node in self.nodes:
            if node not in self.alive:
                continue
            packets = {origin: p for origin, p in payloads.items()}
            self.stats.deliveries += len(packets)
            self.app.cp_deliver(node, packets, self.round_index)


class SlotLevelCP(_CpBase):
    """Full-fidelity CP: sync flood + MiniCast round, slot by slot."""

    def __init__(self, sim: "Simulator", app: CpApplication,
                 nodes: Sequence[int], medium: FloodMedium,
                 period: float = 2.0,
                 minicast_config: Optional[MiniCastConfig] = None,
                 clocks: Optional[dict[int, DriftingClock]] = None,
                 sync_rng: Optional[np.random.Generator] = None,
                 energy: Optional[dict[int, EnergyMeter]] = None):
        super().__init__(sim, app, nodes, period)
        self.minicast = MiniCast(medium, minicast_config)
        self.medium = medium
        self.energy = energy
        self.sync: Optional[SyncService] = None
        if clocks is not None and sync_rng is not None:
            self.sync = SyncService(clocks, sync_rng,
                                    self.minicast.config.flood)

    def _round(self) -> None:
        self.stats.rounds_total += 1
        alive = sorted(self.alive)
        if len(alive) < 2:
            return
        # 1. sync beacon from the lowest-id alive node
        beacon = run_flood(self.medium, alive[0], alive,
                           self.minicast.config.flood)
        self.stats.duration_on_air += beacon.duration
        if self.sync is not None:
            self.sync.apply_flood(beacon)
        # 2. all-to-all share
        payloads = self._gather_payloads()
        self.stats.rounds_active += 1
        outcome = self.minicast.run_round(alive, energy=self.energy)
        self.stats.duration_on_air += outcome.duration
        for node in alive:
            packets = {origin: payload
                       for origin, payload in payloads.items()
                       if outcome.reached(origin, node)}
            self.stats.deliveries += len(packets)
            self.stats.misses += len(payloads) - len(packets)
            if packets:
                self.app.cp_deliver(node, packets, self.round_index)


class SampledCP(_CpBase):
    """Fast CP: per-pair delivery sampled from a calibrated matrix.

    The matrix ``delivery_prob[origin, receiver]`` comes from
    :meth:`calibrate`, which runs the slot-level model on the same topology.
    Rounds with no fresh payload are skipped *computationally* (state is
    idempotent and unchanged), except that every ``refresh_every`` rounds a
    full share runs anyway to heal any stale views — bounding staleness the
    way real per-round re-flooding does.
    """

    def __init__(self, sim: "Simulator", app: CpApplication,
                 nodes: Sequence[int], delivery_prob: np.ndarray,
                 rng: np.random.Generator, period: float = 2.0,
                 refresh_every: int = 15,
                 round_duration: float = 0.0,
                 round_energy_j: float = 0.0):
        super().__init__(sim, app, nodes, period)
        n = len(nodes)
        delivery_prob = np.asarray(delivery_prob, dtype=float)
        if delivery_prob.shape != (n, n):
            raise ValueError(
                f"delivery matrix must be {n}x{n}, got {delivery_prob.shape}")
        self.delivery_prob = delivery_prob
        self.rng = rng
        self.refresh_every = max(int(refresh_every), 1)
        self.round_duration = round_duration
        self.round_energy_j = round_energy_j
        self._index = {node: i for i, node in enumerate(nodes)}
        self._had_miss = False

    def _round(self) -> None:
        self.stats.rounds_total += 1
        payloads = self._gather_payloads()
        refresh_due = (self.round_index % self.refresh_every) == 0
        if not payloads and not (self._had_miss and refresh_due):
            return
        if not payloads and refresh_due:
            # Healing round: re-share current state of every alive node.
            for node in sorted(self.alive):
                payload = self.app.cp_payload(node, -1)
                if payload is not None:
                    payloads[node] = payload
            if not payloads:
                self._had_miss = False
                return
        self.stats.rounds_active += 1
        self.stats.duration_on_air += self.round_duration
        self._had_miss = False
        origin_rows = {origin: self.delivery_prob[self._index[origin]]
                       for origin in payloads}
        for node in sorted(self.alive):
            j = self._index[node]
            packets = {}
            for origin, payload in payloads.items():
                if origin == node:
                    packets[origin] = payload
                    continue
                if self.rng.random() < origin_rows[origin][j]:
                    packets[origin] = payload
                    self.stats.deliveries += 1
                else:
                    self.stats.misses += 1
                    self._had_miss = True
            if packets:
                self.app.cp_deliver(node, packets, self.round_index)

    # -- calibration ------------------------------------------------------------

    @staticmethod
    def calibrate(medium: FloodMedium, nodes: Sequence[int],
                  minicast_config: Optional[MiniCastConfig] = None,
                  rounds: int = 30) -> "CpCalibration":
        """Measure delivery probabilities with the slot-level model."""
        minicast = MiniCast(medium, minicast_config)
        ordered = sorted(nodes)
        n = len(ordered)
        index = {node: i for i, node in enumerate(ordered)}
        hits = np.zeros((n, n))
        total_duration = 0.0
        energy = {node: EnergyMeter() for node in ordered}
        for _ in range(rounds):
            outcome = minicast.run_round(ordered, energy=energy)
            total_duration += outcome.duration
            for origin in ordered:
                for receiver in outcome.delivered.get(origin, ()):
                    hits[index[origin], index[receiver]] += 1
        prob = hits / rounds
        np.fill_diagonal(prob, 1.0)
        mean_energy = float(np.mean(
            [m.energy_joules() for m in energy.values()])) / rounds
        return CpCalibration(delivery_prob=prob,
                             round_duration=total_duration / rounds,
                             round_energy_j=mean_energy)


@dataclass
class CpCalibration:
    """Output of :meth:`SampledCP.calibrate`."""

    delivery_prob: np.ndarray
    round_duration: float
    round_energy_j: float

    @property
    def mean_delivery(self) -> float:
        n = len(self.delivery_prob)
        if n < 2:
            return 1.0
        off_diag = self.delivery_prob.sum() - n
        return float(off_diag / (n * (n - 1)))
