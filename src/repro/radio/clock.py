"""Per-node clocks with crystal drift.

TelosB-class hardware derives its timers from a 32 kHz crystal whose
frequency error is tens of parts-per-million.  Synchronous-transmission
protocols must periodically re-synchronise; this module models the drifting
local clock those protocols correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class DriftingClock:
    """A local clock running at ``1 + drift_ppm * 1e-6`` of real time."""

    def __init__(self, sim: "Simulator", drift_ppm: float = 0.0,
                 offset: float = 0.0):
        self.sim = sim
        self.drift_ppm = float(drift_ppm)
        #: Reference (simulation) time of the last synchronisation point.
        self._ref_global = sim.now
        #: Local time at the last synchronisation point.
        self._ref_local = offset

    @property
    def rate(self) -> float:
        """Local seconds elapsing per global second."""
        return 1.0 + self.drift_ppm * 1e-6

    def local_time(self) -> float:
        """Current local-clock reading."""
        return self._ref_local + (self.sim.now - self._ref_global) * self.rate

    def to_local(self, global_time: float) -> float:
        """Local-clock reading at a given global instant."""
        return self._ref_local + (global_time - self._ref_global) * self.rate

    def to_global(self, local_time: float) -> float:
        """Global instant at which the local clock reads ``local_time``."""
        return self._ref_global + (local_time - self._ref_local) / self.rate

    def synchronize(self, local_now: float) -> float:
        """Set the local reading at the current instant; returns correction.

        Called by time-sync protocols when a reference arrives; the returned
        value is the jump applied to the local clock (positive = the clock
        was behind).
        """
        correction = local_now - self.local_time()
        self._ref_global = self.sim.now
        self._ref_local = local_now
        return correction

    def error_vs(self, other: "DriftingClock") -> float:
        """Instantaneous clock disagreement with another clock (seconds)."""
        return self.local_time() - other.local_time()
