"""IEEE 802.15.4 (2.4 GHz O-QPSK) physical-layer timing and limits.

Numbers follow the 802.15.4-2006 PHY used by the TelosB's CC2420 radio:
250 kbit/s, 4 bits per symbol, 32 µs per byte on air.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Payload bit rate, bits per second.
BITRATE: float = 250_000.0
#: Seconds to transmit one byte.
BYTE_AIRTIME: float = 8.0 / BITRATE
#: Preamble (4 B) + start-of-frame delimiter (1 B).
SYNC_HEADER_BYTES: int = 5
#: PHY header: one length byte.
PHY_HEADER_BYTES: int = 1
#: Maximum PHY-layer frame payload (PSDU), bytes.
MAX_FRAME_BYTES: int = 127
#: MAC footer (CRC-16), bytes; part of the PSDU.
MAC_FOOTER_BYTES: int = 2
#: Rx/Tx turnaround time, seconds (192 µs in the standard).
TURNAROUND_TIME: float = 192e-6
#: Duration of one CCA (8 symbol periods = 128 µs).
CCA_TIME: float = 128e-6
#: 802.15.4 unit backoff period (20 symbols = 320 µs).
BACKOFF_UNIT: float = 320e-6
#: ACK frame length on air, bytes of PSDU (imm-ack is 5 bytes).
ACK_PSDU_BYTES: int = 5


def frame_airtime(psdu_bytes: int) -> float:
    """On-air duration of a frame whose PSDU is ``psdu_bytes`` long.

    Includes the synchronisation and PHY headers that precede the PSDU.
    """
    if not 0 < psdu_bytes <= MAX_FRAME_BYTES:
        raise ValueError(
            f"PSDU must be 1..{MAX_FRAME_BYTES} bytes, got {psdu_bytes}")
    total = SYNC_HEADER_BYTES + PHY_HEADER_BYTES + psdu_bytes
    return total * BYTE_AIRTIME


def ack_airtime() -> float:
    """On-air duration of an immediate acknowledgement frame."""
    return frame_airtime(ACK_PSDU_BYTES)


@dataclass(frozen=True)
class RadioConfig:
    """Per-deployment radio parameters.

    Attributes:
        tx_power_dbm: transmit power (CC2420 range: -25 .. 0 dBm).
        noise_floor_dbm: thermal noise + receiver noise figure.
        sensitivity_dbm: weakest decodable signal.
        cca_threshold_dbm: energy level above which CCA reports busy.
        capture_threshold_db: SINR advantage needed for capture.
        ci_window: max start-time offset (s) for constructive interference.
        ci_derating: per-extra-transmitter success de-rating for CI floods.
    """

    tx_power_dbm: float = 0.0
    noise_floor_dbm: float = -98.0
    sensitivity_dbm: float = -94.0
    cca_threshold_dbm: float = -77.0
    capture_threshold_db: float = 3.0
    ci_window: float = 0.5e-6
    ci_derating: float = 0.985


DEFAULT_RADIO_CONFIG = RadioConfig()
