"""Wireless channel model: path loss, shadowing, and link quality.

The model composes

* **log-distance path loss** with exponent ``exponent`` around a reference
  loss at 1 m,
* **per-link log-normal shadowing**, frozen per link (drawn once from a named
  RNG stream, symmetric between the two directions), and
* the classic **802.15.4 O-QPSK DSSS bit-error model** (as used by TOSSIM)
  mapping SINR to packet reception ratio (PRR).

All powers are dBm, all distances metres.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.radio.phy import DEFAULT_RADIO_CONFIG, RadioConfig


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm (−inf for 0)."""
    if mw <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(mw)


@lru_cache(maxsize=4096)
def ber_oqpsk(sinr_db: float) -> float:
    """Bit error rate of 802.15.4 O-QPSK DSSS at a given SINR.

    Uses the standard 16-ary orthogonal-signalling approximation
    (IEEE 802.15.4-2006 Annex E / TOSSIM)::

        BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) e^{20 SINR (1/k - 1)}
    """
    sinr = 10.0 ** (sinr_db / 10.0)
    total = 0.0
    for k in range(2, 17):
        total += ((-1) ** k) * math.comb(16, k) * math.exp(
            20.0 * sinr * (1.0 / k - 1.0))
    ber = (8.0 / 15.0) * (1.0 / 16.0) * total
    return min(max(ber, 0.0), 0.5)


def prr_from_sinr(sinr_db: float, psdu_bytes: int) -> float:
    """Probability that a ``psdu_bytes``-byte frame decodes at ``sinr_db``."""
    ber = ber_oqpsk(round(sinr_db, 2))
    return (1.0 - ber) ** (8 * psdu_bytes)


class Channel:
    """Static link-gain table over a set of node positions."""

    def __init__(self, positions: np.ndarray,
                 config: RadioConfig = DEFAULT_RADIO_CONFIG,
                 exponent: float = 3.5,
                 reference_loss_db: float = 40.0,
                 shadowing_sigma_db: float = 3.0,
                 rng: Optional[np.random.Generator] = None):
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")
        self.positions = positions
        self.config = config
        self.exponent = exponent
        self.reference_loss_db = reference_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.n = len(positions)

        diffs = positions[:, None, :] - positions[None, :, :]
        self.distances = np.sqrt((diffs ** 2).sum(axis=2))

        if rng is None or shadowing_sigma_db == 0.0:
            shadowing = np.zeros((self.n, self.n))
        else:
            draw = rng.normal(0.0, shadowing_sigma_db, size=(self.n, self.n))
            shadowing = np.triu(draw, k=1)
            shadowing = shadowing + shadowing.T  # symmetric links
        with np.errstate(divide="ignore"):
            path_loss = (reference_loss_db
                         + 10.0 * exponent * np.log10(
                             np.maximum(self.distances, 1.0)))
        self._rx_power_dbm = config.tx_power_dbm - path_loss - shadowing
        np.fill_diagonal(self._rx_power_dbm, float("-inf"))
        self._rx_power_mw = np.where(
            np.isfinite(self._rx_power_dbm),
            10.0 ** (self._rx_power_dbm / 10.0), 0.0)
        self.noise_mw = dbm_to_mw(config.noise_floor_dbm)

    # -- link queries ---------------------------------------------------------

    def rx_power_dbm(self, src: int, dst: int) -> float:
        """Received power at ``dst`` of a frame sent by ``src``."""
        return float(self._rx_power_dbm[src, dst])

    def rx_power_mw(self, src: int, dst: int) -> float:
        return float(self._rx_power_mw[src, dst])

    def audible(self, src: int, dst: int) -> bool:
        """True when ``src``'s signal exceeds the receive sensitivity."""
        return self.rx_power_dbm(src, dst) >= self.config.sensitivity_dbm

    def carrier_sensed(self, src: int, dst: int) -> bool:
        """True when ``dst``'s CCA would report busy while ``src`` sends."""
        return self.rx_power_dbm(src, dst) >= self.config.cca_threshold_dbm

    def snr_db(self, src: int, dst: int) -> float:
        """Interference-free signal-to-noise ratio of the link."""
        return self.rx_power_dbm(src, dst) - self.config.noise_floor_dbm

    def link_prr(self, src: int, dst: int, psdu_bytes: int) -> float:
        """Interference-free PRR of the directed link."""
        if not self.audible(src, dst):
            return 0.0
        return prr_from_sinr(self.snr_db(src, dst), psdu_bytes)

    def sinr_db(self, dst: int, src: int,
                interferers: Sequence[int]) -> float:
        """SINR at ``dst`` for ``src``'s signal against ``interferers``."""
        signal = self._rx_power_mw[src, dst]
        interference = self.noise_mw + sum(
            self._rx_power_mw[i, dst] for i in interferers if i != src)
        return mw_to_dbm(signal) - mw_to_dbm(interference)

    def combined_rx_power_mw(self, dst: int, senders: Sequence[int]) -> float:
        """Aggregate power at ``dst`` from simultaneous ``senders``."""
        return float(sum(self._rx_power_mw[s, dst] for s in senders))

    # -- topology-level queries -------------------------------------------------

    def connectivity_graph(self, prr_threshold: float = 0.5,
                           probe_bytes: int = 40) -> nx.Graph:
        """Undirected graph of links whose PRR exceeds ``prr_threshold``.

        ``probe_bytes`` is the PSDU length used to evaluate link PRR (PRR is
        length-dependent).  Edge attribute ``prr`` holds the smaller of the
        two directed PRRs, ``etx`` its inverse (expected transmissions).
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        for src in range(self.n):
            for dst in range(src + 1, self.n):
                forward = self.link_prr(src, dst, probe_bytes)
                backward = self.link_prr(dst, src, probe_bytes)
                prr = min(forward, backward)
                if prr >= prr_threshold:
                    graph.add_edge(src, dst, prr=prr, etx=1.0 / prr)
        return graph

    def neighbours(self, node: int, prr_threshold: float = 0.5,
                   probe_bytes: int = 40) -> list[int]:
        """Nodes with a usable bidirectional link to ``node``."""
        result = []
        for other in range(self.n):
            if other == node:
                continue
            if (self.link_prr(node, other, probe_bytes) >= prr_threshold
                    and self.link_prr(other, node, probe_bytes)
                    >= prr_threshold):
                result.append(other)
        return result
