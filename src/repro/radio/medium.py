"""Shared-medium models.

Two media cover the two communication paradigms in the paper:

* :class:`FloodMedium` — slot-synchronous model for Synchronous-Transmission
  protocols (Glossy/MiniCast).  All transmitters in a slot send the *same*
  packet within sub-µs offsets, so signals combine (constructive
  interference / capture) instead of colliding.
* :class:`CsmaMedium` — continuous-time model for the traditional
  Asynchronous-Transmission stack: overlapping different frames interfere,
  with SINR-based capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

import numpy as np

from repro.radio.channel import Channel, mw_to_dbm, prr_from_sinr
from repro.radio.packet import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class FloodMedium:
    """Reception model for slot-synchronous concurrent transmissions."""

    def __init__(self, channel: Channel, rng: np.random.Generator):
        self.channel = channel
        self.rng = rng

    def reception_probability(self, receiver: int, senders: Sequence[int],
                              psdu_bytes: int) -> float:
        """Probability that ``receiver`` decodes a synchronized flood slot.

        All ``senders`` transmit the identical packet: their powers add at
        the receiver (non-coherent combining), de-rated per extra sender to
        account for carrier-frequency beating (``ci_derating``).
        """
        if not senders:
            return 0.0
        combined_mw = self.channel.combined_rx_power_mw(receiver, senders)
        if combined_mw <= 0.0:
            return 0.0
        combined_dbm = mw_to_dbm(combined_mw)
        if combined_dbm < self.channel.config.sensitivity_dbm:
            return 0.0  # below the radio's synchronisation threshold
        snr_db = combined_dbm - self.channel.config.noise_floor_dbm
        base = prr_from_sinr(snr_db, psdu_bytes)
        derating = self.channel.config.ci_derating ** (len(senders) - 1)
        return base * derating

    def flood_slot(self, senders: Sequence[int], listeners: Iterable[int],
                   psdu_bytes: int) -> set[int]:
        """Simulate one slot; returns the listeners that decoded the packet."""
        received: set[int] = set()
        for listener in listeners:
            p = self.reception_probability(listener, senders, psdu_bytes)
            if p > 0.0 and self.rng.random() < p:
                received.add(listener)
        return received


@dataclass
class Transmission:
    """One in-flight frame on the CSMA medium."""

    frame: Frame
    source: int
    start: float
    end: float
    #: transmissions whose airtime overlapped this one at any point
    interferers: list["Transmission"] = field(default_factory=list)


class CsmaMedium:
    """Continuous-time broadcast medium with SINR-based capture.

    Nodes register a ``listener`` callback; when a frame's airtime ends the
    medium decides per receiver whether it decodes, based on the SINR
    against every transmission that overlapped the frame, then invokes the
    callback.
    """

    def __init__(self, sim: "Simulator", channel: Channel,
                 rng: np.random.Generator):
        self.sim = sim
        self.channel = channel
        self.rng = rng
        self._active: list[Transmission] = []
        self._listeners: dict[int, Callable[[Frame, float], None]] = {}
        #: node ids currently transmitting (cannot receive meanwhile)
        self._transmitting: set[int] = set()
        # statistics
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_interference = 0
        self.frames_lost_noise = 0

    # -- registration -----------------------------------------------------------

    def register(self, node: int,
                 callback: Callable[[Frame, float], None]) -> None:
        """Attach ``node``'s reception callback."""
        self._listeners[node] = callback

    def unregister(self, node: int) -> None:
        """Detach a node (e.g. crash injection)."""
        self._listeners.pop(node, None)

    # -- carrier sensing ----------------------------------------------------------

    def channel_busy(self, node: int) -> bool:
        """Would a CCA at ``node`` report the channel busy right now?"""
        if not self._active:
            return False
        energy_mw = self.channel.noise_mw + sum(
            self.channel.rx_power_mw(t.source, node) for t in self._active)
        return mw_to_dbm(energy_mw) >= self.channel.config.cca_threshold_dbm

    # -- transmission -----------------------------------------------------------

    def transmit(self, source: int, frame: Frame):
        """Process: occupy the medium for the frame's airtime, then deliver.

        Use as ``yield from medium.transmit(node_id, frame)`` from a node
        process.  Reception outcomes are evaluated at end of frame.
        """
        start = self.sim.now
        transmission = Transmission(frame, source, start,
                                    start + frame.airtime)
        for other in self._active:
            other.interferers.append(transmission)
            transmission.interferers.append(other)
        self._active.append(transmission)
        self._transmitting.add(source)
        self.frames_sent += 1
        try:
            yield self.sim.timeout(frame.airtime)
        finally:
            self._active.remove(transmission)
            self._transmitting.discard(source)
        self._deliver(transmission)

    def _deliver(self, transmission: Transmission) -> None:
        frame = transmission.frame
        interferer_ids = [t.source for t in transmission.interferers]
        for node, callback in list(self._listeners.items()):
            if node == transmission.source:
                continue
            if not frame.is_broadcast and node != frame.destination:
                # Real receivers drop frames for others after address filter;
                # we skip the delivery either way.
                continue
            if node in self._transmitting:
                continue  # half-duplex: transmitters cannot receive
            if not self.channel.audible(transmission.source, node):
                continue
            if interferer_ids:
                # Co-channel capture: the frame survives concurrent
                # *different* transmissions only with a clear power
                # advantage (same-packet combining is FloodMedium's job).
                interference_mw = sum(
                    self.channel.rx_power_mw(i, node)
                    for i in interferer_ids)
                if interference_mw > 0.0:
                    sir_db = (self.channel.rx_power_dbm(
                        transmission.source, node)
                        - mw_to_dbm(interference_mw))
                    if sir_db < self.channel.config.capture_threshold_db:
                        self.frames_lost_interference += 1
                        continue
            sinr = self.channel.sinr_db(node, transmission.source,
                                        interferer_ids)
            p = prr_from_sinr(sinr, frame.psdu_bytes)
            if self.rng.random() < p:
                self.frames_delivered += 1
                callback(frame, self.channel.rx_power_dbm(
                    transmission.source, node))
            elif interferer_ids:
                self.frames_lost_interference += 1
            else:
                self.frames_lost_noise += 1
