"""Frame objects exchanged over the simulated radio."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.radio import phy

#: Destination address meaning "all neighbours".
BROADCAST: int = 0xFFFF

_frame_ids = count(1)


@dataclass
class Frame:
    """One 802.15.4 MAC frame.

    ``payload`` is an arbitrary (hashable or not) application object; only
    ``payload_bytes`` counts toward airtime, so higher layers declare the
    serialized size they would occupy on a real radio.
    """

    source: int
    destination: int
    payload: object
    payload_bytes: int
    kind: str = "data"
    sequence: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: MAC header bytes (FCF 2 + seq 1 + PAN 2 + dst 2 + src 2 = 9).
    mac_header_bytes: int = 9

    def __post_init__(self) -> None:
        if self.psdu_bytes > phy.MAX_FRAME_BYTES:
            raise ValueError(
                f"frame too large: {self.psdu_bytes} B PSDU "
                f"(max {phy.MAX_FRAME_BYTES})")

    @property
    def psdu_bytes(self) -> int:
        """Total PHY service data unit length in bytes."""
        return self.mac_header_bytes + self.payload_bytes + phy.MAC_FOOTER_BYTES

    @property
    def airtime(self) -> float:
        """On-air duration of this frame in seconds."""
        return phy.frame_airtime(self.psdu_bytes)

    @property
    def is_broadcast(self) -> bool:
        return self.destination == BROADCAST


@dataclass(frozen=True)
class Reception:
    """Outcome of one frame arrival at one receiver."""

    frame: Frame
    receiver: int
    rssi_dbm: float
    time: float
    relayed_by: Optional[int] = None
