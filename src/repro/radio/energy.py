"""Radio energy accounting with the CC2420 current model.

The CC2420 is the transceiver on the TelosB motes used in the paper.
Current draws follow the datasheet (at 3.0 V):

===========  ============
state        current (mA)
===========  ============
RX / listen  18.8
TX @ 0 dBm   17.4
idle         0.426
sleep        0.00002
===========  ============
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Supply voltage, volts.
VOLTAGE: float = 3.0

#: Current draw per radio state, amperes.
CURRENT_A: dict[str, float] = {
    "rx": 18.8e-3,
    "tx": 17.4e-3,
    "idle": 0.426e-3,
    "sleep": 0.02e-6,
}


@dataclass
class EnergyMeter:
    """Accumulates time spent per radio state and converts to energy."""

    seconds: dict[str, float] = field(
        default_factory=lambda: {state: 0.0 for state in CURRENT_A})

    def add(self, state: str, duration: float) -> None:
        """Charge ``duration`` seconds of ``state`` to the meter."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        if state not in self.seconds:
            raise KeyError(f"unknown radio state {state!r}")
        self.seconds[state] += duration

    @property
    def radio_on_time(self) -> float:
        """Total seconds with the transceiver active (RX + TX)."""
        return self.seconds["rx"] + self.seconds["tx"]

    def energy_joules(self) -> float:
        """Total consumed energy in joules."""
        return sum(VOLTAGE * CURRENT_A[state] * secs
                   for state, secs in self.seconds.items())

    def duty_cycle(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the radio was on."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.radio_on_time / elapsed

    def merged_with(self, other: "EnergyMeter") -> "EnergyMeter":
        """A new meter holding the sum of both meters' tallies."""
        merged = EnergyMeter()
        for state in merged.seconds:
            merged.seconds[state] = self.seconds[state] + other.seconds[state]
        return merged
