"""Node placement generators, including a FlockLab-like 26-node layout.

The paper evaluates on FlockLab (26 TelosB nodes spread over an office
building at ETH Zürich).  The exact floorplan is not reproducible, so
:func:`flocklab26` provides a fixed synthetic layout with the properties the
evaluation depends on: 26 nodes, connected, multi-hop (3–4 hop diameter
under the default channel model), with link-density comparable to an office
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx
import numpy as np

from repro.radio.channel import Channel
from repro.radio.phy import DEFAULT_RADIO_CONFIG, RadioConfig


@dataclass
class Topology:
    """A named set of node positions (metres)."""

    name: str
    positions: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")

    @property
    def n(self) -> int:
        return len(self.positions)

    def make_channel(self, rng: Optional[np.random.Generator] = None,
                     config: RadioConfig = DEFAULT_RADIO_CONFIG,
                     **channel_kwargs: float) -> Channel:
        """Instantiate the channel model over this layout."""
        return Channel(self.positions, config=config, rng=rng,
                       **channel_kwargs)

    def diameter_hops(self, channel: Channel,
                      prr_threshold: float = 0.5) -> int:
        """Hop diameter of the usable-link graph (∞ if disconnected)."""
        graph = channel.connectivity_graph(prr_threshold)
        if not nx.is_connected(graph):
            return -1
        return nx.diameter(graph)


def linear_layout(n: int, spacing: float = 20.0) -> Topology:
    """``n`` nodes on a line, ``spacing`` metres apart (worst-case hops)."""
    if n < 1:
        raise ValueError("need at least one node")
    positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    return Topology(f"line-{n}", positions)


def grid_layout(rows: int, cols: int, spacing: float = 18.0) -> Topology:
    """A ``rows`` × ``cols`` grid with ``spacing`` metres between nodes."""
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    xs, ys = np.meshgrid(np.arange(cols) * spacing, np.arange(rows) * spacing)
    positions = np.column_stack([xs.ravel(), ys.ravel()])
    return Topology(f"grid-{rows}x{cols}", positions)


def random_layout(n: int, width: float, height: float,
                  rng: np.random.Generator,
                  min_separation: float = 2.0,
                  max_tries: int = 10_000) -> Topology:
    """``n`` nodes uniform in a ``width`` × ``height`` box, min separation."""
    points: list[np.ndarray] = []
    tries = 0
    while len(points) < n:
        tries += 1
        if tries > max_tries:
            raise RuntimeError(
                f"could not place {n} nodes with separation "
                f"{min_separation} in {width}x{height}")
        candidate = rng.uniform([0.0, 0.0], [width, height])
        if all(np.linalg.norm(candidate - p) >= min_separation
               for p in points):
            points.append(candidate)
    return Topology(f"random-{n}", np.array(points))


def home_layout(rooms_x: int = 3, rooms_y: int = 2,
                devices_per_room: int = 3, room_size: float = 5.0,
                rng: Optional[np.random.Generator] = None,
                wall_penalty_spread: float = 1.0) -> Topology:
    """A house: rooms on a grid, devices clustered inside each room.

    Produces the dense single-to-two-hop network typical of a real HAN
    premise (as opposed to the building-scale FlockLab testbed).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    positions = []
    for rx in range(rooms_x):
        for ry in range(rooms_y):
            centre = np.array([(rx + 0.5) * room_size,
                               (ry + 0.5) * room_size])
            for _ in range(devices_per_room):
                jitter = rng.uniform(-wall_penalty_spread,
                                     wall_penalty_spread, size=2)
                positions.append(centre + jitter)
    n = rooms_x * rooms_y * devices_per_room
    return Topology(f"home-{n}", np.array(positions))


#: Fixed 26-node office-building layout standing in for FlockLab.
#: Three corridors (y = 0, 18, 36 m) spanning 120 m; adjacent nodes are
#: 15–24 m apart, giving reliable links below ~40 m and a 3–4 hop diameter
#: under the default channel model.
_FLOCKLAB26_POSITIONS: tuple[tuple[float, float], ...] = (
    # corridor A (9 nodes, y = 0)
    (0.0, 0.0), (15.0, 0.0), (30.0, 0.0), (45.0, 0.0), (60.0, 0.0),
    (75.0, 0.0), (90.0, 0.0), (105.0, 0.0), (120.0, 0.0),
    # corridor B (8 nodes, y = 18, staggered)
    (7.5, 18.0), (22.5, 18.0), (37.5, 18.0), (52.5, 18.0), (67.5, 18.0),
    (82.5, 18.0), (97.5, 18.0), (112.5, 18.0),
    # corridor C (9 nodes, y = 36)
    (0.0, 36.0), (15.0, 36.0), (30.0, 36.0), (45.0, 36.0), (60.0, 36.0),
    (75.0, 36.0), (90.0, 36.0), (105.0, 36.0), (120.0, 36.0),
)


def flocklab26() -> Topology:
    """The synthetic stand-in for the paper's 26-node FlockLab deployment."""
    return Topology("flocklab26", np.array(_FLOCKLAB26_POSITIONS))
