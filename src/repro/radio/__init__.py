"""Low-power wireless substrate: PHY, channel, media, topologies, energy."""

from repro.radio.channel import Channel, ber_oqpsk, prr_from_sinr
from repro.radio.clock import DriftingClock
from repro.radio.energy import EnergyMeter
from repro.radio.medium import CsmaMedium, FloodMedium, Transmission
from repro.radio.packet import BROADCAST, Frame, Reception
from repro.radio.phy import DEFAULT_RADIO_CONFIG, RadioConfig, frame_airtime
from repro.radio.topology import (
    Topology,
    flocklab26,
    grid_layout,
    home_layout,
    linear_layout,
    random_layout,
)

__all__ = [
    "BROADCAST",
    "Channel",
    "CsmaMedium",
    "DEFAULT_RADIO_CONFIG",
    "DriftingClock",
    "EnergyMeter",
    "FloodMedium",
    "Frame",
    "RadioConfig",
    "Reception",
    "Topology",
    "Transmission",
    "ber_oqpsk",
    "flocklab26",
    "frame_airtime",
    "grid_layout",
    "home_layout",
    "linear_layout",
    "prr_from_sinr",
    "random_layout",
]
