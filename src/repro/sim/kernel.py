"""The discrete-event simulation core.

:class:`Simulator` owns the event queue and the clock.  It is a from-scratch
generator-based kernel in the style of SimPy (which is not available in this
environment): processes are generators yielding events, time advances to the
next scheduled event, and ties are broken deterministically by (priority,
insertion order).

Typical use::

    sim = Simulator()

    def blinker(sim, period):
        while True:
            yield sim.timeout(period)
            print("tick at", sim.now)

    sim.spawn(blinker(sim, 1.0))
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
import sys
from itertools import count
from typing import Iterable, Optional

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority for urgent events (process kick-offs, interrupts).
PRIORITY_URGENT = 0

#: Upper bound on recycled Timeout instances kept per simulator.
_TIMEOUT_POOL_MAX = 128

#: ``sys.getrefcount`` result proving an event is referenced only by the
#: local variable inside :meth:`Simulator.step` (plus the call argument).
_REFCOUNT_UNREFERENCED = 2


class Simulator:
    """Discrete-event simulator: event queue, clock and process management."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process",
                 "_timeout_pool")

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: free list of processed, provably-unreferenced Timeouts — the
        #: kernel's highest-churn allocation, recycled by :meth:`step`
        self._timeout_pool: list[Timeout] = []

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention in this project)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        Pulls from the simulator's Timeout free list when possible
        (see :meth:`step`); behaviour is indistinguishable from a fresh
        instance.
        """
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event._reinit(delay, value)
            self._schedule(event, delay=delay)
            return event
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any event in ``events`` has fired."""
        return AnyOf(self, events)

    def spawn(self, generator: ProcessGenerator,
              name: Optional[str] = None) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator, name=name)

    # Alias familiar to SimPy users.
    process = spawn

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        """Insert a triggered event into the queue (kernel internal)."""
        heapq.heappush(self._queue,
                       (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event.ok and not event._defused:
            # An event failed and nobody was there to handle it: crash the
            # simulation rather than silently dropping the error.
            raise event.value  # type: ignore[misc]
        # Recycle the highest-churn allocation: a processed Timeout whose
        # refcount proves nothing outside this frame still references it
        # (a process that stored `t = sim.timeout(...)` keeps it alive and
        # therefore out of the pool).  Events cannot be weakly referenced
        # (__slots__ without __weakref__), so the refcount check is exact.
        if (type(event) is Timeout
                and sys.getrefcount(event) == _REFCOUNT_UNREFERENCED
                and len(self._timeout_pool) < _TIMEOUT_POOL_MAX):
            self._timeout_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> object:
        """Run until the queue drains, ``until`` time passes, or event fires.

        ``until`` may be a plain number (run up to and including that time),
        an :class:`Event` (run until it fires, returning its value), or
        ``None`` (run until no events remain).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_StopCallback())
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} lies in the past (now={self._now})")
            stop_event = Event(self)
            stop_event.callbacks.append(_StopCallback())
            self._schedule(stop_event, delay=horizon - self._now,
                           priority=PRIORITY_URGENT + 2)
            stop_event._ok = True
            stop_event._value = None

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.processed:
            if isinstance(until, Event):
                raise SimulationError(
                    "run(until=event) exhausted all events before it fired")
        return None


class _StopCallback:
    """Callback that halts :meth:`Simulator.run` when its event fires."""

    def __call__(self, event: Event) -> None:
        event._defused = True
        raise StopSimulation(event._value)
