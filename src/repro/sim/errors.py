"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EventAlreadyFired(SimulationError):
    """Raised when triggering an event that has already succeeded or failed."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies ``cause``, an arbitrary object describing
    why the wait was cut short (e.g. ``"preempted"`` or a request object).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Interrupt(cause={self.cause!r})"


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Simulator.run` early."""

    def __init__(self, value: object = None):
        super().__init__(value)
        self.value = value
