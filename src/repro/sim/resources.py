"""Shared-resource primitives built on the kernel.

:class:`Resource` models a capacity-limited server with a FIFO wait queue
(e.g. a radio transceiver that can serve one frame at a time).
:class:`Store` is an unbounded FIFO hand-off buffer between processes
(e.g. a MAC-layer transmit queue).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        resource._admit(self)

    def release(self) -> None:
        """Give the slot back (no-op if never granted)."""
        self.resource._release(self)


class Resource:
    """A server with ``capacity`` slots and a FIFO queue of waiters."""

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; yield the returned event to wait for the grant."""
        return Request(self)

    def _admit(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def _release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            while self._waiting and len(self._users) < self.capacity:
                successor = self._waiting.popleft()
                self._users.add(successor)
                successor.succeed()
        else:
            # Cancelled while waiting.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass

    def acquire(self) -> Generator[Event, object, Request]:
        """Convenience sub-process: ``req = yield from resource.acquire()``."""
        request = self.request()
        yield request
        return request


class Store:
    """Unbounded FIFO buffer with blocking ``get``."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (immediately if one is buffered)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list[object]:
        """Remove and return all buffered items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
