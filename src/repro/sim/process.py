"""Generator-backed processes for the discrete-event kernel.

A process wraps a generator that ``yield``-s :class:`~repro.sim.events.Event`
instances.  Each yield suspends the process until the event fires; the
process then resumes with the event's value (or the failure exception is
thrown into the generator).  A :class:`Process` is itself an event that fires
when the generator returns, which lets processes wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.errors import Interrupt
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

ProcessGenerator = Generator[Event, object, object]


class Process(Event):
    """A running simulation process; also an event firing on completion."""

    __slots__ = ("generator", "name", "_target", "_resume")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: event the process is currently waiting on (None when runnable)
        self._target: Optional[Event] = None
        # Kick-start: resume at the current instant via an initializer event.
        self._resume = Event(sim)
        self._resume.callbacks.append(self._step)
        self._resume.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is an error; interrupting a process
        that is about to resume anyway is allowed (the interrupt wins).
        """
        if self.triggered:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._step)
            except ValueError:  # pragma: no cover - already detached
                pass
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._step_interrupt)
        interrupt_event.fail(Interrupt(cause))
        interrupt_event._defused = True

    # -- stepping ----------------------------------------------------------

    def _step(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome."""
        self._target = None
        self.sim._active_process = self
        try:
            if event.ok:
                next_event = self.generator.send(event.value)
            else:
                event._defused = True
                next_event = self.generator.throw(event.value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        self._wait_for(next_event)

    def _step_interrupt(self, event: Event) -> None:
        """Resume the generator by throwing the interrupt."""
        self._target = None
        self.sim._active_process = self
        try:
            next_event = self.generator.throw(event.value)  # type: ignore[arg-type]
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        self._wait_for(next_event)

    def _wait_for(self, event: Event) -> None:
        if not isinstance(event, Event):
            raise RuntimeError(
                f"process {self.name!r} yielded {event!r}, expected an Event")
        if event.sim is not self.sim:
            raise RuntimeError(
                f"process {self.name!r} yielded an event from another simulator")
        self._target = event
        if event.callbacks is None:
            # Event already processed: resume at the current instant.
            resume = Event(self.sim)
            resume.callbacks.append(self._step)
            if event.ok:
                resume.succeed(event.value)
            else:
                event._defused = True
                resume.fail(event.value)  # type: ignore[arg-type]
                resume._defused = True
        else:
            event.callbacks.append(self._step)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Process {self.name!r} at {id(self):#x}>"
