"""Deterministic named random streams.

Every stochastic component in the simulator draws from its own named child
stream of a single root seed.  Stream identity depends only on the *name*,
never on creation order, so adding a new random consumer does not perturb the
draws of existing ones — a property the multi-seed experiment sweeps rely on.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np


def _digest_seed(root_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a child seed-sequence from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    words = [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]
    return np.random.SeedSequence(entropy=words)


class RandomStreams:
    """Factory of independent, order-insensitive named RNG streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.Generator(
                np.random.PCG64(_digest_seed(self.root_seed, name)))
            self._streams[name] = generator
        return generator

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def child(self, scope: str) -> "RandomStreams":
        """A nested stream factory whose names are prefixed by ``scope``."""
        return _ScopedStreams(self, scope)

    def names(self) -> Iterator[str]:
        """Names of streams instantiated so far (diagnostics)."""
        return iter(sorted(self._streams))


class _ScopedStreams(RandomStreams):
    """Prefix view onto a parent :class:`RandomStreams`."""

    def __init__(self, parent: RandomStreams, scope: str):
        self._parent = parent
        self._scope = scope
        self.root_seed = parent.root_seed

    def stream(self, name: str) -> np.random.Generator:
        return self._parent.stream(f"{self._scope}/{name}")

    def child(self, scope: str) -> "RandomStreams":
        return _ScopedStreams(self._parent, f"{self._scope}/{scope}")

    def names(self) -> Iterator[str]:  # pragma: no cover - diagnostics
        prefix = f"{self._scope}/"
        return iter(n for n in self._parent.names() if n.startswith(prefix))


def exponential_interarrival(rng: np.random.Generator,
                             rate_per_second: float) -> float:
    """Sample one Poisson-process inter-arrival gap (seconds)."""
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    return float(rng.exponential(1.0 / rate_per_second))
