"""Discrete-event simulation kernel (built from scratch for this project).

Public surface::

    from repro.sim import Simulator, RandomStreams, StepSeries

    sim = Simulator()
    sim.spawn(my_generator(sim))
    sim.run(until=3600.0)
"""

from repro.sim.errors import EventAlreadyFired, Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.monitor import Counter, GaugeSum, StepSeries
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams, exponential_interarrival
from repro.sim import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "EventAlreadyFired",
    "GaugeSum",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "StepSeries",
    "Store",
    "Timeout",
    "exponential_interarrival",
    "units",
]
