"""Time-series recording for simulations.

:class:`StepSeries` records a piecewise-constant signal (e.g. total system
load): each ``record(t, v)`` states that the signal holds value ``v`` from
time ``t`` until the next record.  All summary statistics are *time-weighted*
so that sampling frequency does not bias them.

Storage is hybrid: recording appends to plain Python lists (O(1) on the
simulation hot path), while every bulk query — ``sample``, ``window`` and
the time-weighted statistics — runs over lazily materialized NumPy arrays
cached until the next ``record``.  The vectorized paths are bit-compatible
with the scalar definitions they replaced: segment durations and products
are the same IEEE-754 operations, and reductions that are sensitive to
float ordering (``integral``, ``variance``) still accumulate through
``math.fsum`` over identical per-segment terms.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np


class StepSeries:
    """A right-open piecewise-constant time series."""

    __slots__ = ("name", "_times", "_values", "_arrays", "_views", "_hold")

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        #: cached ``(times, values)`` ndarray pair; None until first use
        self._arrays: Optional[tuple[np.ndarray, np.ndarray]] = None
        #: cached immutable ``(times, values)`` tuple pair for the
        #: :attr:`times` / :attr:`values` properties
        self._views: Optional[tuple[tuple[float, ...],
                                    tuple[float, ...]]] = None
        #: opaque owner of externally backed arrays (e.g. the shared
        #: memory block a transport frame unpacked this series from);
        #: referenced only so the backing outlives every view of it
        self._hold: Optional[object] = None

    # -- recording ----------------------------------------------------------

    def record(self, time: float, value: float) -> None:
        """State that the signal equals ``value`` from ``time`` onward."""
        if self._times:
            last = self._times[-1]
            if time < last:
                raise ValueError(
                    f"record at t={time} precedes last record t={last}")
            if time == last:
                # Same-instant update wins (e.g. several devices switching in
                # one event): overwrite in place.
                self._values[-1] = value
                self._arrays = None
                self._views = None
                return
            if value == self._values[-1]:
                return  # no change, keep the series minimal
        self._times.append(float(time))
        self._values.append(float(value))
        self._arrays = None
        self._views = None

    def append(self, times: Iterable[float],
               values: Iterable[float]) -> None:
        """Bulk-record a batch of ``(time, value)`` pairs.

        The streaming-ingestion primitive (:mod:`repro.telemetry`): the
        whole batch lands in one vectorized pass when it is strictly
        time-increasing and strictly later than the last record, falling
        back to a scalar :meth:`record` loop otherwise — so semantics
        (monotonicity errors, same-instant overwrite, no-change skip)
        are *exactly* those of calling :meth:`record` per pair.

        Both cached array forms are invalidated on every mutation, so a
        ``times``/``values`` view or ``_data()`` pair fetched before the
        append is never returned stale afterwards (locked by
        ``tests/test_telemetry.py``).
        """
        batch_times = np.asarray(times, dtype=float)
        batch_values = np.asarray(values, dtype=float)
        if batch_times.shape != batch_values.shape \
                or batch_times.ndim != 1:
            raise ValueError("append needs equal-length 1-D batches; got "
                             f"shapes {batch_times.shape} and "
                             f"{batch_values.shape}")
        if batch_times.size == 0:
            return
        fast = bool(np.all(np.diff(batch_times) > 0)) and (
            not self._times or batch_times[0] > self._times[-1])
        if fast:
            previous = np.empty_like(batch_values)
            # NaN compares unequal to everything, so on an empty series
            # the first batch entry is always kept — same as record().
            previous[0] = self._values[-1] if self._values else np.nan
            previous[1:] = batch_values[:-1]
            keep = batch_values != previous
            self._times.extend(batch_times[keep].tolist())
            self._values.extend(batch_values[keep].tolist())
            self._arrays = None
            self._views = None
            return
        for time, value in zip(batch_times.tolist(),
                               batch_values.tolist()):
            self.record(time, value)

    @classmethod
    def from_arrays(cls, name: str, times: np.ndarray,
                    values: np.ndarray,
                    hold: Optional[object] = None) -> "StepSeries":
        """Build a series directly from already-recorded arrays.

        The bulk constructor for transport and aggregation: ``times`` must
        be strictly increasing and ``values`` free of consecutive
        duplicates — i.e. exactly what replaying the pairs through
        :meth:`record` would keep (callers that hold raw event streams
        normalize through :func:`repro.neighborhood.aggregate.dedup_records`
        first).  The arrays are adopted as the series' cached ndarray
        form, so vectorized consumers (statistics, sampling, feeder
        aggregation) read them zero-copy; the plain-list form is
        materialized once, keeping every scalar path (``record``, ``at``,
        pickling) identical to a recorded series.

        ``hold`` is kept referenced for the series' lifetime — pass the
        object owning externally backed arrays (a shared-memory block) so
        the backing cannot be reclaimed while views of it live.
        """
        series = cls(name)
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        series._times = times.tolist()
        series._values = values.tolist()
        series._arrays = (times, values)
        series._hold = hold
        return series

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def __getstate__(self) -> tuple:
        # Caches are derived state: drop them so pickles stay compact and
        # two series with equal recordings pickle identically.
        return (self.name, self._times, self._values)

    def __setstate__(self, state: tuple) -> None:
        self.name, self._times, self._values = state
        self._arrays = None
        self._views = None
        self._hold = None

    @property
    def times(self) -> Sequence[float]:
        """Record times as an immutable view (cached until next record)."""
        return self._tuple_views()[0]

    @property
    def values(self) -> Sequence[float]:
        """Record values as an immutable view (cached until next record)."""
        return self._tuple_views()[1]

    def _tuple_views(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        views = self._views
        if views is None:
            views = (tuple(self._times), tuple(self._values))
            self._views = views
        return views

    def _data(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached ndarray form of the recordings."""
        arrays = self._arrays
        if arrays is None:
            arrays = (np.asarray(self._times, dtype=float),
                      np.asarray(self._values, dtype=float))
            self._arrays = arrays
        return arrays

    # -- queries --------------------------------------------------------------

    def at(self, time: float) -> float:
        """Signal value at ``time`` (0.0 before the first record)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self._values[index]

    def window(self, start: float, end: float) -> "StepSeries":
        """The series restricted to ``[start, end)``."""
        if end < start:
            raise ValueError(f"end={end} precedes start={start}")
        clipped = StepSeries(self.name)
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        at_start = self._values[lo - 1] if lo > 0 else 0.0
        times = [float(start)]
        values = [float(at_start)]
        # Replicate record()'s minimality: drop entries equal to the value
        # already in force.  The source is *almost* minimal, but
        # same-instant overwrites can leave adjacent equal values, and the
        # boundary record can duplicate the first in-window entry.
        previous = at_start
        for i in range(lo, hi):
            value = self._values[i]
            if value != previous:
                times.append(self._times[i])
                values.append(value)
                previous = value
        clipped._times = times
        clipped._values = values
        return clipped

    def sample(self, times: Iterable[float]) -> np.ndarray:
        """Signal values at each query time, as an array."""
        query = np.asarray(list(times) if not isinstance(times, np.ndarray)
                           else times, dtype=float)
        rec_times, rec_values = self._data()
        if rec_times.size == 0:
            return np.zeros(query.shape, dtype=float)
        index = np.searchsorted(rec_times, query, side="right") - 1
        out = rec_values[np.maximum(index, 0)]
        return np.where(index >= 0, out, 0.0)

    def sample_grid(self, start: float, end: float,
                    step: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample on a regular grid; returns ``(times, values)`` arrays."""
        grid = np.arange(start, end, step, dtype=float)
        return grid, self.sample(grid)

    def segments(self, start: float,
                 end: float) -> Iterator[tuple[float, float, float]]:
        """Yield ``(seg_start, seg_end, value)`` partitioning ``[start, end)``.

        The canonical constant-segment decomposition of the series: the
        signal is 0 before the first record (matching :meth:`at`), and
        consecutive segments are contiguous.  Derived views (rotation,
        envelopes, the time-weighted statistics below) should build on
        this rather than re-deriving the semantics.
        """
        if end <= start:
            return
        value = self.at(start)
        t = start
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            yield t, self._times[i], value
            t, value = self._times[i], self._values[i]
        yield t, end, value

    # -- time-weighted statistics over [start, end) ---------------------------

    def _segment_arrays(self, start: float,
                        end: float) -> tuple[np.ndarray, np.ndarray]:
        """``(durations, values)`` arrays of the segments in ``[start, end)``.

        The vectorized counterpart of :meth:`segments` (same boundaries,
        same subtractions), for the statistics below; callers must have
        checked ``end > start``.
        """
        times, values = self._data()
        lo = int(np.searchsorted(times, start, side="right"))
        hi = int(np.searchsorted(times, end, side="left"))
        bounds = np.empty(hi - lo + 2, dtype=float)
        bounds[0] = start
        bounds[1:-1] = times[lo:hi]
        bounds[-1] = end
        seg_values = np.empty(hi - lo + 1, dtype=float)
        seg_values[0] = values[lo - 1] if lo > 0 else 0.0
        seg_values[1:] = values[lo:hi]
        return np.diff(bounds), seg_values

    def integral(self, start: float, end: float) -> float:
        """∫ signal dt over ``[start, end)`` (e.g. energy from power)."""
        if end <= start:
            return 0.0
        durations, values = self._segment_arrays(start, end)
        return math.fsum((durations * values).tolist())

    def mean(self, start: float, end: float) -> float:
        """Time-weighted mean over ``[start, end)``."""
        if end <= start:
            raise ValueError("empty interval")
        return self.integral(start, end) / (end - start)

    def variance(self, start: float, end: float) -> float:
        """Time-weighted population variance over ``[start, end)``."""
        mu = self.mean(start, end)
        durations, values = self._segment_arrays(start, end)
        deviation = values - mu
        second = math.fsum((durations * (deviation * deviation)).tolist())
        return second / (end - start)

    def std(self, start: float, end: float) -> float:
        """Time-weighted standard deviation over ``[start, end)``."""
        return math.sqrt(self.variance(start, end))

    def maximum(self, start: float, end: float) -> float:
        """Maximum signal value attained in ``[start, end)``."""
        if end <= start:
            raise ValueError("empty interval")
        durations, values = self._segment_arrays(start, end)
        held = values[durations > 0]
        if held.size == 0:  # pragma: no cover - end > start implies one
            raise ValueError("empty interval")
        return float(held.max())

    def minimum(self, start: float, end: float) -> float:
        """Minimum signal value attained in ``[start, end)``."""
        if end <= start:
            raise ValueError("empty interval")
        durations, values = self._segment_arrays(start, end)
        held = values[durations > 0]
        if held.size == 0:  # pragma: no cover - end > start implies one
            raise ValueError("empty interval")
        return float(held.min())

    def max_step(self, start: float, end: float) -> float:
        """Largest instantaneous upward jump in ``[start, end)``.

        This is the paper's "sudden rise in load": the biggest one-instant
        increase of the signal.
        """
        times, values = self._data()
        lo = int(np.searchsorted(times, start, side="right"))
        hi = int(np.searchsorted(times, end, side="left"))
        if hi <= lo:
            return 0.0
        stepped = values[lo:hi]
        previous = np.empty_like(stepped)
        previous[0] = values[lo - 1] if lo > 0 else 0.0
        previous[1:] = stepped[:-1]
        return float(max(0.0, (stepped - previous).max()))


class Counter:
    """A monotonically increasing named tally (packets sent, rounds run...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only count up")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name!r}, {self.value})"


class GaugeSum:
    """Aggregates many per-contributor gauges into one :class:`StepSeries`.

    Each contributor publishes its own level (e.g. one appliance's power
    draw); the gauge records the *sum* whenever any contributor changes.
    """

    __slots__ = ("series", "_levels", "_total")

    def __init__(self, name: str = ""):
        self.series = StepSeries(name)
        self._levels: dict[object, float] = {}
        self._total = 0.0

    @property
    def total(self) -> float:
        """Current aggregate level."""
        return self._total

    def set_level(self, key: object, level: float, time: float) -> None:
        """Set contributor ``key``'s level at ``time`` and record the sum."""
        self._total += level - self._levels.get(key, 0.0)
        self._levels[key] = level
        # Clamp tiny float residue so long runs don't drift below zero.
        if abs(self._total) < 1e-9:
            self._total = 0.0
        self.series.record(time, self._total)

    def level_of(self, key: object) -> float:
        """Current level of one contributor."""
        return self._levels.get(key, 0.0)
