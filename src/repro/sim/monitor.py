"""Time-series recording for simulations.

:class:`StepSeries` records a piecewise-constant signal (e.g. total system
load): each ``record(t, v)`` states that the signal holds value ``v`` from
time ``t`` until the next record.  All summary statistics are *time-weighted*
so that sampling frequency does not bias them.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np


class StepSeries:
    """A right-open piecewise-constant time series."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    # -- recording ----------------------------------------------------------

    def record(self, time: float, value: float) -> None:
        """State that the signal equals ``value`` from ``time`` onward."""
        if self._times:
            last = self._times[-1]
            if time < last:
                raise ValueError(
                    f"record at t={time} precedes last record t={last}")
            if time == last:
                # Same-instant update wins (e.g. several devices switching in
                # one event): overwrite in place.
                self._values[-1] = value
                return
            if value == self._values[-1]:
                return  # no change, keep the series minimal
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    # -- queries --------------------------------------------------------------

    def at(self, time: float) -> float:
        """Signal value at ``time`` (0.0 before the first record)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self._values[index]

    def window(self, start: float, end: float) -> "StepSeries":
        """The series restricted to ``[start, end)``."""
        if end < start:
            raise ValueError(f"end={end} precedes start={start}")
        clipped = StepSeries(self.name)
        clipped.record(start, self.at(start))
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            clipped.record(self._times[i], self._values[i])
        return clipped

    def sample(self, times: Iterable[float]) -> np.ndarray:
        """Signal values at each query time, as an array."""
        return np.array([self.at(t) for t in times], dtype=float)

    def sample_grid(self, start: float, end: float,
                    step: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample on a regular grid; returns ``(times, values)`` arrays."""
        grid = np.arange(start, end, step, dtype=float)
        return grid, self.sample(grid)

    def segments(self, start: float,
                 end: float) -> Iterator[tuple[float, float, float]]:
        """Yield ``(seg_start, seg_end, value)`` partitioning ``[start, end)``.

        The canonical constant-segment decomposition of the series: the
        signal is 0 before the first record (matching :meth:`at`), and
        consecutive segments are contiguous.  Derived views (rotation,
        envelopes, the time-weighted statistics below) should build on
        this rather than re-deriving the semantics.
        """
        if end <= start:
            return
        value = self.at(start)
        t = start
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            yield t, self._times[i], value
            t, value = self._times[i], self._values[i]
        yield t, end, value

    # -- time-weighted statistics over [start, end) ---------------------------

    def _segments(self, start: float,
                  end: float) -> Iterator[tuple[float, float]]:
        """Yield ``(duration, value)`` for each constant segment in range."""
        for seg_start, seg_end, value in self.segments(start, end):
            yield seg_end - seg_start, value

    def integral(self, start: float, end: float) -> float:
        """∫ signal dt over ``[start, end)`` (e.g. energy from power)."""
        return math.fsum(d * v for d, v in self._segments(start, end))

    def mean(self, start: float, end: float) -> float:
        """Time-weighted mean over ``[start, end)``."""
        if end <= start:
            raise ValueError("empty interval")
        return self.integral(start, end) / (end - start)

    def variance(self, start: float, end: float) -> float:
        """Time-weighted population variance over ``[start, end)``."""
        mu = self.mean(start, end)
        second = math.fsum(d * (v - mu) ** 2
                           for d, v in self._segments(start, end))
        return second / (end - start)

    def std(self, start: float, end: float) -> float:
        """Time-weighted standard deviation over ``[start, end)``."""
        return math.sqrt(self.variance(start, end))

    def maximum(self, start: float, end: float) -> float:
        """Maximum signal value attained in ``[start, end)``."""
        best: Optional[float] = None
        for duration, value in self._segments(start, end):
            if duration > 0 and (best is None or value > best):
                best = value
        if best is None:
            raise ValueError("empty interval")
        return best

    def minimum(self, start: float, end: float) -> float:
        """Minimum signal value attained in ``[start, end)``."""
        worst: Optional[float] = None
        for duration, value in self._segments(start, end):
            if duration > 0 and (worst is None or value < worst):
                worst = value
        if worst is None:
            raise ValueError("empty interval")
        return worst

    def max_step(self, start: float, end: float) -> float:
        """Largest instantaneous upward jump in ``[start, end)``.

        This is the paper's "sudden rise in load": the biggest one-instant
        increase of the signal.
        """
        biggest = 0.0
        previous = self.at(start)
        lo = bisect.bisect_right(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            jump = self._values[i] - previous
            if jump > biggest:
                biggest = jump
            previous = self._values[i]
        return biggest


class Counter:
    """A monotonically increasing named tally (packets sent, rounds run...)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only count up")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name!r}, {self.value})"


class GaugeSum:
    """Aggregates many per-contributor gauges into one :class:`StepSeries`.

    Each contributor publishes its own level (e.g. one appliance's power
    draw); the gauge records the *sum* whenever any contributor changes.
    """

    def __init__(self, name: str = ""):
        self.series = StepSeries(name)
        self._levels: dict[object, float] = {}
        self._total = 0.0

    @property
    def total(self) -> float:
        """Current aggregate level."""
        return self._total

    def set_level(self, key: object, level: float, time: float) -> None:
        """Set contributor ``key``'s level at ``time`` and record the sum."""
        self._total += level - self._levels.get(key, 0.0)
        self._levels[key] = level
        # Clamp tiny float residue so long runs don't drift below zero.
        if abs(self._total) < 1e-9:
            self._total = 0.0
        self.series.record(time, self._total)

    def level_of(self, key: object) -> float:
        """Current level of one contributor."""
        return self._levels.get(key, 0.0)
