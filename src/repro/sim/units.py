"""Unit conventions and conversion constants.

The kernel clock is dimensionless; throughout this project it denotes
**seconds**.  Power values are **watts** and energy values **joules** unless
a name says otherwise (``_kw``, ``_kwh``).
"""

from __future__ import annotations

#: One second of simulated time.
SECOND: float = 1.0
#: One millisecond.
MILLISECOND: float = 1e-3
#: One microsecond.
MICROSECOND: float = 1e-6
#: One minute.
MINUTE: float = 60.0
#: One hour.
HOUR: float = 3600.0
#: One day.
DAY: float = 86400.0

#: One kilowatt, in watts.
KILOWATT: float = 1000.0


def watts_to_kw(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / KILOWATT


def kw_to_watts(kilowatts: float) -> float:
    """Convert kilowatts to watts."""
    return kilowatts * KILOWATT


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / (KILOWATT * HOUR)


def per_hour_to_per_second(rate_per_hour: float) -> float:
    """Convert an event rate expressed per hour to per second."""
    return rate_per_hour / HOUR


def minutes(value: float) -> float:
    """``value`` minutes expressed in simulation seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """``value`` hours expressed in simulation seconds."""
    return value * HOUR
