"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait on
events by ``yield``-ing them; arbitrary callbacks may also subscribe.  The
composite events :class:`AllOf` and :class:`AnyOf` wait for conjunctions and
disjunctions of other events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.errors import EventAlreadyFired

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Simulator

# Sentinel for "no value yet": distinguishes a pending event from one that
# fired with value ``None``.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Events move through three states: *pending* (just created), *triggered*
    (scheduled to fire at the current simulation instant) and *processed*
    (callbacks have run).  ``succeed``/``fail`` trigger the event; waiting
    processes resume with the event's value, or have the failure exception
    thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventAlreadyFired(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyFired(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Timeouts are the kernel's highest-churn allocation (every process
    wait creates one), so :meth:`repro.sim.kernel.Simulator.timeout`
    recycles processed instances through a free list via :meth:`_reinit`
    instead of constructing fresh objects.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)

    def _reinit(self, delay: float, value: object) -> None:
        """Reset a recycled instance to freshly-constructed state.

        Kernel internal: only the free-list pool of the owning simulator
        may call this, and only on instances it has proven unreferenced
        (see :meth:`repro.sim.kernel.Simulator.step`).  The caller
        schedules the event.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._defused = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Timeout delay={self.delay}>"


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulators")
        # Subscribe after validation so a bad mix never half-subscribes.
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self._finish()

    def _finish(self) -> None:
        if not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, object]:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    Its value is a dict mapping each event to its value.  If any constituent
    fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._count == len(self.events):
            self._finish()


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)  # type: ignore[arg-type]
            return
        self._finish()
