"""Command-line interface: regenerate any paper figure or ablation.

Usage::

    python -m repro fig2a [--seed 1] [--fidelity round]
    python -m repro fig2b [--seeds 1 2 3]
    python -m repro fig2c
    python -m repro headline
    python -m repro cp-trace [--rounds 25]
    python -m repro ablation {cp-period,loss,scale,slots,variants,
                              st-vs-at,spof}
    python -m repro run --policy coordinated --rate 30 --seed 1
    python -m repro run --jobs 4 --seeds 1 2 3 4   # parallel seed fan-out
    python -m repro neighborhood --homes 20 --jobs 4 --mix suburb
    python -m repro neighborhood --homes 20 --coordinate   # feeder CP
    python -m repro regen FIG2A HEADLINE --jobs 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.report import format_table
from repro.core.system import FIDELITIES, POLICIES, HanConfig, run_experiment
from repro.experiments import ablations, cp_trace, figures
from repro.experiments.runner import (
    ParallelRunner,
    RunSpec,
    WorkerFailure,
    run_registry,
)
from repro.neighborhood import build_fleet, run_neighborhood
from repro.sim.units import MINUTE
from repro.workloads.scenarios import FLEET_MIXES, paper_scenario


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--fidelity", choices=FIDELITIES, default="round")
    parser.add_argument("--horizon-min", type=float, default=None,
                        help="override the 350 min horizon")


def _horizon(args: argparse.Namespace) -> Optional[float]:
    return args.horizon_min * MINUTE if args.horizon_min else None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collaborative HAN load management — ICDCS'22 "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    for figure in ("fig2a", "fig2b", "fig2c", "headline"):
        p = sub.add_parser(figure, help=f"regenerate {figure}")
        _add_common(p)

    p = sub.add_parser("cp-trace", help="FIG1: slot-level CP measurements")
    p.add_argument("--rounds", type=int, default=25)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("ablation", help="run one ablation study")
    p.add_argument("which", choices=["cp-period", "loss", "scale", "slots",
                                     "variants", "st-vs-at", "spof"])
    _add_common(p)

    p = sub.add_parser("run", help="one custom experiment run")
    _add_common(p)
    p.add_argument("--policy", choices=POLICIES, default="coordinated")
    p.add_argument("--rate", type=float, default=30.0,
                   help="requests/hour")
    p.add_argument("--devices", type=int, default=26)
    p.add_argument("--jobs", type=int, default=1,
                   help="fan --seeds out over N worker processes")
    p.add_argument("--export-json", metavar="PATH", default=None,
                   help="write the full run result as JSON")

    p = sub.add_parser("neighborhood",
                       help="N heterogeneous homes behind one feeder")
    p.add_argument("--homes", type=int, default=20)
    p.add_argument("--mix", choices=sorted(FLEET_MIXES), default="suburb")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the home fan-out")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--coordinate", action="store_true",
                   help="run the feeder-level collaboration plane "
                        "(cross-home phase staggering) and report the "
                        "diversity-factor uplift")
    p.add_argument("--policy", choices=POLICIES, default="coordinated")
    p.add_argument("--fidelity", choices=FIDELITIES, default="round")
    p.add_argument("--horizon-min", type=float, default=None,
                   help="override the 350 min horizon")
    p.add_argument("--export-json", metavar="PATH", default=None,
                   help="write the neighborhood result as JSON")
    p.add_argument("--export-csv", metavar="PATH", default=None,
                   help="write feeder + per-home load columns as CSV")

    p = sub.add_parser("regen",
                       help="regenerate registry artefacts (parallelisable)")
    p.add_argument("ids", nargs="*",
                   help="experiment ids (default: all; see `repro list`)")
    p.add_argument("--jobs", type=int, default=1)

    sub.add_parser("list", help="list every reproducible experiment")
    return parser


class _BadInput(Exception):
    """Invalid CLI input (clean `error:` + exit 2, never a traceback)."""


def _checked(factory, *factory_args, **factory_kwargs):
    """Run an input-validating call, converting its rejections to exit 2."""
    try:
        return factory(*factory_args, **factory_kwargs)
    except (KeyError, ValueError) as bad:
        raise _BadInput(bad.args[0] if bad.args else str(bad)) from bad


def _check_jobs(jobs: int) -> None:
    if jobs < 1:
        raise _BadInput(f"jobs must be >= 1, got {jobs}")


def _run_seed_fanout(args: argparse.Namespace, scenario,
                     horizon: Optional[float]) -> None:
    """``repro run --jobs N``: one run per --seeds entry, in parallel."""
    import numpy as np
    if args.seed not in args.seeds:
        print(f"note: --seed {args.seed} ignored in fan-out mode; "
              f"fanning out --seeds {args.seeds}")
    specs = [RunSpec(name=f"{scenario.name}/seed{seed}",
                     config=HanConfig(scenario=scenario, policy=args.policy,
                                      cp_fidelity=args.fidelity, seed=seed),
                     until=horizon)
             for seed in args.seeds]
    results = ParallelRunner(jobs=args.jobs).run(specs)
    all_stats = [result.stats(end=horizon) for result in results]
    rows = [[seed, st.peak_kw, st.mean_kw, st.std_kw, st.energy_kwh]
            for seed, st in zip(args.seeds, all_stats)]
    for label, pick in (("mean", np.mean), ("std", np.std)):
        rows.append([label,
                     float(pick([s.peak_kw for s in all_stats])),
                     float(pick([s.mean_kw for s in all_stats])),
                     float(pick([s.std_kw for s in all_stats])),
                     float(pick([s.energy_kwh for s in all_stats]))])
    print(format_table(
        ["seed", "peak kW", "mean kW", "std kW", "energy kWh"], rows,
        title=f"run: {scenario.name}, policy {args.policy}, "
              f"{len(args.seeds)} seeds x {args.jobs} jobs"))
    if args.export_json:
        from pathlib import Path

        from repro.analysis.export import run_result_to_json
        base = Path(args.export_json)
        suffix = base.suffix or ".json"
        for seed, result in zip(args.seeds, results):
            path = base.with_name(f"{base.stem}.seed{seed}{suffix}")
            run_result_to_json(result, path)
            print(f"result written to {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except WorkerFailure as failure:
        print(f"error: {failure}", file=sys.stderr)
        return 1
    except _BadInput as bad_input:
        print(f"error: {bad_input}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    horizon = _horizon(args) if hasattr(args, "horizon_min") else None

    if args.command == "fig2a":
        print(figures.fig2a(seed=args.seed, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "fig2b":
        print(figures.fig2b(seeds=args.seeds, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "fig2c":
        print(figures.fig2c(seeds=args.seeds, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "headline":
        print(figures.headline_numbers(seeds=args.seeds,
                                       cp_fidelity=args.fidelity).text)
    elif args.command == "cp-trace":
        print(cp_trace.trace_cp(rounds=args.rounds, seed=args.seed).text)
    elif args.command == "ablation":
        runner = {
            "cp-period": lambda: ablations.cp_period_sweep(
                seeds=args.seeds, horizon=horizon),
            "loss": lambda: ablations.loss_sweep(
                seeds=args.seeds, horizon=horizon),
            "scale": lambda: ablations.scale_sweep(
                seeds=args.seeds, horizon=horizon),
            "slots": lambda: ablations.slots_sweep(
                seeds=args.seeds, horizon=horizon),
            "variants": lambda: ablations.scheduler_variants(
                seeds=args.seeds, horizon=horizon),
            "st-vs-at": lambda: ablations.st_vs_at(seed=args.seed),
            "spof": lambda: ablations.spof_comparison(
                seed=args.seed, horizon=horizon),
        }[args.which]
        print(runner().text)
    elif args.command == "run":
        scenario = paper_scenario("high").with_rate(args.rate)
        if args.devices != scenario.n_devices:
            from dataclasses import replace
            scenario = replace(scenario, n_devices=args.devices)
        _check_jobs(args.jobs)
        if args.jobs > 1:
            _run_seed_fanout(args, scenario, horizon)
            return 0
        result = run_experiment(
            HanConfig(scenario=scenario, policy=args.policy,
                      cp_fidelity=args.fidelity, seed=args.seed),
            until=horizon)
        stats = result.stats(end=horizon)
        print(format_table(
            ["metric", "value"],
            [["policy", args.policy],
             ["peak load", f"{stats.peak_kw:.2f} kW"],
             ["average load", f"{stats.mean_kw:.2f} kW"],
             ["load std-dev", f"{stats.std_kw:.2f} kW"],
             ["largest load step", f"{stats.max_step_kw:.2f} kW"],
             ["energy", f"{stats.energy_kwh:.2f} kWh"],
             ["requests", len(result.requests)],
             ["completed", result.completed_requests()]],
            title=f"run: {scenario.name}, seed {args.seed}"))
        if args.export_json:
            from repro.analysis.export import run_result_to_json
            path = run_result_to_json(result, args.export_json)
            print(f"result written to {path}")
    elif args.command == "neighborhood":
        _check_jobs(args.jobs)
        fleet = _checked(build_fleet, args.homes, mix=args.mix,
                         seed=args.seed, policy=args.policy,
                         cp_fidelity=args.fidelity, horizon=horizon)
        coordination = "feeder" if args.coordinate else "independent"
        result = run_neighborhood(fleet, jobs=args.jobs,
                                  coordination=coordination)
        print(result.render())
        if args.export_json:
            from repro.analysis.export import neighborhood_to_json
            path = neighborhood_to_json(result, args.export_json)
            print(f"result written to {path}")
        if args.export_csv:
            from repro.analysis.export import neighborhood_to_csv
            path = neighborhood_to_csv(result, args.export_csv)
            print(f"series written to {path}")
    elif args.command == "regen":
        _check_jobs(args.jobs)
        for exp_id, artefact in _checked(run_registry, args.ids or None,
                                         jobs=args.jobs):
            text = getattr(artefact, "text", None)
            print(f"== {exp_id} ==")
            print(text if text is not None else repr(artefact))
    elif args.command == "list":
        from repro.experiments.registry import all_experiments
        rows = [[e.exp_id, e.paper_artefact, e.description]
                for e in all_experiments()]
        print(format_table(["id", "paper artefact", "description"], rows,
                           title="Reproducible experiments "
                                 "(see DESIGN.md / EXPERIMENTS.md)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
