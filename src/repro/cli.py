"""Command-line interface: one front door over the spec API.

Every command compiles down to a declarative
:class:`~repro.api.spec.ExperimentSpec` executed through
:func:`repro.api.run.run`; the classic flag forms survive as sugar that
constructs a spec.

Usage::

    python -m repro fig2a [--seed 1] [--fidelity round]
    python -m repro fig2b [--seeds 1 2 3]
    python -m repro fig2c
    python -m repro headline
    python -m repro cp-trace [--rounds 25]
    python -m repro ablation {cp-period,loss,scale,slots,variants,
                              st-vs-at,spof}
    python -m repro run --policy coordinated --rate 30 --seed 1
    python -m repro run --jobs 4 --seeds 1 2 3 4   # parallel seed fan-out
    python -m repro run --spec experiment.json --jobs 4   # declarative
    python -m repro spec show HEADLINE             # registry entry as JSON
    python -m repro spec validate experiment.json
    python -m repro spec dump --all --out specs/
    python -m repro neighborhood --homes 20 --jobs 4 --mix suburb
    python -m repro neighborhood --homes 20 --coordinate   # feeder CP
    python -m repro neighborhood --coordinate online --forecaster ewma
    python -m repro grid --feeders 4 --homes 25 --jobs 4   # multi-feeder
    python -m repro grid --feeders 4 --coordinate substation
    python -m repro chaos run --fault-seed 7 --fault-rate 0.1
    python -m repro chaos run --fault-rate telemetry_drop=0.3
    python -m repro regen FIG2A HEADLINE --jobs 2
    python -m repro regen --no-cache               # force re-simulation
    python -m repro cache ls                       # inspect result cache
    python -m repro cache clear
    python -m repro worker --store /srv/repro      # drain the job queue
    python -m repro serve --port 8787              # HTTP front door
    python -m repro job submit experiment.json     # async submission
    python -m repro job status <job-id>
    python -m repro job result <job-id> --timeout 600
    python -m repro job ls
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.report import format_table
from repro.api import run as run_spec
from repro.api.compile import compile_fleet, compile_grid
from repro.api.spec import (
    ControlSpec,
    ExperimentSpec,
    FeederPlan,
    FleetPlan,
    ForecastPlan,
    GridPlan,
    ScenarioSpec,
    spec_from_config,
    spec_from_scenario,
)
from repro.api.validate import SpecError, validate
from repro.core.system import FIDELITIES, POLICIES
from repro.experiments import ablations, cp_trace, figures
from repro.experiments.runner import WorkerFailure, run_registry
from repro.neighborhood import (
    GRID_COORDINATION_MODES,
    build_fleet,
    build_grid,
    execute_fleet,
    execute_grid,
)
from repro.sim.units import MINUTE
from repro.workloads.scenarios import FLEET_MIXES, paper_scenario


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--fidelity", choices=FIDELITIES, default="round")
    parser.add_argument("--horizon-min", type=float, default=None,
                        help="override the 350 min horizon")


def _horizon(args: argparse.Namespace) -> Optional[float]:
    return args.horizon_min * MINUTE if args.horizon_min else None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collaborative HAN load management — ICDCS'22 "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    for figure in ("fig2a", "fig2b", "fig2c", "headline"):
        p = sub.add_parser(figure, help=f"regenerate {figure}")
        _add_common(p)

    p = sub.add_parser("cp-trace", help="FIG1: slot-level CP measurements")
    p.add_argument("--rounds", type=int, default=25)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("ablation", help="run one ablation study")
    p.add_argument("which", choices=["cp-period", "loss", "scale", "slots",
                                     "variants", "st-vs-at", "spof"])
    _add_common(p)

    p = sub.add_parser("run", help="one custom experiment run")
    _add_common(p)
    p.add_argument("--policy", choices=POLICIES, default="coordinated")
    p.add_argument("--rate", type=float, default=30.0,
                   help="requests/hour")
    p.add_argument("--devices", type=int, default=26)
    p.add_argument("--jobs", type=int, default=1,
                   help="fan --seeds out over N worker processes")
    p.add_argument("--spec", metavar="PATH", default=None,
                   help="run a serialized ExperimentSpec (JSON); other "
                        "experiment flags are ignored")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache (--spec runs "
                        "are cached by spec hash by default)")
    p.add_argument("--export-json", metavar="PATH", default=None,
                   help="write the full run result as JSON")

    p = sub.add_parser("spec",
                       help="show, validate or dump experiment specs")
    spec_sub = p.add_subparsers(dest="spec_command", required=True)
    p_show = spec_sub.add_parser(
        "show", help="print a registry experiment as spec JSON")
    p_show.add_argument("ids", nargs="+", help="experiment ids")
    p_validate = spec_sub.add_parser(
        "validate", help="validate a spec JSON file")
    p_validate.add_argument("path", help="spec JSON file")
    p_dump = spec_sub.add_parser(
        "dump", help="write registry specs to <out>/<id>.json")
    p_dump.add_argument("ids", nargs="*",
                        help="experiment ids (or use --all)")
    p_dump.add_argument("--all", action="store_true", dest="dump_all",
                        help="dump every registry experiment")
    p_dump.add_argument("--out", metavar="DIR", default="specs",
                        help="output directory (default: specs/)")

    p = sub.add_parser("neighborhood",
                       help="N heterogeneous homes behind one feeder")
    p.add_argument("--homes", type=int, default=20)
    p.add_argument("--mix", choices=sorted(FLEET_MIXES), default="suburb")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the home fan-out")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--coordinate", nargs="?", const="feeder", default=None,
                   choices=("feeder", "online"), metavar="MODE",
                   help="run the feeder-level collaboration plane "
                        "(cross-home phase staggering) and report the "
                        "diversity-factor uplift; bare --coordinate means "
                        "'feeder' (post-hoc full-horizon negotiation), "
                        "'online' re-negotiates each CP epoch against "
                        "forecast envelopes")
    p.add_argument("--forecaster", choices=("oracle", "persistence",
                                            "seasonal", "ewma"),
                   default="oracle",
                   help="predictor for --coordinate online "
                        "(default: oracle — the zero-error ceiling)")
    p.add_argument("--forecast-noise", type=float, default=0.0,
                   help="multiplicative per-bin noise amplitude on the "
                        "forecaster (0 = exact predictions)")
    p.add_argument("--forecast-seed", type=int, default=1,
                   help="root seed of the forecast noise streams")
    p.add_argument("--shard-size", type=int, default=None,
                   help="homes per execution shard (default: auto — "
                        "large fleets shard, small ones fan out "
                        "per home; 0 forces the per-home path; results "
                        "are bit-identical either way)")
    p.add_argument("--policy", choices=POLICIES, default="coordinated")
    p.add_argument("--fidelity", choices=FIDELITIES, default="round")
    p.add_argument("--horizon-min", type=float, default=None,
                   help="override the 350 min horizon")
    p.add_argument("--export-json", metavar="PATH", default=None,
                   help="write the neighborhood result as JSON")
    p.add_argument("--export-csv", metavar="PATH", default=None,
                   help="write feeder + per-home load columns as CSV")

    p = sub.add_parser("grid",
                       help="fleet of fleets: F feeders under one "
                            "substation")
    p.add_argument("--feeders", type=int, default=3,
                   help="number of feeders under the substation")
    p.add_argument("--homes", type=int, default=20,
                   help="homes per feeder")
    p.add_argument("--mix", choices=sorted(FLEET_MIXES), default="suburb")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the shard fan-out")
    p.add_argument("--seed", type=int, default=1,
                   help="grid root seed (feeder and home seeds derive "
                        "from it)")
    p.add_argument("--coordinate", choices=GRID_COORDINATION_MODES,
                   default="independent", metavar="TIER",
                   help="coordination tier: independent (none), feeder "
                        "(per-feeder CP rounds), or substation (feeder "
                        "rounds plus feeder-envelope negotiation at the "
                        "substation)")
    p.add_argument("--shard-size", type=int, default=None,
                   help="homes per execution shard (default: auto; "
                        "results are bit-identical either way)")
    p.add_argument("--policy", choices=POLICIES, default="coordinated")
    p.add_argument("--fidelity", choices=FIDELITIES, default="round")
    p.add_argument("--horizon-min", type=float, default=None,
                   help="override the 350 min horizon")
    p.add_argument("--export-json", metavar="PATH", default=None,
                   help="write the grid result as JSON")
    p.add_argument("--export-csv", metavar="PATH", default=None,
                   help="write substation + per-feeder load columns as "
                        "CSV")

    p = sub.add_parser("chaos",
                       help="fault-injection runs (seeded chaos testing)")
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)
    p_chaos = chaos_sub.add_parser(
        "run", help="run an online neighborhood under an injected fault "
                    "schedule and report the degradation + invariants")
    p_chaos.add_argument("--homes", type=int, default=12)
    p_chaos.add_argument("--mix", choices=sorted(FLEET_MIXES),
                         default="suburb")
    p_chaos.add_argument("--jobs", type=int, default=1)
    p_chaos.add_argument("--seed", type=int, default=1,
                         help="fleet root seed (workloads)")
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="root seed of the fault schedule; the same "
                              "seed reproduces the exact same schedule")
    p_chaos.add_argument("--fault-rate", action="append", default=None,
                         metavar="RATE | SITE=RATE",
                         help="either a bare probability applied to every "
                              "telemetry site, or site_field=rate (e.g. "
                              "telemetry_drop=0.3, frame_loss=0.05); "
                              "repeatable")
    p_chaos.add_argument("--max-delay-epochs", type=int, default=2,
                         help="worst late delivery, in epochs (default 2)")
    p_chaos.add_argument("--forecaster",
                         choices=("oracle", "persistence", "seasonal",
                                  "ewma"),
                         default="persistence")
    p_chaos.add_argument("--shard-size", type=int, default=None)
    p_chaos.add_argument("--horizon-min", type=float, default=None,
                         help="override the 350 min horizon")

    p = sub.add_parser("regen",
                       help="regenerate registry artefacts (parallelisable)")
    p.add_argument("ids", nargs="*",
                   help="experiment ids (default: all; see `repro list`)")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate even when a cached result exists "
                        "for the same spec hash and code version")

    p = sub.add_parser("cache",
                       help="inspect or clear the on-disk result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("ls", help="list cached results (LRU order)")
    cache_sub.add_parser("stats",
                         help="persisted hit/miss/byte counters")
    cache_sub.add_parser("clear", help="delete every cached result")

    p = sub.add_parser("worker",
                       help="run a service worker daemon (drain the "
                            "durable job queue)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="service store directory (default: "
                        "$REPRO_SERVICE_STORE or ~/.cache/repro-service)")
    p.add_argument("--jobs", type=int, default=1,
                   help="pool workers each leased job fans out over")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after finishing N jobs (default: run "
                        "forever)")
    p.add_argument("--idle-exit", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after the queue stays empty this long "
                        "(default: wait forever)")
    p.add_argument("--lease-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="lease expiry between heartbeats (default: 30)")
    p.add_argument("--shard-size", type=int, default=None,
                   help="homes per execution shard for neighborhood "
                        "jobs (default: auto)")
    p.add_argument("--worker-id", default=None,
                   help="worker identity in leases (default: host.pid)")

    p = sub.add_parser("serve",
                       help="HTTP front door over the service store")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="service store directory (default: "
                        "$REPRO_SERVICE_STORE or ~/.cache/repro-service)")
    p.add_argument("--host", default=None,
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port (default: 8787)")

    p = sub.add_parser("job",
                       help="submit to / inspect the service job queue")
    job_sub = p.add_subparsers(dest="job_command", required=True)
    p_submit = job_sub.add_parser(
        "submit", help="enqueue a spec JSON file; prints the job id")
    p_submit.add_argument("path", help="spec JSON file")
    p_submit.add_argument("--store", metavar="DIR", default=None)
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the result is ready and "
                               "print it")
    p_submit.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="give up --wait after this long")
    p_status = job_sub.add_parser("status", help="one job's state")
    p_status.add_argument("job_id")
    p_status.add_argument("--store", metavar="DIR", default=None)
    p_result = job_sub.add_parser(
        "result", help="print a finished job's rendered result")
    p_result.add_argument("job_id")
    p_result.add_argument("--store", metavar="DIR", default=None)
    p_result.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="block up to this long (default: only "
                               "return what is already stored)")
    p_ls = job_sub.add_parser("ls", help="list every job in the queue")
    p_ls.add_argument("--store", metavar="DIR", default=None)

    sub.add_parser("list", help="list every reproducible experiment")
    return parser


class _BadInput(Exception):
    """Invalid CLI input (clean `error:` + exit 2, never a traceback)."""


def _checked(factory, *factory_args, **factory_kwargs):
    """Run an input-validating call, converting its rejections to exit 2."""
    try:
        return factory(*factory_args, **factory_kwargs)
    except (KeyError, ValueError) as bad:
        raise _BadInput(bad.args[0] if bad.args else str(bad)) from bad


def _check_jobs(jobs: int) -> None:
    if jobs < 1:
        raise _BadInput(f"jobs must be >= 1, got {jobs}")


def _load_spec(path: str) -> ExperimentSpec:
    """Read + validate a spec JSON file; every failure is a _BadInput."""
    spec_path = Path(path)
    try:
        text = spec_path.read_text()
    except OSError as bad:
        raise _BadInput(f"cannot read spec file {path!r}: {bad}") from bad
    try:
        return ExperimentSpec.from_json(text)
    except SpecError as bad:
        raise _BadInput(f"invalid spec {path!r}: {bad}") from bad


def _registry_spec(exp_id: str) -> ExperimentSpec:
    """The declarative spec of a registry experiment (exit 2 if none)."""
    from repro.experiments.registry import get
    experiment = _checked(get, exp_id)
    if experiment.spec is None:
        raise _BadInput(f"experiment {exp_id!r} has no spec")
    return experiment.spec


def _export_run_results(spec: ExperimentSpec, results, base: str) -> None:
    """Write per-run JSON files, one per run of the spec.

    A lone run gets ``base`` itself (the whole spec regenerates exactly
    that file).  A single-kind fan-out keeps the ``.seedN`` suffixes;
    a sweep grid labels every (rate, policy, seed) cell, each stamped
    with the single-run spec that regenerates that cell alone.
    """
    from repro.analysis.export import run_result_to_json
    if len(results) == 1:
        path = run_result_to_json(results[0], base, spec=spec)
        print(f"result written to {path}")
        return
    base_path = Path(base)
    suffix = base_path.suffix or ".json"
    if spec.kind == "single":
        for result, seed in zip(results, spec.seeds):
            path = base_path.with_name(
                f"{base_path.stem}.seed{seed}{suffix}")
            run_result_to_json(result, path,
                               spec=replace(spec, seeds=(seed,)))
            print(f"result written to {path}")
        return
    for result in results:
        config = result.config
        label = (f"{config.scenario.name}.{config.policy}"
                 f".seed{config.seed}").replace("/", "-")
        path = base_path.with_name(f"{base_path.stem}.{label}{suffix}")
        run_result_to_json(result, path,
                           spec=spec_from_config(config,
                                                 until=spec.until_s))
        print(f"result written to {path}")


def _run_spec_file(args: argparse.Namespace) -> int:
    """``repro run --spec path.json``: the fully declarative path."""
    _check_jobs(args.jobs)
    spec = _load_spec(args.spec)
    result = run_spec(spec, jobs=args.jobs, cache=not args.no_cache)
    print(result.render())
    if args.export_json:
        if result.runs:
            _export_run_results(spec, result.runs, args.export_json)
        elif result.neighborhood is not None:
            from repro.analysis.export import neighborhood_to_json
            path = neighborhood_to_json(result.neighborhood,
                                        args.export_json, spec=spec)
            print(f"result written to {path}")
        else:
            print("note: --export-json ignored for artefact specs")
    return 0


def _run_seed_fanout(args: argparse.Namespace, spec: ExperimentSpec) -> None:
    """``repro run --jobs N``: one run per --seeds entry, in parallel."""
    import numpy as np
    if args.seed not in args.seeds:
        print(f"note: --seed {args.seed} ignored in fan-out mode; "
              f"fanning out --seeds {args.seeds}")
    result = run_spec(spec, jobs=args.jobs)
    all_stats = result.stats()
    rows = [[seed, st.peak_kw, st.mean_kw, st.std_kw, st.energy_kwh]
            for seed, st in zip(spec.seeds, all_stats)]
    for label, pick in (("mean", np.mean), ("std", np.std)):
        rows.append([label,
                     float(pick([s.peak_kw for s in all_stats])),
                     float(pick([s.mean_kw for s in all_stats])),
                     float(pick([s.std_kw for s in all_stats])),
                     float(pick([s.energy_kwh for s in all_stats]))])
    print(format_table(
        ["seed", "peak kW", "mean kW", "std kW", "energy kWh"], rows,
        title=f"run: {result.runs[0].config.scenario.name}, policy "
              f"{args.policy}, {len(spec.seeds)} seeds x {args.jobs} jobs"))
    if args.export_json:
        _export_run_results(spec, result.runs, args.export_json)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except WorkerFailure as failure:
        print(f"error: {failure}", file=sys.stderr)
        return 1
    except (_BadInput, SpecError) as bad_input:
        # SpecError surfaces here when flag-built specs fail run()'s
        # re-validation (e.g. --devices 0) — same clean contract as
        # --spec files: the message with its field path, never a
        # traceback.
        print(f"error: {bad_input}", file=sys.stderr)
        return 2
    finally:
        # One command, one process: don't leave warm workers behind.
        from repro.experiments.pool import shutdown_all
        shutdown_all()


def _dispatch(args: argparse.Namespace) -> int:
    horizon = _horizon(args) if hasattr(args, "horizon_min") else None

    if args.command == "fig2a":
        print(figures.fig2a(seed=args.seed, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "fig2b":
        print(figures.fig2b(seeds=args.seeds, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "fig2c":
        print(figures.fig2c(seeds=args.seeds, cp_fidelity=args.fidelity,
                            horizon=horizon).text)
    elif args.command == "headline":
        print(figures.headline_numbers(seeds=args.seeds,
                                       cp_fidelity=args.fidelity).text)
    elif args.command == "cp-trace":
        print(cp_trace.trace_cp(rounds=args.rounds, seed=args.seed).text)
    elif args.command == "ablation":
        runner = {
            "cp-period": lambda: ablations.cp_period_sweep(
                seeds=args.seeds, horizon=horizon),
            "loss": lambda: ablations.loss_sweep(
                seeds=args.seeds, horizon=horizon),
            "scale": lambda: ablations.scale_sweep(
                seeds=args.seeds, horizon=horizon),
            "slots": lambda: ablations.slots_sweep(
                seeds=args.seeds, horizon=horizon),
            "variants": lambda: ablations.scheduler_variants(
                seeds=args.seeds, horizon=horizon),
            "st-vs-at": lambda: ablations.st_vs_at(seed=args.seed),
            "spof": lambda: ablations.spof_comparison(
                seed=args.seed, horizon=horizon),
        }[args.which]
        print(runner().text)
    elif args.command == "run":
        if args.spec:
            return _run_spec_file(args)
        scenario = paper_scenario("high").with_rate(args.rate)
        if args.devices != scenario.n_devices:
            scenario = replace(scenario, n_devices=args.devices)
        _check_jobs(args.jobs)
        spec = ExperimentSpec(
            name=f"cli-run-{scenario.name}",
            scenario=spec_from_scenario(scenario),
            control=ControlSpec(policy=args.policy,
                                cp_fidelity=args.fidelity),
            seeds=tuple(args.seeds) if args.jobs > 1 else (args.seed,),
            until_s=horizon)
        if args.jobs > 1:
            _run_seed_fanout(args, spec)
            return 0
        result = run_spec(spec).run_result()
        stats = result.stats(end=horizon)
        print(format_table(
            ["metric", "value"],
            [["policy", args.policy],
             ["peak load", f"{stats.peak_kw:.2f} kW"],
             ["average load", f"{stats.mean_kw:.2f} kW"],
             ["load std-dev", f"{stats.std_kw:.2f} kW"],
             ["largest load step", f"{stats.max_step_kw:.2f} kW"],
             ["energy", f"{stats.energy_kwh:.2f} kWh"],
             ["requests", len(result.requests)],
             ["completed", result.completed_requests()]],
            title=f"run: {scenario.name}, seed {args.seed}"))
        if args.export_json:
            from repro.analysis.export import run_result_to_json
            path = run_result_to_json(result, args.export_json, spec=spec)
            print(f"result written to {path}")
    elif args.command == "spec":
        return _dispatch_spec(args)
    elif args.command == "neighborhood":
        _check_jobs(args.jobs)
        coordination = args.coordinate or "independent"
        forecast = ForecastPlan(forecaster=args.forecaster,
                                noise=args.forecast_noise,
                                noise_seed=args.forecast_seed) \
            if coordination == "online" else None
        spec = ExperimentSpec(
            name=f"cli-neighborhood-{args.mix}-{args.homes}homes",
            kind="neighborhood",
            scenario=ScenarioSpec(horizon_s=horizon),
            control=ControlSpec(policy=args.policy,
                                cp_fidelity=args.fidelity),
            seeds=(args.seed,),
            fleet=FleetPlan(homes=args.homes, mix=args.mix,
                            coordination=coordination),
            forecast=forecast)
        # Same contract as `repro run --spec`: the provenance spec the
        # exports embed must itself validate, or the artefact's
        # "regenerate me" block would be a lie (SpecError → exit 2).
        validate(spec)
        # One lowering path: the executed fleet and the provenance spec
        # both come from compile_fleet, so they cannot diverge.  The
        # builder stays this module's (patchable) attribute.
        fleet = _checked(compile_fleet, spec, builder=build_fleet)
        result = _checked(execute_fleet, fleet, jobs=args.jobs,
                          coordination=coordination, spec=spec,
                          shard_size=args.shard_size, forecast=forecast)
        print(result.render())
        if args.export_json:
            from repro.analysis.export import neighborhood_to_json
            path = neighborhood_to_json(result, args.export_json)
            print(f"result written to {path}")
        if args.export_csv:
            from repro.analysis.export import neighborhood_to_csv
            path = neighborhood_to_csv(result, args.export_csv)
            print(f"series written to {path}")
    elif args.command == "grid":
        _check_jobs(args.jobs)
        if args.feeders < 1:
            raise _BadInput(f"feeders must be >= 1, got {args.feeders}")
        spec = ExperimentSpec(
            name=f"cli-grid-{args.feeders}x{args.homes}",
            kind="grid",
            scenario=ScenarioSpec(horizon_s=horizon),
            control=ControlSpec(policy=args.policy,
                                cp_fidelity=args.fidelity),
            seeds=(args.seed,),
            grid=GridPlan(
                feeders=tuple(FeederPlan(homes=args.homes, mix=args.mix)
                              for _ in range(args.feeders)),
                coordination=args.coordinate))
        validate(spec)
        # Same one-lowering-path contract as `repro neighborhood`: the
        # executed grid and the provenance spec both come from
        # compile_grid, so they cannot diverge.
        grid = _checked(compile_grid, spec, builder=build_grid)
        result = _checked(execute_grid, grid, jobs=args.jobs,
                          coordination=args.coordinate, spec=spec,
                          shard_size=args.shard_size)
        print(result.render())
        if args.export_json:
            from repro.analysis.export import grid_to_json
            path = grid_to_json(result, args.export_json)
            print(f"result written to {path}")
        if args.export_csv:
            from repro.analysis.export import grid_to_csv
            path = grid_to_csv(result, args.export_csv)
            print(f"series written to {path}")
    elif args.command == "chaos":
        return _dispatch_chaos(args, horizon)
    elif args.command == "regen":
        _check_jobs(args.jobs)
        from repro.api.cache import ResultCache
        cache = None if args.no_cache else ResultCache()
        for exp_id, artefact in _checked(run_registry, args.ids or None,
                                         jobs=args.jobs, cache=cache):
            text = getattr(artefact, "text", None)
            print(f"== {exp_id} ==")
            print(text if text is not None else repr(artefact))
    elif args.command == "cache":
        return _dispatch_cache(args)
    elif args.command == "worker":
        return _dispatch_worker(args)
    elif args.command == "serve":
        from repro.service.server import serve
        kwargs = {}
        if args.host is not None:
            kwargs["host"] = args.host
        if args.port is not None:
            kwargs["port"] = args.port
        _checked(serve, args.store, **kwargs)
    elif args.command == "job":
        return _dispatch_job(args)
    elif args.command == "list":
        from repro.experiments.registry import all_experiments
        rows = [[e.exp_id, e.paper_artefact, e.description]
                for e in all_experiments()]
        print(format_table(["id", "paper artefact", "description"], rows,
                           title="Reproducible experiments "
                                 "(see DESIGN.md / EXPERIMENTS.md)"))
    return 0


def _parse_fault_rates(entries: Optional[Sequence[str]]) -> dict:
    """``--fault-rate`` values → FaultPlan kwargs (exit 2 on bad input).

    A bare number storms every telemetry site at that probability; a
    ``field=rate`` pair sets one site's field by name (repeatable).
    """
    from repro.faults import RATE_FIELDS
    rates: dict = {}
    for entry in entries or ["0.1"]:
        if "=" in entry:
            name, _, raw = entry.partition("=")
            name = name.strip()
            if name not in RATE_FIELDS:
                known = ", ".join(RATE_FIELDS)
                raise _BadInput(f"unknown fault site field {name!r}; "
                                f"one of: {known}")
            fields = (name,)
        else:
            raw = entry
            fields = ("telemetry_drop", "telemetry_delay",
                      "telemetry_dup")
        try:
            rate = float(raw)
        except ValueError:
            raise _BadInput(
                f"fault rate must be a number, got {raw!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise _BadInput(f"fault rate must be in [0, 1], got {rate}")
        for name in fields:
            rates[name] = rate
    return rates


def _dispatch_chaos(args: argparse.Namespace,
                    horizon: Optional[float]) -> int:
    """``repro chaos run``: an online fleet under an injected schedule."""
    from repro.faults import FaultPlan, last_injector
    _check_jobs(args.jobs)
    plan = _checked(FaultPlan, seed=args.fault_seed,
                    max_delay_epochs=args.max_delay_epochs,
                    **_parse_fault_rates(args.fault_rate))
    spec = ExperimentSpec(
        name=f"cli-chaos-{args.mix}-{args.homes}homes",
        kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=horizon),
        seeds=(args.seed,),
        fleet=FleetPlan(homes=args.homes, mix=args.mix,
                        coordination="online"),
        forecast=ForecastPlan(forecaster=args.forecaster),
        faults=plan)
    validate(spec)
    result = _checked(run_spec, spec, jobs=args.jobs,
                      shard_size=args.shard_size)
    neighborhood = result.neighborhood
    print(neighborhood.render())
    coordination = neighborhood.coordination
    injector = last_injector()
    schedule = injector.schedule() if injector is not None else ()
    rows = [["fault seed", args.fault_seed],
            ["faults fired", len(schedule)],
            ["schedule digest",
             injector.schedule_digest()[:12] if injector else "-"],
            ["telemetry dropped", coordination.telemetry_dropped],
            ["telemetry delayed", coordination.telemetry_delayed],
            ["telemetry duplicated", coordination.telemetry_duplicated],
            ["stale predictions", coordination.stale_predictions],
            ["epochs applied",
             f"{coordination.epochs_applied}/{coordination.n_epochs}"]]
    print(format_table(["fault metric", "value"], rows,
                       title="chaos: injected schedule + degradation"))
    raised = [outcome for outcome in coordination.epochs
              if outcome.coordinated_peak_w
              > outcome.independent_peak_w + 1e-9]
    if raised:
        print(f"error: {len(raised)} epoch(s) raised the realized peak "
              f"under faults", file=sys.stderr)
        return 1
    print("invariants: never-raise-peak OK, energy conserved by "
          "rotation (guard-enforced)")
    return 0


def _dispatch_cache(args: argparse.Namespace) -> int:
    """The ``repro cache ls/clear`` family."""
    from repro.api.cache import ResultCache
    cache = ResultCache()
    if args.cache_command == "ls":
        entries = cache.entries()
        if not entries:
            print(f"cache empty ({cache.root})")
            return 0
        rows = [[e.name, e.kind, e.spec_hash[:12], e.code_version,
                 f"{e.size_bytes / 1e3:.1f} kB"] for e in entries]
        total = sum(e.size_bytes for e in entries)
        print(format_table(
            ["name", "kind", "spec", "code", "size"], rows,
            title=f"Result cache at {cache.root} "
                  f"({len(entries)} entries, {total / 1e6:.1f} MB of "
                  f"{cache.max_bytes / 1e6:.0f} MB)"))
    elif args.cache_command == "stats":
        stats = cache.stats()
        print(format_table(
            ["counter", "value"],
            [["lookups", stats.lookups],
             ["hits", stats.hits],
             ["misses", stats.misses],
             ["hit ratio", f"{stats.hit_ratio:.2f}"],
             ["stores", stats.stores],
             ["bytes read", f"{stats.bytes_read / 1e6:.1f} MB"],
             ["bytes written", f"{stats.bytes_written / 1e6:.1f} MB"]],
            title=f"Result cache usage ({cache.root}; cleared on "
                  f"`repro cache clear`)"))
    elif args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    return 0


def _dispatch_worker(args: argparse.Namespace) -> int:
    """``repro worker``: one daemon draining the service job queue."""
    from repro.service.worker import WorkerDaemon
    _check_jobs(args.jobs)
    daemon = _checked(WorkerDaemon, args.store,
                      worker_id=args.worker_id, jobs=args.jobs,
                      shard_size=args.shard_size,
                      lease_ttl=args.lease_ttl)
    print(f"worker {daemon.worker_id} draining {daemon.store.root}",
          flush=True)
    finished = daemon.run_forever(max_jobs=args.max_jobs,
                                  idle_exit_s=args.idle_exit)
    print(f"worker {daemon.worker_id} exiting after {finished} job(s)")
    return 0


def _dispatch_job(args: argparse.Namespace) -> int:
    """The ``repro job submit/status/result/ls`` family."""
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(args.store)
    try:
        if args.job_command == "submit":
            spec = _load_spec(args.path)
            job_id = client.submit(spec)
            status = client.status(job_id)
            source = "artifact store" if status.cached else "queue"
            print(f"job {job_id} ({status.state}, via {source})")
            if args.wait:
                print(client.result(job_id,
                                    timeout=args.timeout).render())
        elif args.job_command == "status":
            status = client.status(args.job_id)
            print(format_table(
                ["field", "value"],
                [["state", status.state],
                 ["attempts", status.attempts],
                 ["worker", status.worker or "-"],
                 ["cached", "yes" if status.cached else "no"],
                 ["error", status.error or "-"]],
                title=f"job {status.job_id[:12]}"))
        elif args.job_command == "result":
            timeout = args.timeout if args.timeout is not None else 0
            print(client.result(args.job_id, timeout=timeout).render())
        elif args.job_command == "ls":
            records = client.queue.jobs()
            if not records:
                print(f"queue empty ({client.store.root})")
                return 0
            rows = [[record.job_id[:12], record.name, record.kind,
                     record.state, record.attempts]
                    for record in records]
            print(format_table(
                ["job", "name", "kind", "state", "attempts"], rows,
                title=f"Service queue at {client.store.root} "
                      f"({len(records)} jobs)"))
    except ServiceError as failure:
        print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


def _dispatch_spec(args: argparse.Namespace) -> int:
    """The ``repro spec show/validate/dump`` family."""
    if args.spec_command == "show":
        for exp_id in args.ids:
            print(_registry_spec(exp_id).to_json())
    elif args.spec_command == "validate":
        spec = _load_spec(args.path)
        from repro.api import spec_hash
        print(f"ok: {spec.name} (kind {spec.kind}, "
              f"spec {spec_hash(spec)[:12]})")
    elif args.spec_command == "dump":
        from repro.experiments.registry import all_experiments
        if args.dump_all and args.ids:
            raise _BadInput("spec dump takes experiment ids or --all, "
                            "not both")
        if args.dump_all:
            ids = [e.exp_id for e in all_experiments()]
        elif args.ids:
            ids = list(args.ids)
        else:
            raise _BadInput("spec dump needs experiment ids or --all")
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for exp_id in ids:
            spec = _registry_spec(exp_id)
            path = out_dir / f"{exp_id}.json"
            path.write_text(spec.to_json() + "\n")
            print(f"spec written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
