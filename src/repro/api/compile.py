"""Compiling declarative specs down to the concrete run objects.

The spec layer never executes anything; this module is the bridge from
:class:`~repro.api.spec.ExperimentSpec` to the objects the existing
engine runs:

* :func:`compile_scenario` — ``ScenarioSpec`` → ``Scenario``;
* :func:`compile_config` — a spec + seed → ``HanConfig``;
* :func:`compile_run_specs` — a single/sweep spec → the flat, ordered
  :class:`~repro.experiments.runner.RunSpec` batch the
  :class:`~repro.experiments.runner.ParallelRunner` consumes directly;
* :func:`compile_fleet` — a neighborhood spec →
  :class:`~repro.neighborhood.fleet.FleetSpec`;
* :func:`compile_grid` — a grid spec →
  :class:`~repro.neighborhood.grid.GridSpec` (one built fleet per
  feeder, seeds derived per feeder);
* :data:`ARTEFACTS` / :func:`resolve_artefact` — registry artefact
  kinds → their generator callables (resolved lazily so the spec layer
  stays import-light and cycle-free).

Grid order is load-bearing: sweep cells flatten as (rate, policy, seed)
with the exact run names the legacy ``sweep_rates``/``compare_policies``
used, so results stay bit-identical through the deprecation shims.
"""

from __future__ import annotations

import importlib
from dataclasses import replace
from typing import Callable, Optional

from repro.api.spec import ExperimentSpec, ScenarioSpec
from repro.core.system import HanConfig
from repro.workloads.scenarios import SCENARIO_PRESETS, Scenario

#: Registry artefact kind → (module, callable) generating it.  Resolved
#: lazily by :func:`resolve_artefact`; every callable returns an object
#: with a rendered ``text`` (FigureData / CpTraceResult).
ARTEFACTS: dict[str, tuple[str, str]] = {
    "fig2a": ("repro.experiments.figures", "fig2a"),
    "fig2b": ("repro.experiments.figures", "fig2b"),
    "fig2c": ("repro.experiments.figures", "fig2c"),
    "headline": ("repro.experiments.figures", "headline_numbers"),
    "cp-trace": ("repro.experiments.cp_trace", "trace_cp"),
    "abl-cp-period": ("repro.experiments.ablations", "cp_period_sweep"),
    "abl-loss": ("repro.experiments.ablations", "loss_sweep"),
    "abl-scale": ("repro.experiments.ablations", "scale_sweep"),
    "abl-slots": ("repro.experiments.ablations", "slots_sweep"),
    "abl-variants": ("repro.experiments.ablations", "scheduler_variants"),
    "nbhd-coord": ("repro.experiments.ablations",
                   "neighborhood_coordination"),
    "abl-st-vs-at": ("repro.experiments.ablations", "st_vs_at"),
    "abl-spof": ("repro.experiments.ablations", "spof_comparison"),
    "grid-10k": ("repro.experiments.ablations", "grid_uplift"),
    "nbhd-online": ("repro.experiments.ablations", "online_uplift"),
}

#: ScenarioSpec field → Scenario field (identical units).
_SCENARIO_FIELD_MAP = {
    "name": "name",
    "n_devices": "n_devices",
    "device_power_w": "device_power_w",
    "min_dcd_s": "min_dcd",
    "max_dcp_s": "max_dcp",
    "rate_per_hour": "arrival_rate_per_hour",
    "horizon_s": "horizon",
    "demand_cycles": "demand_cycles",
    "arrival": "arrival_kind",
    "batch_size": "batch_size",
    "notes": "notes",
}


def resolve_artefact(kind: str) -> Callable[..., object]:
    """Import and return the generator callable behind an artefact kind."""
    try:
        module_name, func_name = ARTEFACTS[kind]
    except KeyError:
        known = ", ".join(sorted(ARTEFACTS))
        raise KeyError(f"unknown artefact kind {kind!r}; one of: {known}")
    return getattr(importlib.import_module(module_name), func_name)


def compile_scenario(spec: ScenarioSpec) -> Scenario:
    """Materialize a ScenarioSpec: preset (or defaults) plus overrides."""
    if spec.preset is not None:
        base = SCENARIO_PRESETS[spec.preset]()
    else:
        base = Scenario(name=spec.name if spec.name is not None
                        else "custom")
    overrides = {}
    for spec_field, scenario_field in _SCENARIO_FIELD_MAP.items():
        value = getattr(spec, spec_field)
        if value is not None:
            overrides[scenario_field] = value
    return replace(base, **overrides) if overrides else base


def compile_config(spec: ExperimentSpec, seed: int,
                   scenario: Optional[Scenario] = None,
                   policy: Optional[str] = None) -> HanConfig:
    """The HanConfig reproducing one cell of ``spec`` exactly.

    ``scenario``/``policy`` override the spec's own (used by the sweep
    compiler, which re-rates the scenario and varies the policy per
    cell).  Exact inverse of :func:`repro.api.spec.spec_from_config`.
    """
    control = spec.control
    return HanConfig(
        scenario=scenario if scenario is not None
        else compile_scenario(spec.scenario),
        policy=policy if policy is not None else control.policy,
        cp_fidelity=control.cp_fidelity,
        cp_period=control.cp_period,
        seed=seed,
        topology_name=control.topology,
        refresh_every=control.refresh_every,
        calibration_rounds=control.calibration_rounds,
        shadowing_sigma_db=control.shadowing_sigma_db,
        path_loss_exponent=control.path_loss_exponent,
        ci_derating=control.ci_derating,
        aggregation=control.aggregation,
        controller_id=control.controller_id)


def compile_run_specs(spec: ExperimentSpec) -> list:
    """Flatten a single/sweep spec into its ordered RunSpec batch.

    Single: one run per seed.  Sweep: the full (rate, policy, seed) grid
    in that nesting order — run names match the legacy grid builders so
    worker-failure messages and result ordering are unchanged.
    """
    from repro.experiments.runner import RunSpec
    if spec.kind == "single":
        scenario = compile_scenario(spec.scenario)
        return [RunSpec(
            name=f"{scenario.name}/{spec.control.policy}/seed{seed}",
            config=compile_config(spec, seed, scenario=scenario),
            until=spec.until_s)
            for seed in spec.seeds]
    if spec.kind != "sweep":
        raise ValueError(
            f"cannot compile kind {spec.kind!r} to run specs")
    base = compile_scenario(spec.scenario)
    sweep = spec.sweep
    run_specs = []
    scenarios = [base.with_rate(rate) for rate in sweep.rates] \
        if sweep.rates else [base]
    for scenario in scenarios:
        for policy in sweep.policies:
            for seed in spec.seeds:
                run_specs.append(RunSpec(
                    name=f"{scenario.name}/{policy}/seed{seed}",
                    config=compile_config(spec, seed, scenario=scenario,
                                          policy=policy),
                    until=spec.until_s))
    return run_specs


def compile_fleet(spec: ExperimentSpec, builder=None):
    """Build the deterministic FleetSpec of a neighborhood spec.

    The fleet seed is ``spec.seeds[0]``; per-home simulation seeds
    derive from it via
    :func:`~repro.neighborhood.fleet.home_seed`.  Of the scenario
    section only ``horizon_s`` applies — homes draw their workloads
    from the mix's archetypes, and the validator rejects any other
    scenario override on a neighborhood spec; policy and CP fidelity
    come from the control section.

    ``builder`` swaps the fleet constructor (default
    :func:`~repro.neighborhood.fleet.build_fleet`) while keeping this
    one spec→arguments lowering; the CLI passes its own reference so
    the compiled fleet and the provenance spec can never diverge.
    """
    if spec.fleet is None:
        raise ValueError(f"spec {spec.name!r} has no fleet section")
    if builder is None:
        from repro.neighborhood.fleet import build_fleet
        builder = build_fleet
    plan = spec.fleet
    return builder(plan.homes, mix=plan.mix, seed=spec.seeds[0],
                   policy=spec.control.policy,
                   cp_fidelity=spec.control.cp_fidelity,
                   horizon=spec.scenario.horizon_s,
                   rate_jitter=plan.rate_jitter,
                   size_jitter=plan.size_jitter)


def compile_grid(spec: ExperimentSpec, builder=None):
    """Build the deterministic GridSpec of a ``grid`` spec.

    The grid root seed is ``spec.seeds[0]``; feeder ``i`` builds with
    :func:`repro.neighborhood.grid.feeder_seed` of it (feeder 0
    inherits the root, so a one-feeder grid compiles the exact fleet
    the ``neighborhood`` kind compiles) and per-home seeds derive one
    level further down.  Scenario/control lowering mirrors
    :func:`compile_fleet`: only ``scenario.horizon_s`` plus the control
    section's policy and CP fidelity apply.

    ``builder`` swaps the grid constructor (default
    :func:`~repro.neighborhood.grid.build_grid`), same contract as
    :func:`compile_fleet`'s hook.
    """
    if spec.grid is None:
        raise ValueError(f"spec {spec.name!r} has no grid section")
    if builder is None:
        from repro.neighborhood.grid import build_grid
        builder = build_grid
    plans = [{"homes": feeder.homes, "mix": feeder.mix,
              "rate_jitter": feeder.rate_jitter,
              "size_jitter": feeder.size_jitter}
             for feeder in spec.grid.feeders]
    return builder(plans, seed=spec.seeds[0],
                   policy=spec.control.policy,
                   cp_fidelity=spec.control.cp_fidelity,
                   horizon=spec.scenario.horizon_s,
                   name=spec.name)


def shard_sub_hash(parent_hash: str, shard) -> str:
    """The stable content address of one shard sub-spec.

    Shard planning is deterministic: given the parent spec (whose hash
    seeds this digest) and a partition, shard ``index`` always holds the
    same homes with the same derived seeds — so ``(parent, index,
    n_homes, first home, horizon)`` pins the sub-spec's content without
    serializing the sub-fleet.  Workers key per-shard checkpoints on
    this (:mod:`repro.service.worker`): two attempts at the same shard
    of the same spec dedup onto one stored outcome, while any different
    partition (another ``shard_size``) gets disjoint addresses.
    """
    import hashlib
    first = shard.fleet.homes[0].scenario.name if shard.fleet.homes \
        else ""
    token = (f"{parent_hash}:shard{shard.index}:{shard.fleet.n_homes}"
             f":{first}:{shard.horizon}")
    return hashlib.sha256(token.encode()).hexdigest()


def shard_sub_hashes(spec: ExperimentSpec, shards) -> dict[int, str]:
    """Sub-hashes of a whole shard plan, keyed by shard index."""
    from repro.api.spec import spec_hash
    parent = spec_hash(spec)
    return {shard.index: shard_sub_hash(parent, shard)
            for shard in shards}


def compile_shards(spec: ExperimentSpec, shard_size: Optional[int] = None,
                   jobs: int = 1, transport: Optional[str] = None):
    """Lower a neighborhood spec into its per-shard sub-specs.

    The fleet-scale lowering: :func:`compile_fleet` builds the full
    deterministic fleet, then :func:`repro.neighborhood.shard.plan_shards`
    cuts it into contiguous :class:`~repro.neighborhood.shard.ShardSpec`
    work orders (``None`` when the fleet is small enough that the
    per-home path wins).  Sharding is an execution strategy, not part of
    the experiment: the spec hash — and every result bit — is identical
    whatever this returns.
    """
    from repro.neighborhood.shard import plan_shards
    fleet = compile_fleet(spec)
    return plan_shards(fleet, until=spec.until_s, shard_size=shard_size,
                       jobs=jobs, transport=transport)
