"""On-disk result cache keyed on ``(spec_hash, code_version)``.

PR 3 gave every experiment a canonical spec hash; this module turns it
into a content-addressed memo table so re-running an unchanged spec —
``repro regen`` with nothing edited, a repeated ``repro run --spec``,
any :func:`repro.api.run.run` call with ``cache=`` — loads the stored
:class:`~repro.api.run.Result` instead of re-simulating.  Because runs
are bit-deterministic, a cached result is *identical* to a fresh one;
the cache can never change what an experiment produces, only how fast.

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    <root>/
      index.json                  # entry metadata: sizes + LRU clocks
      objects/<spec_hash>.<code_version>.pkl

Keys pair the spec's canonical-JSON SHA-256 with ``repro.__version__``,
so any code release invalidates every stored result.  The index carries
per-entry ``last_used`` stamps; when the store exceeds ``max_bytes``
(``$REPRO_CACHE_MAX_MB``, default 512 MB) the least-recently-used
entries are evicted.  Every read path is corruption-tolerant: a missing,
truncated or unreadable object — or a damaged index — degrades to a
cache miss, never an error.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.run import Result
    from repro.api.spec import ExperimentSpec

#: Environment variable relocating the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable capping the store size, in megabytes.
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"
#: Default size cap when neither argument nor environment specifies one.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: What ``run(spec, cache=...)`` accepts: nothing, a boolean toggle, or
#: a concrete :class:`ResultCache`.
CacheLike = Union[None, bool, "ResultCache"]


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (the index row, not the payload)."""

    key: str
    spec_hash: str
    code_version: str
    name: str
    kind: str
    size_bytes: int
    created: float
    last_used: float


#: Index row holding the persisted usage counters (``#`` keeps it out of
#: the object-key namespace — object keys are ``<hex>.<version>``).
_STATS_KEY = "#stats"


@dataclass(frozen=True)
class CacheStats:
    """Persisted lifetime usage counters of one cache store.

    Survive across processes in the index (advisory, like the LRU
    clocks) and reset when the store is cleared.  ``bytes_read`` /
    ``bytes_written`` count object payloads actually loaded/stored, so
    ``bytes_read / max(hits, 1)`` approximates the per-hit transport
    saving.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls accounted (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """hits / lookups (1.0 for an unused store)."""
        return self.hits / self.lookups if self.lookups else 1.0


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _env_max_bytes() -> int:
    raw = os.environ.get(CACHE_MAX_MB_ENV)
    if raw:
        try:
            return max(1, int(float(raw) * 1024 * 1024))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


class ResultCache:
    """A content-addressed store of :class:`~repro.api.run.Result` values.

    Instances are cheap (two fields) and picklable, so a cache rides
    along to pool workers — each worker then reads/writes the same
    on-disk store.  Concurrent writers are safe-by-construction: object
    files are written atomically (temp file + rename) and the index is
    advisory metadata that every reader can rebuild from the object
    directory.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 max_bytes: Optional[int] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None \
            else _env_max_bytes()

    # -- paths ------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the pickled result payloads."""
        return self.root / "objects"

    @property
    def index_path(self) -> Path:
        """The advisory metadata index file."""
        return self.root / "index.json"

    @staticmethod
    def key_of(spec_hash: str, code_version: str) -> str:
        """The composite cache key of one ``(spec, code release)`` pair."""
        return f"{spec_hash}.{code_version}"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.pkl"

    # -- index ------------------------------------------------------------

    def _read_index(self) -> dict:
        try:
            data = json.loads(self.index_path.read_text())
            if isinstance(data, dict):
                return data
        except (OSError, ValueError):
            pass
        return {}

    def _write_index(self, index: dict) -> None:
        """Publish the index atomically (temp file + ``os.replace``).

        The temp name embeds the writer's pid: two processes sharing a
        store (worker daemons + the artifact store is the norm now)
        must never write the *same* temp file, or one writer's rename
        can publish the other's half-written bytes — silently dropping
        the LRU clocks and the ``#stats`` row.  Updates remain
        last-writer-wins (the index is advisory), but every published
        file is complete and parseable.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.index_path.with_name(
                f"index.json.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(index, indent=1, sort_keys=True))
            os.replace(tmp, self.index_path)
        except OSError:  # pragma: no cover - advisory metadata only
            pass

    # -- operations -------------------------------------------------------

    def _bump_stats(self, index: dict, **deltas: int) -> None:
        """Fold counter deltas into the index's stats row (in place)."""
        row = index.get(_STATS_KEY)
        if not isinstance(row, dict):
            row = {}
            index[_STATS_KEY] = row
        for counter, delta in deltas.items():
            try:
                row[counter] = int(row.get(counter, 0)) + delta
            except (TypeError, ValueError):
                row[counter] = delta

    def _count_miss(self) -> None:
        """Persist one miss (advisory, like every index write)."""
        index = self._read_index()
        self._bump_stats(index, misses=1)
        self._write_index(index)

    def stats(self) -> CacheStats:
        """The persisted lifetime counters (zeros for a fresh store)."""
        row = self._read_index().get(_STATS_KEY)
        if not isinstance(row, dict):
            return CacheStats()

        def _int(name: str) -> int:
            try:
                return int(row.get(name, 0))
            except (TypeError, ValueError):
                return 0

        return CacheStats(hits=_int("hits"), misses=_int("misses"),
                          stores=_int("stores"),
                          bytes_read=_int("bytes_read"),
                          bytes_written=_int("bytes_written"))

    def has(self, digest: str) -> bool:
        """Whether a payload for ``digest`` exists under this code version.

        A cheap existence probe (one ``stat``, no payload read, no
        counter bump) — the service front door answers warm re-submits
        with it without touching the queue.  A ``True`` can still turn
        into a :meth:`get_object` miss if the object is concurrently
        evicted or corrupt; callers must treat it as advisory.
        """
        import repro
        return self._object_path(
            self.key_of(digest, repro.__version__)).exists()

    def get_object(self, digest: str) -> Optional[object]:
        """Load the payload stored under ``digest`` (current code version).

        The digest-keyed twin of :meth:`get` for arbitrary picklable
        payloads (the service plane checkpoints shard outcomes this
        way, and fetches job results by their spec hash without needing
        the spec object).  Returns ``None`` on any miss: absent entry,
        different code version, or a corrupt/truncated object (which is
        deleted).  Every lookup lands in the persisted hit/miss
        counters (:meth:`stats`).

        Under an active fault plan, the ``cache.corrupt`` site can turn
        a successful read into exactly the corrupt-object path — object
        discarded, miss counted, ``None`` returned — so recompute-on-
        corruption is exercised end to end.  The decision is keyed
        ``{digest}:r{n}`` with ``n`` this process's read count of the
        digest, so repeated polls of one artifact are independent
        decisions (a digest is never *permanently* corrupt, which would
        deadlock clients waiting on a done job).
        """
        import repro
        key = self.key_of(digest, repro.__version__)
        path = self._object_path(key)
        try:
            payload = path.read_bytes()
            value = pickle.loads(payload)
        except OSError:
            self._count_miss()
            return None
        except Exception:
            # Truncated or otherwise unreadable entry: drop it and miss.
            self.discard(key)
            self._count_miss()
            return None
        from repro.faults import get_injector
        injector = get_injector()
        if injector is not None:
            occurrence = injector.occurrence("cache.corrupt", digest)
            if injector.fire("cache.corrupt", f"{digest}:r{occurrence}"):
                self.discard(key)
                self._count_miss()
                return None
        index = self._read_index()
        entry = index.get(key)
        if isinstance(entry, dict):
            entry["last_used"] = time.time()
        self._bump_stats(index, hits=1, bytes_read=len(payload))
        self._write_index(index)
        return value

    def put_object(self, digest: str, payload: object, name: str = "?",
                   kind: str = "object") -> Optional[Path]:
        """Store an arbitrary picklable ``payload`` under ``digest``.

        The digest-keyed twin of :meth:`put`: written atomically
        (per-pid temp file + rename), LRU cap enforced, best-effort (an
        I/O failure returns ``None`` rather than failing the caller).
        ``name``/``kind`` label the index row for ``repro cache ls``.
        """
        import repro
        key = self.key_of(digest, repro.__version__)
        path = self._object_path(key)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        now = time.time()
        index = self._read_index()
        index[key] = {
            "spec_hash": digest,
            "code_version": repro.__version__,
            "name": name,
            "kind": kind,
            "size_bytes": len(blob),
            "created": now,
            "last_used": now,
        }
        self._bump_stats(index, stores=1, bytes_written=len(blob))
        self._evict(index, keep=key)
        self._write_index(index)
        return path

    def get(self, spec: "ExperimentSpec",
            spec_digest: Optional[str] = None) -> Optional["Result"]:
        """The stored result of ``spec`` under the current code version.

        Returns ``None`` on any miss: absent entry, different code
        version, or a corrupt/truncated object (which is deleted).
        ``spec_digest`` skips re-hashing when the caller already holds
        the spec hash (``run()`` computes it for provenance anyway).
        Every lookup lands in the persisted hit/miss counters
        (:meth:`stats`).
        """
        if spec_digest is None:
            from repro.api.spec import spec_hash
            spec_digest = spec_hash(spec)
        return self.get_object(spec_digest)

    def put(self, spec: "ExperimentSpec", result: "Result",
            spec_digest: Optional[str] = None) -> Optional[Path]:
        """Store ``result`` for ``spec``; returns the object path.

        The payload is the *portable* result (live agents dropped —
        exactly what any pool-transported result already is), written
        atomically, then the LRU cap is enforced.  ``spec_digest``
        skips re-hashing, as in :meth:`get`.  Storing is best-effort:
        an I/O failure (disk full, racing ``clear``) returns ``None``
        rather than failing the run whose result was being memoized.
        """
        if spec_digest is None:
            from repro.api.spec import spec_hash
            spec_digest = spec_hash(spec)
        return self.put_object(spec_digest, result.portable(),
                               name=spec.name, kind=spec.kind)

    def discard(self, key: str) -> None:
        """Remove one entry (object + index row); missing is fine."""
        try:
            self._object_path(key).unlink()
        except OSError:
            pass
        index = self._read_index()
        if index.pop(key, None) is not None:
            self._write_index(index)

    def _evict(self, index: dict, keep: Optional[str] = None) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        Sizes come from the object directory itself, not the index, so
        objects orphaned by a concurrent index rewrite (the index is
        advisory and last-writer-wins) still count toward — and age out
        of — the cap; their LRU stamp falls back to the file mtime.
        ``keep`` (the entry just written) is never evicted, so a cap
        smaller than a single result degrades to "cache of one" instead
        of thrashing.
        """
        sizes: dict[str, int] = {}
        stamps: dict[str, float] = {}
        try:
            listing = list(self.objects_dir.glob("*.pkl"))
            self._sweep_stale_tmp()
        except OSError:  # pragma: no cover - unreadable store
            return
        for path in listing:
            key = path.name[:-len(".pkl")]
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing deleter
                continue
            sizes[key] = stat.st_size
            entry = index.get(key)
            stamps[key] = float(entry.get("last_used", stat.st_mtime)) \
                if isinstance(entry, dict) else stat.st_mtime
        total = sum(sizes.values())
        for key in sorted(sizes, key=lambda k: stamps[k]):
            if total <= self.max_bytes:
                break
            if key == keep:
                continue
            try:
                self._object_path(key).unlink()
            except OSError:  # pragma: no cover - racing deleter
                pass
            total -= sizes[key]
            index.pop(key, None)

    def entries(self) -> list[CacheEntry]:
        """Every stored entry, most recently used first.

        Reconciled against the object directory: index rows whose object
        vanished are skipped, objects missing from the index are listed
        with file-system metadata.
        """
        index = self._read_index()
        rows: list[CacheEntry] = []
        seen: set[str] = set()
        for key, entry in index.items():
            if not isinstance(entry, dict):
                continue
            path = self._object_path(key)
            if not path.exists():
                continue
            seen.add(key)
            rows.append(CacheEntry(
                key=key,
                spec_hash=str(entry.get("spec_hash", key.split(".")[0])),
                code_version=str(entry.get("code_version", "?")),
                name=str(entry.get("name", "?")),
                kind=str(entry.get("kind", "?")),
                size_bytes=int(entry.get("size_bytes", 0)),
                created=float(entry.get("created", 0.0)),
                last_used=float(entry.get("last_used", 0.0))))
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*.pkl")):
                key = path.name[:-len(".pkl")]
                if key in seen:
                    continue
                try:
                    stat = path.stat()
                except OSError:  # racing deleter (clear/evict elsewhere)
                    continue
                spec_digest, _, version = key.partition(".")
                rows.append(CacheEntry(
                    key=key, spec_hash=spec_digest, code_version=version,
                    name="?", kind="?", size_bytes=stat.st_size,
                    created=stat.st_mtime, last_used=stat.st_mtime))
        rows.sort(key=lambda row: row.last_used, reverse=True)
        return rows

    def total_bytes(self) -> int:
        """Bytes currently stored (object payloads only)."""
        return sum(entry.size_bytes for entry in self.entries())

    def _sweep_stale_tmp(self, max_age_s: float = 300.0) -> None:
        """Delete abandoned ``*.tmp<pid>`` files from interrupted puts.

        Only files older than ``max_age_s`` go, so a concurrent writer's
        in-flight temp file is never pulled out from under its rename.
        """
        now = time.time()
        listing = list(self.objects_dir.glob("*.tmp*"))
        if self.root.is_dir():
            listing.extend(self.root.glob("index.json.*.tmp"))
        for tmp in listing:
            try:
                if now - tmp.stat().st_mtime > max_age_s:
                    tmp.unlink()
            except OSError:  # pragma: no cover - racing writer/deleter
                pass

    def clear(self) -> int:
        """Delete every entry; returns how many objects were removed.

        Also sweeps abandoned temp files left by interrupted stores and
        resets the persisted usage counters (they live in the index).
        """
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing deleter
                    pass
            self._sweep_stale_tmp(max_age_s=0.0)
        try:
            self.index_path.unlink()
        except OSError:
            pass
        return removed


def resolve_cache(cache: CacheLike) -> Optional[ResultCache]:
    """Normalize the ``cache=`` argument of :func:`repro.api.run.run`.

    ``None``/``False`` disable caching, ``True`` selects the default
    on-disk store, and a :class:`ResultCache` instance is used as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    raise TypeError(
        f"cache must be None, a bool or a ResultCache, got {cache!r}")
