"""Schema-versioned validation of experiment specs with readable paths.

Every rejection is a :class:`SpecError` whose message leads with the
dotted path of the offending field — ``fleet.mix: unknown preset
'famly' (did you mean 'family'?); one of: apartments, mixed, suburb`` —
so a bad JSON document is fixable without reading this source.

Validation runs on the *raw dict* (:func:`validate_data`, called by
:meth:`repro.api.spec.ExperimentSpec.from_dict` before any dataclass is
built) and again structurally on constructed specs (:func:`validate`,
called by :func:`repro.api.run.run` so hand-built trees get the same
checks as loaded JSON).
"""

from __future__ import annotations

import difflib
from typing import Any, Mapping, Optional, Sequence

from repro.api.spec import KINDS, SCHEMA_VERSION


class SpecError(ValueError):
    """A spec failed validation; ``path`` points at the offending field."""

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


def _suggest(value: str, known: Sequence[str]) -> str:
    """`` (did you mean 'x'?)`` when a close match exists, else ``''``."""
    matches = difflib.get_close_matches(value, list(known), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _unknown(value: str, what: str, known: Sequence[str]) -> str:
    choices = ", ".join(sorted(str(item) for item in known))
    return (f"unknown {what} {value!r}{_suggest(value, known)}; "
            f"one of: {choices}")


def _check_keys(data: Mapping[str, Any], allowed: Sequence[str],
                path: str) -> None:
    for key in data:
        if key not in allowed:
            prefix = f"{path}.{key}" if path else str(key)
            raise SpecError(prefix,
                            f"unknown field{_suggest(str(key), allowed)}")


def _number(value, path: str, minimum: Optional[float] = None,
            allow_none: bool = False, integer: bool = False) -> None:
    import math
    if value is None:
        if allow_none:
            return
        raise SpecError(path, "must not be null")
    if isinstance(value, bool) or not isinstance(
            value, int if integer else (int, float)):
        kind = "an integer" if integer else "a number"
        raise SpecError(path, f"must be {kind}, got {value!r}")
    if not math.isfinite(value):
        # NaN/Infinity would defeat the minimum check below AND are not
        # representable in strict JSON, so the canonical form (and every
        # provenance block hashed from it) would stop being parseable.
        raise SpecError(path, f"must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise SpecError(path, f"must be >= {minimum:g}, got {value!r}")


def _string(value, path: str, allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if not isinstance(value, str):
        raise SpecError(path, f"must be a string, got {value!r}")


def _choice(value, path: str, what: str, known: Sequence[str]) -> None:
    _string(value, path)
    if value not in known:
        raise SpecError(path, _unknown(value, what, known))


def _section(data, path: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(path, f"must be an object, got {data!r}")
    return data


def _validate_scenario(data: Mapping[str, Any]) -> None:
    from repro.workloads.scenarios import ARRIVAL_KINDS, SCENARIO_PRESETS
    allowed = ("preset", "name", "n_devices", "device_power_w", "min_dcd_s",
               "max_dcp_s", "rate_per_hour", "horizon_s", "demand_cycles",
               "arrival", "batch_size", "notes")
    _check_keys(data, allowed, "scenario")
    preset = data.get("preset", "paper-high")
    if preset is not None:
        _string(preset, "scenario.preset")
        if preset not in SCENARIO_PRESETS:
            raise SpecError("scenario.preset",
                            _unknown(preset, "preset", SCENARIO_PRESETS))
    _string(data.get("name"), "scenario.name", allow_none=True)
    _string(data.get("notes"), "scenario.notes", allow_none=True)
    _number(data.get("n_devices"), "scenario.n_devices", minimum=1,
            allow_none=True, integer=True)
    _number(data.get("device_power_w"), "scenario.device_power_w",
            minimum=0.0, allow_none=True)
    _number(data.get("min_dcd_s"), "scenario.min_dcd_s", minimum=0.0,
            allow_none=True)
    _number(data.get("max_dcp_s"), "scenario.max_dcp_s", minimum=0.0,
            allow_none=True)
    _number(data.get("rate_per_hour"), "scenario.rate_per_hour",
            minimum=0.0, allow_none=True)
    _number(data.get("horizon_s"), "scenario.horizon_s", minimum=0.0,
            allow_none=True)
    _number(data.get("demand_cycles"), "scenario.demand_cycles", minimum=1,
            allow_none=True, integer=True)
    _number(data.get("batch_size"), "scenario.batch_size", minimum=1,
            allow_none=True, integer=True)
    arrival = data.get("arrival")
    if arrival is not None:
        _choice(arrival, "scenario.arrival", "arrival kind", ARRIVAL_KINDS)


def _validate_control(data: Mapping[str, Any]) -> None:
    from repro.core.system import FIDELITIES, POLICIES, TOPOLOGIES
    allowed = ("policy", "cp_fidelity", "cp_period", "topology",
               "refresh_every", "calibration_rounds", "shadowing_sigma_db",
               "path_loss_exponent", "ci_derating", "aggregation",
               "controller_id")
    _check_keys(data, allowed, "control")
    _choice(data.get("policy", "coordinated"), "control.policy", "policy",
            POLICIES)
    _choice(data.get("cp_fidelity", "round"), "control.cp_fidelity",
            "CP fidelity", FIDELITIES)
    _choice(data.get("topology", "flocklab26"), "control.topology",
            "topology", TOPOLOGIES)
    _number(data.get("cp_period", 2.0), "control.cp_period", minimum=1e-9)
    _number(data.get("refresh_every", 15), "control.refresh_every",
            minimum=1, integer=True)
    _number(data.get("calibration_rounds", 20), "control.calibration_rounds",
            minimum=1, integer=True)
    _number(data.get("shadowing_sigma_db", 3.0),
            "control.shadowing_sigma_db", minimum=0.0)
    _number(data.get("path_loss_exponent"), "control.path_loss_exponent",
            minimum=0.0, allow_none=True)
    _number(data.get("ci_derating"), "control.ci_derating", minimum=0.0,
            allow_none=True)
    _number(data.get("aggregation", 2), "control.aggregation", minimum=1,
            integer=True)
    _number(data.get("controller_id", 0), "control.controller_id",
            minimum=0, integer=True)


def _validate_fleet(data: Mapping[str, Any]) -> None:
    from repro.neighborhood.federation import COORDINATION_MODES
    from repro.workloads.scenarios import FLEET_MIXES
    allowed = ("homes", "mix", "coordination", "rate_jitter", "size_jitter")
    _check_keys(data, allowed, "fleet")
    _number(data.get("homes", 20), "fleet.homes", minimum=1, integer=True)
    mix = data.get("mix", "suburb")
    _string(mix, "fleet.mix")
    if mix not in FLEET_MIXES:
        raise SpecError("fleet.mix", _unknown(mix, "preset", FLEET_MIXES))
    _choice(data.get("coordination", "independent"), "fleet.coordination",
            "coordination mode", COORDINATION_MODES)
    _number(data.get("rate_jitter", 0.25), "fleet.rate_jitter", minimum=0.0)
    _number(data.get("size_jitter", 0.2), "fleet.size_jitter", minimum=0.0)


def _validate_forecast(data: Mapping[str, Any]) -> None:
    from repro.forecast import FORECASTERS
    allowed = ("forecaster", "noise", "noise_seed", "ewma_alpha",
               "season_epochs")
    _check_keys(data, allowed, "forecast")
    _choice(data.get("forecaster", "oracle"), "forecast.forecaster",
            "forecaster", FORECASTERS)
    _number(data.get("noise", 0.0), "forecast.noise", minimum=0.0)
    _number(data.get("noise_seed", 1), "forecast.noise_seed", minimum=0,
            integer=True)
    alpha = data.get("ewma_alpha", 0.5)
    _number(alpha, "forecast.ewma_alpha", minimum=0.0)
    if alpha > 1.0:
        raise SpecError("forecast.ewma_alpha",
                        f"must be <= 1, got {alpha!r}")
    _number(data.get("season_epochs", 1), "forecast.season_epochs",
            minimum=1, integer=True)


def _validate_faults(data: Mapping[str, Any]) -> None:
    from repro.faults.plan import RATE_FIELDS
    allowed = ("seed",) + RATE_FIELDS + ("max_delay_epochs",)
    _check_keys(data, allowed, "faults")
    _number(data.get("seed", 0), "faults.seed", minimum=0, integer=True)
    for name in RATE_FIELDS:
        rate = data.get(name, 0.0)
        _number(rate, f"faults.{name}", minimum=0.0)
        if rate > 1.0:
            raise SpecError(f"faults.{name}",
                            f"must be <= 1 (a probability), got {rate!r}")
    _number(data.get("max_delay_epochs", 2), "faults.max_delay_epochs",
            minimum=1, integer=True)


def _validate_grid(data: Mapping[str, Any]) -> None:
    from repro.neighborhood.grid import GRID_COORDINATION_MODES
    from repro.workloads.scenarios import FLEET_MIXES
    _check_keys(data, ("feeders", "coordination"), "grid")
    feeders = data.get("feeders")
    if not isinstance(feeders, (list, tuple)) or not feeders:
        raise SpecError("grid.feeders",
                        f"must be a non-empty list of feeder objects, "
                        f"got {feeders!r}")
    allowed = ("homes", "mix", "rate_jitter", "size_jitter")
    for index, feeder in enumerate(feeders):
        path = f"grid.feeders[{index}]"
        feeder = _section(feeder, path)
        _check_keys(feeder, allowed, path)
        _number(feeder.get("homes", 20), f"{path}.homes", minimum=1,
                integer=True)
        mix = feeder.get("mix", "suburb")
        _string(mix, f"{path}.mix")
        if mix not in FLEET_MIXES:
            raise SpecError(f"{path}.mix",
                            _unknown(mix, "preset", FLEET_MIXES))
        _number(feeder.get("rate_jitter", 0.25), f"{path}.rate_jitter",
                minimum=0.0)
        _number(feeder.get("size_jitter", 0.2), f"{path}.size_jitter",
                minimum=0.0)
    _choice(data.get("coordination", "independent"), "grid.coordination",
            "grid coordination mode", GRID_COORDINATION_MODES)


def _validate_sweep(data: Mapping[str, Any]) -> None:
    from repro.core.system import POLICIES
    _check_keys(data, ("rates", "policies"), "sweep")
    rates = data.get("rates", [])
    if not isinstance(rates, (list, tuple)):
        raise SpecError("sweep.rates", f"must be a list, got {rates!r}")
    for index, rate in enumerate(rates):
        _number(rate, f"sweep.rates[{index}]", minimum=0.0)
    policies = data.get("policies", ("coordinated", "uncoordinated"))
    if not isinstance(policies, (list, tuple)) or not policies:
        raise SpecError("sweep.policies",
                        f"must be a non-empty list, got {policies!r}")
    for index, policy in enumerate(policies):
        _choice(policy, f"sweep.policies[{index}]", "policy", POLICIES)


def _json_safe(value, path: str) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _json_safe(item, f"{path}[{index}]")
        return
    if isinstance(value, Mapping):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(path, f"object keys must be strings, "
                                      f"got {key!r}")
            _json_safe(item, f"{path}.{key}")
        return
    raise SpecError(path, f"value {value!r} is not JSON-serializable")


def _validate_artefact(data: Mapping[str, Any]) -> None:
    import inspect

    from repro.api.compile import ARTEFACTS, resolve_artefact
    _check_keys(data, ("kind", "params"), "artefact")
    kind = data.get("kind")
    _string(kind, "artefact.kind")
    if kind not in ARTEFACTS:
        raise SpecError("artefact.kind",
                        _unknown(kind, "artefact kind", ARTEFACTS))
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise SpecError("artefact.params",
                        f"must be an object, got {params!r}")
    signature = inspect.signature(resolve_artefact(kind))
    for key, value in params.items():
        if not isinstance(key, str) or key not in signature.parameters:
            known = list(signature.parameters)
            raise SpecError(f"artefact.params.{key}",
                            f"unknown parameter for {kind!r}"
                            f"{_suggest(str(key), known)}; "
                            f"accepts: {', '.join(known)}")
        _json_safe(value, f"artefact.params.{key}")


#: Which optional section each kind requires (and all others must be
#: absent — a spec never carries dead configuration).
_KIND_SECTIONS = {
    "single": None,
    "sweep": "sweep",
    "neighborhood": "fleet",
    "grid": "grid",
    "artefact": "artefact",
}


def validate_data(data: Mapping[str, Any]) -> None:
    """Validate a raw spec dict (parsed JSON) against the schema.

    Raises :class:`SpecError` on the first problem, with the dotted path
    of the offending field in the message.
    """
    if not isinstance(data, Mapping):
        raise SpecError("", f"spec must be an object, got {data!r}")
    allowed = ("schema_version", "name", "kind", "scenario", "control",
               "seeds", "until_s", "fleet", "forecast", "faults", "grid",
               "sweep", "artefact")
    _check_keys(data, allowed, "")
    version = data.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise SpecError("schema_version",
                        f"must be an integer, got {version!r}")
    if version != SCHEMA_VERSION:
        raise SpecError("schema_version",
                        f"unsupported schema version {version} "
                        f"(this build reads version {SCHEMA_VERSION})")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError("name", f"must be a non-empty string, got {name!r}")
    kind = data.get("kind", "single")
    if kind not in KINDS:
        raise SpecError("kind", _unknown(str(kind), "kind", KINDS))
    _validate_scenario(_section(data.get("scenario", {}), "scenario"))
    _validate_control(_section(data.get("control", {}), "control"))
    seeds = data.get("seeds", [1])
    if not isinstance(seeds, (list, tuple)) or not seeds:
        raise SpecError("seeds",
                        f"must be a non-empty list of integers, "
                        f"got {seeds!r}")
    for index, seed in enumerate(seeds):
        _number(seed, f"seeds[{index}]", minimum=0, integer=True)
    _number(data.get("until_s"), "until_s", minimum=0.0, allow_none=True)

    _reject_dead_fields(data, kind)

    required = _KIND_SECTIONS[kind]
    for section_name, validator in (("fleet", _validate_fleet),
                                    ("grid", _validate_grid),
                                    ("sweep", _validate_sweep),
                                    ("artefact", _validate_artefact)):
        section_data = data.get(section_name)
        if section_name == required:
            if section_data is None:
                raise SpecError(section_name,
                                f"required for kind {kind!r}")
            validator(_section(section_data, section_name))
        elif section_data is not None:
            raise SpecError(section_name,
                            f"only valid for kind {_kind_of(section_name)!r}"
                            f", this spec has kind {kind!r}")

    forecast_data = data.get("forecast")
    if forecast_data is not None:
        # The forecast section only feeds the online epoch loop; on any
        # other shape it would be dead configuration perturbing the hash.
        fleet_data = data.get("fleet") or {}
        coordination = fleet_data.get("coordination", "independent")
        if kind != "neighborhood" or coordination != "online":
            raise SpecError(
                "forecast",
                "only valid for kind 'neighborhood' with "
                f"fleet.coordination 'online'; this spec has kind "
                f"{kind!r} with coordination {coordination!r}")
        _validate_forecast(_section(forecast_data, "forecast"))

    faults_data = data.get("faults")
    if faults_data is not None:
        faults_data = _section(faults_data, "faults")
        # Fault injection exercises the fleet execution paths (workers,
        # transport, telemetry); on single/sweep/artefact shapes the
        # sites never run, so the section would be dead configuration.
        if kind not in ("neighborhood", "grid"):
            raise SpecError(
                "faults",
                "only valid for kinds 'neighborhood' and 'grid'; this "
                f"spec has kind {kind!r}")
        _validate_faults(faults_data)
        telemetry_rates = [faults_data.get(name, 0.0)
                           for name in ("telemetry_drop",
                                        "telemetry_delay",
                                        "telemetry_dup")]
        if any(rate > 0 for rate in telemetry_rates):
            fleet_data = data.get("fleet") or {}
            coordination = fleet_data.get("coordination", "independent")
            if coordination != "online":
                raise SpecError(
                    "faults",
                    "telemetry fault rates only apply to "
                    "fleet.coordination 'online' (the telemetry plane "
                    "only runs there); this spec has coordination "
                    f"{coordination!r}")


def _kind_of(section_name: str) -> str:
    """The spec kind a section belongs to (for error messages)."""
    return {"fleet": "neighborhood", "grid": "grid", "sweep": "sweep",
            "artefact": "artefact"}[section_name]


def _defaults_of(section_cls) -> dict:
    """Field → schema default of a flat section dataclass."""
    from dataclasses import fields
    return {f.name: f.default for f in fields(section_cls)}


def _reject_non_default(data: Mapping[str, Any], section: str,
                        defaults: dict, kind: str, hint: str) -> None:
    for key, value in data.items():
        if value != defaults.get(key):
            raise SpecError(f"{section}.{key}",
                            f"not applicable to kind {kind!r} ({hint})")


def _reject_dead_fields(data: Mapping[str, Any], kind: str) -> None:
    """Refuse configuration the kind's execution path would ignore.

    A field the compiler never reads would still perturb the spec hash,
    so two documents that execute identically would get different
    provenance — and a reader would believe configuration that was never
    applied.  The same no-dead-configuration rule that forbids, say, a
    ``sweep`` section on a neighborhood spec therefore extends to the
    individual shared fields each kind ignores.
    """
    from repro.api.spec import ControlSpec, ScenarioSpec
    scenario = _section(data.get("scenario", {}), "scenario")
    control = _section(data.get("control", {}), "control")
    seeds = data.get("seeds", [1])
    if kind in ("neighborhood", "grid"):
        # Homes draw their workloads from the fleet mix's archetypes;
        # only the shared horizon crosses into the fleet build.
        scenario_defaults = _defaults_of(ScenarioSpec)
        for key, value in scenario.items():
            if key == "horizon_s" or value == scenario_defaults.get(key):
                continue
            raise SpecError(
                f"scenario.{key}",
                f"not applicable to kind {kind!r} (homes draw "
                "their workloads from the fleet mix; only "
                "scenario.horizon_s applies)")
        if len(seeds) > 1:
            raise SpecError(
                "seeds",
                f"kind {kind!r} uses a single root seed (per-feeder and "
                "per-home seeds derive from it); got "
                f"{len(seeds)} seeds")
    elif kind == "sweep":
        if control.get("policy", "coordinated") != "coordinated":
            raise SpecError(
                "control.policy",
                "not applicable to kind 'sweep' (vary policies via "
                "sweep.policies)")
        sweep = _section(data.get("sweep") or {}, "sweep")
        if sweep.get("rates") and \
                scenario.get("rate_per_hour") is not None:
            raise SpecError(
                "scenario.rate_per_hour",
                "dead under a non-empty sweep.rates axis (each cell's "
                "rate comes from the axis)")
    elif kind == "artefact":
        hint = "artefact generators configure themselves via " \
               "artefact.params"
        _reject_non_default(scenario, "scenario",
                            _defaults_of(ScenarioSpec), kind, hint)
        _reject_non_default(control, "control",
                            _defaults_of(ControlSpec), kind, hint)
        if list(seeds) != [1]:
            raise SpecError("seeds", f"not applicable to kind {kind!r} "
                                     f"({hint})")
        if data.get("until_s") is not None:
            raise SpecError("until_s", f"not applicable to kind {kind!r} "
                                       f"({hint})")


def validate(spec) -> None:
    """Validate a constructed :class:`~repro.api.spec.ExperimentSpec`.

    Serializes to the canonical dict and runs :func:`validate_data`, so
    hand-built trees face exactly the checks loaded JSON does.
    """
    validate_data(spec.to_dict())
