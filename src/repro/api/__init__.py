"""One front door for every experiment: declarative, serializable specs.

The four historical entry points — ``run_experiment`` on a
:class:`~repro.core.system.HanConfig`, the ``compare_policies`` /
``sweep_rates`` grids, the experiment ``REGISTRY`` and
``run_neighborhood`` over a fleet — are one pipeline wearing four
argument conventions.  This package folds them into a single declarative
API:

* :class:`~repro.api.spec.ExperimentSpec` — the experiment as *data*,
  JSON round-trippable (``spec.to_json()`` /
  ``ExperimentSpec.from_json()``) with schema-versioned validation and
  readable error paths (:mod:`repro.api.validate`);
* :mod:`repro.api.compile` — specs compile to today's
  ``HanConfig`` / ``RunSpec`` / fleet objects;
* :func:`~repro.api.run.run` — one call executes any spec over N
  workers and returns a uniform :class:`~repro.api.run.Result` with
  provenance (spec hash, seeds, code version).

Quickstart::

    from repro.api import ExperimentSpec, run

    spec = ExperimentSpec.from_json('''{
        "name": "demo", "kind": "single",
        "scenario": {"preset": "paper-high"},
        "control": {"policy": "coordinated", "cp_fidelity": "round"},
        "seeds": [1]
    }''')
    result = run(spec, jobs=1)
    print(result.stats()[0].peak_kw, result.provenance.short_hash)

See ``docs/experiment-spec.md`` for the full schema and the migration
table from the legacy call sites (which live on as deprecation shims).
"""

from repro.api.cache import CacheEntry, ResultCache, resolve_cache
from repro.api.compile import (
    ARTEFACTS,
    compile_config,
    compile_fleet,
    compile_run_specs,
    compile_scenario,
    resolve_artefact,
)
from repro.api.run import Provenance, Result, provenance_of, run
from repro.api.spec import (
    KINDS,
    SCHEMA_VERSION,
    ArtefactSpec,
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ForecastPlan,
    ScenarioSpec,
    SweepSpec,
    canonical_json,
    spec_from_config,
    spec_from_scenario,
    spec_hash,
)
from repro.api.validate import SpecError, validate, validate_data

__all__ = [
    "ARTEFACTS",
    "ArtefactSpec",
    "CacheEntry",
    "ControlSpec",
    "ExperimentSpec",
    "FleetPlan",
    "ForecastPlan",
    "KINDS",
    "Provenance",
    "Result",
    "ResultCache",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "SpecError",
    "SweepSpec",
    "canonical_json",
    "compile_config",
    "compile_fleet",
    "compile_run_specs",
    "compile_scenario",
    "provenance_of",
    "resolve_artefact",
    "resolve_cache",
    "run",
    "spec_from_config",
    "spec_from_scenario",
    "spec_hash",
    "validate",
    "validate_data",
]
