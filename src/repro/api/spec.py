"""The declarative experiment specification tree.

An :class:`ExperimentSpec` is the single front door to every run shape
this repository supports — one home, a (rates x policies x seeds) sweep,
a neighborhood fleet behind one feeder, or a registry artefact — as plain
*data*: it round-trips losslessly through JSON
(:meth:`ExperimentSpec.to_json` / :meth:`ExperimentSpec.from_json`), is
validated with readable error paths (``fleet.mix: unknown preset
'famly'``; see :mod:`repro.api.validate`), compiles down to the concrete
:class:`~repro.core.system.HanConfig` / fleet objects
(:mod:`repro.api.compile`) and executes through one call
(:func:`repro.api.run.run`).

Layout of the tree::

    ExperimentSpec
    ├── kind: "single" | "sweep" | "neighborhood" | "grid" | "artefact"
    ├── scenario: ScenarioSpec   (preset + per-field overrides)
    ├── control:  ControlSpec    (policy, CP fidelity, radio knobs)
    ├── seeds / until_s
    ├── fleet:    FleetPlan      (neighborhood runs only)
    ├── forecast: ForecastPlan   (online-coordinated neighborhoods only)
    ├── faults:   FaultPlan      (seeded fault injection, optional)
    ├── grid:     GridPlan (multi-feeder grid runs only)
    │   └── feeders: (FeederPlan, ...)
    ├── sweep:    SweepSpec      (sweep runs only)
    └── artefact: ArtefactSpec   (registry artefacts only)

Every field carries the same units as its compiled counterpart (seconds,
watts), so compiling a spec and re-deriving a spec from the compiled
object (:func:`spec_from_config`) are exact inverses — the property the
deprecation-shim equivalence tests pin down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Optional

from repro.faults.plan import RATE_FIELDS, FaultPlan

#: Version of the serialized layout; bumped on incompatible changes so a
#: stored spec is never silently misread.
SCHEMA_VERSION = 1

#: The five run shapes a spec can describe.
KINDS = ("single", "sweep", "neighborhood", "grid", "artefact")


@dataclass(frozen=True)
class ScenarioSpec:
    """Workload selection: a named preset plus per-field overrides.

    ``preset`` names an entry of
    :data:`repro.workloads.scenarios.SCENARIO_PRESETS`; every other field
    overrides the preset when not ``None``.  With ``preset=None`` the
    overrides apply on top of the :class:`~repro.workloads.scenarios.Scenario`
    defaults, which makes *any* scenario expressible declaratively.
    """

    preset: Optional[str] = "paper-high"
    name: Optional[str] = None
    n_devices: Optional[int] = None
    device_power_w: Optional[float] = None
    min_dcd_s: Optional[float] = None
    max_dcp_s: Optional[float] = None
    rate_per_hour: Optional[float] = None
    horizon_s: Optional[float] = None
    demand_cycles: Optional[int] = None
    arrival: Optional[str] = None
    batch_size: Optional[int] = None
    notes: Optional[str] = None


@dataclass(frozen=True)
class ControlSpec:
    """Coordination policy, CP fidelity and the radio/topology knobs.

    Field-for-field the non-scenario, non-seed half of
    :class:`~repro.core.system.HanConfig`, so the two convert losslessly.
    """

    policy: str = "coordinated"
    cp_fidelity: str = "round"
    cp_period: float = 2.0
    topology: str = "flocklab26"
    refresh_every: int = 15
    calibration_rounds: int = 20
    shadowing_sigma_db: float = 3.0
    path_loss_exponent: Optional[float] = None
    ci_derating: Optional[float] = None
    aggregation: int = 2
    controller_id: int = 0


@dataclass(frozen=True)
class FleetPlan:
    """Neighborhood section: how to build and coordinate the fleet.

    Compiles through :func:`repro.neighborhood.fleet.build_fleet`; the
    fleet seed is the spec's first entry of ``seeds``.
    """

    homes: int = 20
    mix: str = "suburb"
    coordination: str = "independent"
    rate_jitter: float = 0.25
    size_jitter: float = 0.2


@dataclass(frozen=True)
class ForecastPlan:
    """Forecast section: per-home prediction for ``online`` coordination.

    Only valid on a ``neighborhood`` spec whose
    ``fleet.coordination`` is ``"online"`` — on any other shape it is
    dead configuration and the validator rejects it.  Compiles to
    :class:`repro.neighborhood.online.ForecastConfig` field for field.
    """

    forecaster: str = "oracle"
    noise: float = 0.0
    noise_seed: int = 1
    ewma_alpha: float = 0.5
    season_epochs: int = 1


@dataclass(frozen=True)
class FeederPlan:
    """One feeder of a grid: a fleet build minus the coordination mode.

    Same build knobs as :class:`FleetPlan` (they compile through the same
    :func:`repro.neighborhood.fleet.build_fleet`); coordination lives on
    the enclosing :class:`GridPlan` because it is a property of the grid,
    not of one feeder.  Feeder ``i`` builds with
    :func:`repro.neighborhood.grid.feeder_seed` of the spec seed — feeder
    0 inherits the root seed, so a single-feeder grid reproduces the
    ``neighborhood`` kind bit-for-bit.
    """

    homes: int = 20
    mix: str = "suburb"
    rate_jitter: float = 0.25
    size_jitter: float = 0.2


@dataclass(frozen=True)
class GridPlan:
    """Grid section: feeders under one substation, plus the tier policy.

    ``coordination`` is one of
    :data:`repro.neighborhood.grid.GRID_COORDINATION_MODES`:
    ``"independent"`` (no negotiation anywhere), ``"feeder"`` (today's
    per-feeder CP rounds, nothing above), or ``"substation"`` (per-feeder
    rounds, then feeder-level envelopes negotiate at the substation
    tier).
    """

    feeders: tuple[FeederPlan, ...] = (FeederPlan(),)
    coordination: str = "independent"


@dataclass(frozen=True)
class SweepSpec:
    """Sweep axes: arrival rates x policies (seeds ride on the spec).

    An empty ``rates`` tuple sweeps policies only (the
    ``compare_policies`` shape); otherwise every (rate, policy, seed)
    cell becomes one run (the Figure 2(b)/(c) shape).
    """

    rates: tuple[float, ...] = ()
    policies: tuple[str, ...] = ("coordinated", "uncoordinated")


@dataclass(frozen=True)
class ArtefactSpec:
    """A registry artefact: generator family plus its keyword params.

    ``kind`` names an entry of :data:`repro.api.compile.ARTEFACTS`;
    ``params`` are JSON-safe keyword arguments for that generator
    (validated against its signature).
    """

    kind: str = "fig2a"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        """Hash over the JSON form — ``params`` is a (unhashable) dict."""
        return hash((self.kind,
                     json.dumps(dict(self.params), sort_keys=True)))


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-described experiment, serializable as JSON.

    The only execution entry point is :func:`repro.api.run.run`; the
    legacy call sites (``run_experiment``, ``compare_policies``,
    ``sweep_rates``, ``run_neighborhood``) survive as deprecation shims
    that construct one of these and delegate.
    """

    name: str
    kind: str = "single"
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    control: ControlSpec = field(default_factory=ControlSpec)
    seeds: tuple[int, ...] = (1,)
    until_s: Optional[float] = None
    fleet: Optional[FleetPlan] = None
    forecast: Optional[ForecastPlan] = None
    faults: Optional[FaultPlan] = None
    grid: Optional[GridPlan] = None
    sweep: Optional[SweepSpec] = None
    artefact: Optional[ArtefactSpec] = None
    schema_version: int = SCHEMA_VERSION

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready dict with every field explicit (tuples → lists).

        The ``forecast`` and ``faults`` keys appear only when those
        sections are set: they postdate schema v1, and omitting the
        default keeps every pre-existing spec's canonical JSON — and
        hence its content hash and cached results — byte-identical.
        """
        out = {
            "schema_version": self.schema_version,
            "name": self.name,
            "kind": self.kind,
            "scenario": _section_to_dict(self.scenario),
            "control": _section_to_dict(self.control),
            "seeds": list(self.seeds),
            "until_s": float(self.until_s)
            if self.until_s is not None else None,
            "fleet": _section_to_dict(self.fleet)
            if self.fleet is not None else None,
            "grid": {"feeders": [_section_to_dict(feeder)
                                 for feeder in self.grid.feeders],
                     "coordination": self.grid.coordination}
            if self.grid is not None else None,
            "sweep": {"rates": [float(rate) for rate in self.sweep.rates],
                      "policies": list(self.sweep.policies)}
            if self.sweep is not None else None,
            "artefact": {"kind": self.artefact.kind,
                         "params": dict(self.artefact.params)}
            if self.artefact is not None else None,
        }
        if self.forecast is not None:
            out["forecast"] = _section_to_dict(self.forecast)
        if self.faults is not None:
            out["faults"] = _section_to_dict(self.faults)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize; ``indent=None`` gives the canonical one-line form."""
        if indent is None:
            return canonical_json(self)
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Validate ``data`` and build the spec tree.

        Raises :class:`repro.api.validate.SpecError` with a dotted field
        path on the first problem found.
        """
        from repro.api.validate import validate_data
        validate_data(data)
        scenario = ScenarioSpec(**_coerced(data.get("scenario", {}),
                                           ScenarioSpec))
        control = ControlSpec(**_coerced(data.get("control", {}),
                                         ControlSpec))
        fleet = FleetPlan(**_coerced(data["fleet"], FleetPlan)) \
            if data.get("fleet") is not None else None
        forecast = ForecastPlan(**_coerced(data["forecast"],
                                           ForecastPlan)) \
            if data.get("forecast") is not None else None
        faults = FaultPlan(**_coerced(data["faults"], FaultPlan)) \
            if data.get("faults") is not None else None
        grid_data = data.get("grid")
        grid = GridPlan(
            feeders=tuple(FeederPlan(**_coerced(feeder, FeederPlan))
                          for feeder in grid_data["feeders"]),
            coordination=grid_data.get("coordination",
                                       GridPlan.coordination)) \
            if grid_data is not None else None
        sweep_data = data.get("sweep")
        sweep = SweepSpec(rates=tuple(float(rate) for rate
                                      in sweep_data.get("rates", ())),
                          policies=tuple(sweep_data.get(
                              "policies",
                              SweepSpec.policies))) \
            if sweep_data is not None else None
        artefact_data = data.get("artefact")
        artefact = ArtefactSpec(kind=artefact_data["kind"],
                                params=dict(artefact_data.get("params",
                                                              {}))) \
            if artefact_data is not None else None
        until_s = data.get("until_s")
        return cls(name=data["name"],
                   kind=data.get("kind", "single"),
                   scenario=scenario,
                   control=control,
                   seeds=tuple(data.get("seeds", (1,))),
                   until_s=float(until_s) if until_s is not None
                   else None,
                   fleet=fleet, forecast=forecast, faults=faults,
                   grid=grid, sweep=sweep,
                   artefact=artefact,
                   schema_version=data.get("schema_version",
                                           SCHEMA_VERSION))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse and validate a JSON document (see :meth:`from_dict`)."""
        from repro.api.validate import SpecError
        try:
            data = json.loads(text)
        except json.JSONDecodeError as bad:
            raise SpecError("", f"invalid JSON: {bad}") from bad
        if not isinstance(data, dict):
            raise SpecError("", "spec document must be a JSON object")
        return cls.from_dict(data)

    # -- convenience ----------------------------------------------------------

    def with_artefact_params(self, **params) -> "ExperimentSpec":
        """A copy with extra/overriding artefact params (artefact kind only)."""
        if self.artefact is None:
            raise ValueError(f"spec {self.name!r} has no artefact section")
        merged = dict(self.artefact.params)
        merged.update(params)
        return replace(self, artefact=ArtefactSpec(kind=self.artefact.kind,
                                                   params=merged))


def _section_to_dict(section) -> Optional[dict]:
    """Flat dataclass section → plain dict (helper for :meth:`to_dict`).

    Float-typed fields are coerced to ``float`` so the canonical form is
    type-stable: a document writing ``1800`` and one writing ``1800.0``
    describe the same experiment and must hash identically.
    """
    if section is None:
        return None
    float_fields = _FLOAT_FIELDS.get(type(section), ())
    out = {}
    for section_field in fields(section):
        value = getattr(section, section_field.name)
        if section_field.name in float_fields and value is not None:
            value = float(value)
        out[section_field.name] = value
    return out


def _coerced(data: Mapping[str, Any], section_cls) -> dict:
    """A copy of raw section data with float fields coerced to float.

    Applied on load (:meth:`ExperimentSpec.from_dict`) so int-written
    and float-written documents build *identical* spec objects, not just
    identically-hashing ones.
    """
    out = dict(data)
    for name in _FLOAT_FIELDS.get(section_cls, ()):
        if out.get(name) is not None:
            out[name] = float(out[name])
    return out


#: Float-typed section fields, coerced on both load and serialization so
#: int-written JSON (``"cp_period": 2``) builds and hashes identically
#: to float-written JSON (``"cp_period": 2.0``).  Integer-typed fields
#: need no mapping — the validator already rejects non-int values for
#: them.
_FLOAT_FIELDS = {
    ScenarioSpec: ("device_power_w", "min_dcd_s", "max_dcp_s",
                   "rate_per_hour", "horizon_s"),
    ControlSpec: ("cp_period", "shadowing_sigma_db",
                  "path_loss_exponent", "ci_derating"),
    FleetPlan: ("rate_jitter", "size_jitter"),
    FeederPlan: ("rate_jitter", "size_jitter"),
    ForecastPlan: ("noise", "ewma_alpha"),
    FaultPlan: RATE_FIELDS,
}


def canonical_json(spec: ExperimentSpec) -> str:
    """The canonical serialized form: sorted keys, no whitespace.

    Two specs are the same experiment iff their canonical JSON is equal;
    :func:`spec_hash` hashes exactly this string.
    """
    return json.dumps(spec.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def spec_hash(spec: ExperimentSpec) -> str:
    """Content address of a spec: SHA-256 of its canonical JSON.

    The hash keys result caches and stamps every exported artefact
    (see ``repro.analysis.export``), so an artefact file can always be
    traced back to — and regenerated from — the exact spec that made it.
    """
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


def spec_from_scenario(scenario) -> ScenarioSpec:
    """Losslessly re-express a concrete Scenario as a ScenarioSpec.

    Uses no preset — every field is written out — so compiling the
    returned spec reproduces ``scenario`` exactly.
    """
    return ScenarioSpec(
        preset=None,
        name=scenario.name,
        n_devices=scenario.n_devices,
        device_power_w=scenario.device_power_w,
        min_dcd_s=scenario.min_dcd,
        max_dcp_s=scenario.max_dcp,
        rate_per_hour=scenario.arrival_rate_per_hour,
        horizon_s=scenario.horizon,
        demand_cycles=scenario.demand_cycles,
        arrival=scenario.arrival_kind,
        batch_size=scenario.batch_size,
        notes=scenario.notes)


def spec_from_config(config, until: Optional[float] = None,
                     name: Optional[str] = None) -> ExperimentSpec:
    """Losslessly re-express a HanConfig as a single-run ExperimentSpec.

    The exact inverse of :func:`repro.api.compile.compile_config`: the
    deprecation shim for ``run_experiment`` delegates through this, and
    the equivalence test asserts the round trip is bit-identical.
    """
    control = ControlSpec(
        policy=config.policy,
        cp_fidelity=config.cp_fidelity,
        cp_period=config.cp_period,
        topology=config.topology_name,
        refresh_every=config.refresh_every,
        calibration_rounds=config.calibration_rounds,
        shadowing_sigma_db=config.shadowing_sigma_db,
        path_loss_exponent=config.path_loss_exponent,
        ci_derating=config.ci_derating,
        aggregation=config.aggregation,
        controller_id=config.controller_id)
    return ExperimentSpec(
        name=name if name is not None else config.scenario.name,
        kind="single",
        scenario=spec_from_scenario(config.scenario),
        control=control,
        seeds=(config.seed,),
        until_s=until)
