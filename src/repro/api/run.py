"""The one execution call: ``run(spec, jobs=...) -> Result``.

Whatever the spec's kind — one home, a sweep grid, a neighborhood fleet
or a registry artefact — execution funnels through here: the spec is
re-validated, compiled (:mod:`repro.api.compile`) and fanned out over
the :class:`~repro.experiments.runner.ParallelRunner`, and the outcome
comes back in one uniform :class:`Result` envelope carrying the
provenance (spec hash, canonical JSON, seeds, code version) every
exported artefact is stamped with.

Determinism: all randomness in a run derives from the spec's seeds via
named streams, so ``run(spec)`` is bit-identical for any ``jobs`` count
— and two specs with equal canonical JSON produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.analysis.loadstats import LoadStats
from repro.api.compile import (
    compile_fleet,
    compile_run_specs,
    resolve_artefact,
)
from repro.api.spec import ExperimentSpec, canonical_json, spec_hash
from repro.api.validate import validate
from repro.core.system import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cache import CacheLike


@dataclass(frozen=True)
class Provenance:
    """Everything needed to regenerate (or audit) a result.

    Stamped on every :class:`Result` and embedded by the JSON/CSV
    exporters, so an artefact file is self-describing: load the
    ``spec_json``, re-run, compare hashes.
    """

    #: SHA-256 of the spec's canonical JSON (:func:`~repro.api.spec.spec_hash`)
    spec_hash: str
    #: the canonical JSON itself — the experiment, regenerable as data
    spec_json: str
    #: serialized-layout version the spec was validated against
    schema_version: int
    #: ``repro.__version__`` of the code that produced the result
    code_version: str
    #: root seeds the run drew its named RNG streams from (artefact
    #: kinds seed via their generator params; the validator pins this
    #: field to its default there so it can never misstate a seed)
    seeds: tuple[int, ...]

    @property
    def short_hash(self) -> str:
        """First 12 hex digits — enough to eyeball, short enough to print."""
        return self.spec_hash[:12]


@dataclass
class Result:
    """Uniform envelope for every run shape.

    Exactly one payload field is populated, by kind: ``runs`` (single and
    sweep — flat, in compile order), ``neighborhood``, ``grid``, or
    ``artefact``.  The accessors below reshape ``runs`` into the
    per-policy / per-rate views the analysis layer works with.
    """

    spec: ExperimentSpec
    provenance: Provenance
    runs: list[RunResult] = field(default_factory=list)
    neighborhood: Optional[object] = None
    grid: Optional[object] = None
    artefact: Optional[object] = None

    def run_result(self) -> RunResult:
        """The one run of a single-kind, single-seed spec."""
        if len(self.runs) != 1:
            raise ValueError(
                f"expected exactly one run, have {len(self.runs)} "
                f"(kind {self.spec.kind!r}, seeds {self.spec.seeds})")
        return self.runs[0]

    def stats(self) -> list[LoadStats]:
        """Per-run load statistics, in run order."""
        return [run.stats(end=self.spec.until_s) for run in self.runs]

    def by_policy(self) -> dict:
        """Runs grouped per policy (the ``compare_policies`` shape)."""
        from repro.experiments.runner import PolicyOutcome
        policies = self.spec.sweep.policies if self.spec.sweep is not None \
            else (self.spec.control.policy,)
        outcomes = {policy: PolicyOutcome(policy) for policy in policies}
        for run in self.runs:
            outcomes[run.config.policy].results.append(run)
        return outcomes

    def sweep_table(self) -> dict:
        """Runs grouped rate → policy (the ``sweep_rates`` shape)."""
        from repro.experiments.runner import PolicyOutcome
        if self.spec.sweep is None or not self.spec.sweep.rates:
            raise ValueError("spec has no rate axis; use by_policy()")
        policies = self.spec.sweep.policies
        table = {rate: {policy: PolicyOutcome(policy)
                        for policy in policies}
                 for rate in self.spec.sweep.rates}
        for run in self.runs:
            rate = run.config.scenario.arrival_rate_per_hour
            table[rate][run.config.policy].results.append(run)
        return table

    def portable(self) -> "Result":
        """A picklable copy (per-run live agents dropped) for transport."""
        return replace(self, runs=[run.portable() for run in self.runs])

    def render(self) -> str:
        """Plain-text report of whatever the spec produced."""
        from repro.analysis.report import format_table
        footer = (f"spec {self.provenance.short_hash} · schema "
                  f"v{self.provenance.schema_version} · repro "
                  f"{self.provenance.code_version}")
        if self.artefact is not None:
            text = getattr(self.artefact, "text", None)
            body = text if text is not None else repr(self.artefact)
        elif self.neighborhood is not None:
            body = self.neighborhood.render()
        elif self.grid is not None:
            body = self.grid.render()
        else:
            rows = [[run.config.seed,
                     run.config.policy,
                     run.config.scenario.arrival_rate_per_hour,
                     stats.peak_kw, stats.mean_kw, stats.std_kw,
                     stats.energy_kwh]
                    for run, stats in zip(self.runs, self.stats())]
            body = format_table(
                ["seed", "policy", "rate/h", "peak kW", "mean kW",
                 "std kW", "energy kWh"],
                rows, title=f"{self.spec.name} ({self.spec.kind}, "
                            f"{len(self.runs)} runs)")
        return f"{body}\n\n{footer}"


def provenance_of(spec: ExperimentSpec) -> Provenance:
    """Compute the provenance stamp of a spec (without running it)."""
    import repro
    return Provenance(spec_hash=spec_hash(spec),
                      spec_json=canonical_json(spec),
                      schema_version=spec.schema_version,
                      code_version=repro.__version__,
                      seeds=tuple(spec.seeds))


#: What ``run(spec, executor=...)`` accepts: ``"local"`` (in-process,
#: the default), ``"service"`` (route through the durable job queue of
#: :mod:`repro.service` — requires worker daemons on the store), or any
#: object with a ``run(spec) -> Result`` method (e.g. a
#: :class:`~repro.service.client.ServiceClient` bound to a specific
#: store).
EXECUTORS = ("local", "service")


def run(spec: ExperimentSpec, jobs: int = 1,
        mp_context: Optional[str] = None,
        cache: "CacheLike" = None,
        shard_size: Optional[int] = None,
        executor="local") -> Result:
    """Validate, compile and execute a spec; the API's only verb.

    ``jobs`` fans independent units (seed cells, sweep cells,
    neighborhood homes) over the persistent worker pool
    (:func:`repro.experiments.pool.shared_pool` — spawned on first use,
    reused by every later call with the same shape); results are
    bit-identical for any value.  Artefact kinds forward ``jobs`` to
    generators that accept it.

    ``cache`` memoizes the whole call on ``(spec_hash, code_version)``
    (see :mod:`repro.api.cache`): ``True`` uses the default on-disk
    store, a :class:`~repro.api.cache.ResultCache` uses that store, and
    ``None``/``False`` (default) disables caching.  A hit returns the
    stored result without executing anything; because runs are
    bit-deterministic, hits and fresh runs are indistinguishable.

    ``shard_size`` tunes fleet-scale neighborhood execution (see
    :mod:`repro.neighborhood.shard`): like ``jobs`` it is a pure
    execution knob — large fleets auto-shard, ``0`` forces the per-home
    path, and every setting produces bit-identical results.

    ``executor`` selects *where* the spec executes (:data:`EXECUTORS`):
    ``"local"`` runs in this process as always; ``"service"`` submits
    to the default service store's durable queue and blocks for the
    artifact (dedup and crash recovery included — see
    :mod:`repro.service`); an object with ``run(spec)`` is called
    directly (a :class:`~repro.service.client.ServiceClient` bound to a
    specific store).  Execution location can never change a result bit:
    runs are deterministic and service artifacts are produced by this
    very function on the worker side.
    """
    from repro.api.cache import resolve_cache
    if executor != "local":
        if executor == "service":
            from repro.service.client import ServiceClient
            executor = ServiceClient()
        if not hasattr(executor, "run"):
            known = ", ".join(EXECUTORS)
            raise TypeError(
                f"executor must be one of {known} or have a run() "
                f"method, got {executor!r}")
        return executor.run(spec)
    validate(spec)
    provenance = provenance_of(spec)
    store = resolve_cache(cache)
    # The fault scope covers the cache lookup too, not just execution:
    # a spec whose plan corrupts artifact reads must see its own cached
    # result degrade to a recompute (the ``cache.corrupt`` site).
    from repro.faults import fault_scope
    with fault_scope(spec.faults):
        if store is not None:
            hit = store.get(spec, spec_digest=provenance.spec_hash)
            if hit is not None:
                return hit
        result = _execute(spec, provenance, jobs, mp_context, shard_size)
        if store is not None:
            store.put(spec, result, spec_digest=provenance.spec_hash)
    return result


def _execute(spec: ExperimentSpec, provenance: Provenance, jobs: int,
             mp_context: Optional[str],
             shard_size: Optional[int] = None) -> Result:
    """Run a validated spec (the cache-miss path of :func:`run`).

    A :class:`~repro.faults.plan.FaultPlan` on the spec is activated
    for the duration of the execution (:func:`repro.faults.fault_scope`)
    so the injection sites along the fleet paths see it; with no plan
    (or all-zero rates) the scope is a no-op.
    """
    from repro.faults import fault_scope
    with fault_scope(spec.faults):
        return _execute_body(spec, provenance, jobs, mp_context,
                             shard_size)


def _execute_body(spec: ExperimentSpec, provenance: Provenance,
                  jobs: int, mp_context: Optional[str],
                  shard_size: Optional[int] = None) -> Result:
    from repro.experiments.runner import ParallelRunner
    if spec.kind in ("single", "sweep"):
        runner = ParallelRunner(jobs=jobs, mp_context=mp_context)
        runs = runner.run(compile_run_specs(spec))
        return Result(spec=spec, provenance=provenance, runs=runs)
    if spec.kind == "neighborhood":
        from repro.neighborhood.federation import execute_fleet
        fleet = compile_fleet(spec)
        neighborhood = execute_fleet(
            fleet, jobs=jobs, until=spec.until_s, mp_context=mp_context,
            coordination=spec.fleet.coordination, spec=spec,
            shard_size=shard_size, forecast=spec.forecast)
        return Result(spec=spec, provenance=provenance,
                      neighborhood=neighborhood)
    if spec.kind == "grid":
        from repro.api.compile import compile_grid
        from repro.neighborhood.grid import execute_grid
        grid = compile_grid(spec)
        payload = execute_grid(
            grid, jobs=jobs, until=spec.until_s, mp_context=mp_context,
            coordination=spec.grid.coordination, spec=spec,
            shard_size=shard_size)
        return Result(spec=spec, provenance=provenance, grid=payload)
    # artefact
    import inspect
    generator = resolve_artefact(spec.artefact.kind)
    params = dict(spec.artefact.params)
    if jobs > 1 and "jobs" in inspect.signature(generator).parameters:
        params.setdefault("jobs", jobs)
    return Result(spec=spec, provenance=provenance,
                  artefact=generator(**params))
