"""Baseline policies: uncoordinated duty cycling and a central controller.

* :class:`UncoordinatedAgent` — the paper's "w/o coordination" baseline:
  a request starts its device immediately; the device free-runs its duty
  cycle (ON ``minDCD``, OFF ``maxDCP − minDCD``) with phase fixed by the
  arrival instant.  Simultaneous requests stack, producing the load spikes
  Figure 2(a) shows.
* :class:`CentralController` + :class:`CentralizedAgent` — the conventional
  architecture the introduction critiques: requests travel to one
  controller (over any transport: AT collection tree or function calls),
  which runs the *same* admission algorithm and pushes schedules back.
  Used by the ST-vs-AT and single-point-of-failure ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.coordinator import DeviceAgentBase
from repro.core.scheduler import (
    AdmissionDecision,
    SchedulerConfig,
    plan_admissions,
)
from repro.core.state import CpItem, DeviceStatus, SharedView
from repro.han.appliance import Type2Appliance
from repro.han.requests import RequestAnnouncement, UserRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class UncoordinatedAgent(DeviceAgentBase):
    """Immediate, phase-anchored duty cycling (no coordination)."""

    def on_request(self, request: UserRequest) -> None:
        """Start executing right away; extend demand if already running."""
        self.requests[request.request_id] = request
        was_active = self._active
        self._enqueue_demand(request.request_id, request.demand_cycles,
                             extends=was_active)
        self._last_admitted = max(self._last_admitted, request.request_id)
        if not was_active:
            self._active = True
            self._next_burst = self.sim.now  # starts immediately
            self.sim.spawn(self._free_run(),
                           name=f"freerun-{self.device_id}")
        self._bump_status()

    def _free_run(self):
        """ON minDCD / OFF (maxDCP − minDCD), phase set by arrival."""
        spec = self.config.spec
        while self._remaining > 0:
            burst_start = self.sim.now
            self.device.turn_on()
            yield self.sim.timeout(spec.min_dcd)
            self.device.turn_off()
            self._account_burst(burst_start)
            if self._remaining > 0:
                self._next_burst = burst_start + spec.max_dcp
                self._bump_status()
                yield self.sim.timeout(spec.max_dcp - spec.min_dcd)
            else:
                self._bump_status()
        self._finish_if_done()
        self._bump_status()

    # -- CP application interface (status monitoring only) ---------------------------

    def cp_payload(self, node: int, round_index: int) -> Optional[CpItem]:
        if round_index == -1 or self._dirty:
            self._dirty = False
            return self.item()
        return None

    def cp_deliver(self, node: int, packets: dict[int, CpItem],
                   round_index: int) -> None:
        self.view.merge_items(packets.values())


class CentralController:
    """Authoritative scheduler living at one node.

    Transport-agnostic: the owner wires :meth:`on_report` to whatever
    carries reports upward and supplies ``disseminate`` for pushing
    decisions downward (e.g. :class:`repro.mac.CollectionNetwork`).

    DIs remain the only writers of their own :class:`DeviceStatus`; the
    controller keeps *planning overlays* — statuses it expects DIs to adopt
    once a schedule arrives — and drops each overlay as soon as the DI's
    own report catches up.  This avoids two version counters fighting over
    one view entry.
    """

    def __init__(self, config: SchedulerConfig,
                 disseminate: Callable[[int, object], None],
                 now: Callable[[], float]):
        self.config = config
        self.disseminate = disseminate
        self.now = now
        self.view = SharedView()
        self._overlays: dict[int, DeviceStatus] = {}
        self.version = 0
        self.alive = True
        self.decisions_made = 0

    def on_report(self, origin: int, payload: object) -> None:
        """Fold one upward report in and reschedule if needed."""
        if not self.alive:
            return
        kind, body = payload
        if kind == "status":
            self.view.merge_item(CpItem(body))
            overlay = self._overlays.get(body.device_id)
            if (overlay is not None and body.last_admitted_request
                    >= overlay.last_admitted_request):
                del self._overlays[body.device_id]
            return
        if kind != "request":
            raise ValueError(f"unknown report kind {kind!r}")
        announcement: RequestAnnouncement = body
        planning = self._planning_view()
        planning.pending[announcement.request_id] = announcement
        decisions = plan_admissions(planning, self.config, self.now())
        if not decisions:
            return
        for decision in decisions:
            pending = planning.pending.get(decision.request_id)
            self._record_overlay(decision,
                                 pending.power_w if pending else 0.0)
        self.decisions_made += len(decisions)
        self.version += 1
        self.disseminate(self.version, tuple(decisions))

    def _planning_view(self) -> SharedView:
        """Reported statuses with unconfirmed overlays layered on top."""
        planning = SharedView()
        planning.statuses = dict(self.view.statuses)
        planning.pending = dict(self.view.pending)
        for device_id, overlay in self._overlays.items():
            reported = planning.statuses.get(device_id)
            if (reported is None or reported.last_admitted_request
                    < overlay.last_admitted_request):
                planning.statuses[device_id] = overlay
        return planning

    def _record_overlay(self, decision: AdmissionDecision,
                        power_hint: float) -> None:
        base = self._overlays.get(decision.device_id) \
            or self.view.status_of(decision.device_id)
        power = max(base.power_w if base else 0.0, power_hint)
        remaining = (base.remaining_cycles if base else 0) \
            + decision.demand_cycles
        if base is not None and base.active:
            slot = base.assigned_slot
            burst = base.burst_start
        else:
            slot = decision.slot
            burst = decision.start_time
        if slot is None and burst is None:
            burst = self.now()  # defensive: keep the status well-formed
        version = (base.version if base else 0) + 1
        self._overlays[decision.device_id] = DeviceStatus(
            device_id=decision.device_id,
            version=version,
            active=True,
            remaining_cycles=remaining,
            assigned_slot=slot,
            power_w=power,
            last_admitted_request=decision.request_id,
            burst_start=burst)

    def fail(self) -> None:
        """Single point of failure, exercised by the ablation."""
        self.alive = False


class CentralizedAgent(DeviceAgentBase):
    """DI obeying a central controller: report up, follow schedules down."""

    def __init__(self, sim: "Simulator", device: Type2Appliance,
                 config: SchedulerConfig,
                 submit: Callable[[int, object], None]):
        super().__init__(sim, device, config)
        self.submit = submit

    def on_request(self, request: UserRequest) -> None:
        self.requests[request.request_id] = request
        announcement = RequestAnnouncement.of(request,
                                              power_w=self.device.power_w)
        self.submit(self.device_id, ("request", announcement))

    def on_schedule(self, decisions: tuple[AdmissionDecision, ...]) -> None:
        """Apply the controller's decisions that concern this device."""
        changed = False
        for decision in decisions:
            if decision.device_id != self.device_id:
                continue
            if decision.request_id <= self._last_admitted:
                continue  # duplicate dissemination
            self._apply_decision(decision)
            changed = True
        if changed:
            self._bump_status()

    def _bump_status(self) -> None:
        super()._bump_status()
        # Keep the controller's load projection fresh.
        self.submit(self.device_id, ("status", self.status()))

    # -- CP interface (unused under the AT transport, present for symmetry) -------

    def cp_payload(self, node: int, round_index: int) -> Optional[CpItem]:
        return None

    def cp_deliver(self, node: int, packets: dict[int, CpItem],
                   round_index: int) -> None:
        self.view.merge_items(packets.values())
