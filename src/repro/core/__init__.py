"""The paper's contribution: collaborative decentralized load management."""

from repro.core.baselines import (
    CentralController,
    CentralizedAgent,
    UncoordinatedAgent,
)
from repro.core.coordinator import CoordinatedAgent, DeviceAgentBase
from repro.core.scheduler import (
    AdmissionDecision,
    SchedulerConfig,
    decisions_for_device,
    plan_admissions,
    slot_loads,
)
from repro.core.state import CpItem, DeviceStatus, SharedView
from repro.core.system import (
    FIDELITIES,
    POLICIES,
    HanConfig,
    HanSystem,
    TOPOLOGIES,
    RunResult,
    execute_config,
    make_topology,
    run_experiment,
)

__all__ = [
    "AdmissionDecision",
    "CentralController",
    "CentralizedAgent",
    "CoordinatedAgent",
    "CpItem",
    "DeviceAgentBase",
    "DeviceStatus",
    "FIDELITIES",
    "HanConfig",
    "HanSystem",
    "POLICIES",
    "RunResult",
    "SchedulerConfig",
    "SharedView",
    "TOPOLOGIES",
    "UncoordinatedAgent",
    "decisions_for_device",
    "execute_config",
    "make_topology",
    "plan_admissions",
    "run_experiment",
    "slot_loads",
]
