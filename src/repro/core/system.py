"""Top-level system composition: build, run and measure a whole HAN.

:class:`HanSystem` wires the simulation kernel, the radio substrate, a
Communication-Plane driver, one agent per Device Interface and the workload
generator, then runs the experiment and returns a :class:`RunResult` with
everything the analysis layer needs.

Policies:

* ``"coordinated"``   — the paper's decentralized scheme (MiniCast CP).
* ``"uncoordinated"`` — free-running duty cycles (Figure 2's baseline).
* ``"centralized"``   — same algorithm at a single controller, reports and
  schedules carried by the AT stack (or direct calls under ``"ideal"``).

CP fidelities: ``"ideal"``, ``"round"`` (calibrated sampling — default) and
``"slot"`` (full flood simulation); see :mod:`repro.st.rounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.analysis.loadstats import LoadStats, load_stats
from repro.core.baselines import (
    CentralController,
    CentralizedAgent,
    UncoordinatedAgent,
)
from repro.core.coordinator import CoordinatedAgent, DeviceAgentBase
from repro.core.scheduler import SchedulerConfig
from repro.han.appliance import Type2Appliance
from repro.han.dutycycle import DutyCycleSpec
from repro.han.meter import SmartMeter
from repro.han.requests import UserRequest
from repro.mac.collection import CollectionNetwork, CollectionStats
from repro.radio.channel import Channel
from repro.radio.energy import EnergyMeter
from repro.radio.medium import CsmaMedium, FloodMedium
from repro.radio.phy import DEFAULT_RADIO_CONFIG, RadioConfig
from repro.radio.topology import Topology, flocklab26, grid_layout
from repro.sim.kernel import Simulator
from repro.sim.monitor import StepSeries
from repro.sim.rng import RandomStreams
from repro.st.minicast import MiniCastConfig
from repro.st.rounds import (
    CpCalibration,
    CpStats,
    IdealCP,
    SampledCP,
    SlotLevelCP,
)
from repro.workloads.arrivals import (
    BatchArrivals,
    MmppArrivals,
    PoissonArrivals,
    fixed_demand,
)
from repro.workloads.scenarios import Scenario

POLICIES = ("coordinated", "uncoordinated", "centralized")
FIDELITIES = ("ideal", "round", "slot")
#: Topology names :func:`make_topology` resolves.
TOPOLOGIES = ("flocklab26", "grid", "line", "home")


@dataclass
class HanConfig:
    """Everything needed to reproduce one run exactly."""

    scenario: Scenario
    policy: str = "coordinated"
    cp_fidelity: str = "round"
    cp_period: float = 2.0
    seed: int = 1
    topology_name: str = "flocklab26"
    refresh_every: int = 15
    calibration_rounds: int = 20
    shadowing_sigma_db: float = 3.0
    path_loss_exponent: Optional[float] = None
    ci_derating: Optional[float] = None
    aggregation: int = 2
    controller_id: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.cp_fidelity not in FIDELITIES:
            raise ValueError(
                f"cp_fidelity must be one of {FIDELITIES}, "
                f"got {self.cp_fidelity!r}")


@dataclass
class RunResult:
    """Outputs of one complete run."""

    config: HanConfig
    load_w: StepSeries
    requests: list[UserRequest]
    horizon: float
    cp_stats: Optional[CpStats] = None
    cp_calibration: Optional[CpCalibration] = None
    st_energy: Optional[dict[int, EnergyMeter]] = None
    at_stats: Optional[CollectionStats] = None
    agents: dict[int, DeviceAgentBase] = field(default_factory=dict)
    #: Per-device ON intervals ``(on_at, off_at)`` (``off_at`` is None for a
    #: burst still open at the horizon).  Plain data, so invariant checks
    #: survive pickling across process boundaries.
    bursts: dict[int, list[tuple[float, Optional[float]]]] = \
        field(default_factory=dict)

    def stats(self, start: float = 0.0,
              end: Optional[float] = None) -> LoadStats:
        """Load statistics over ``[start, end)`` (default: whole run)."""
        return load_stats(self.load_w, start,
                          end if end is not None else self.horizon)

    def waiting_times(self) -> list[float]:
        """Arrival → first-execution delays of requests that ran."""
        return [r.waiting_time for r in self.requests
                if r.waiting_time is not None]

    def completed_requests(self) -> int:
        return sum(1 for r in self.requests if r.completed_at is not None)

    def portable(self) -> "RunResult":
        """A picklable copy for inter-process transport.

        Live agents hold simulator coroutines (unpicklable generators); every
        other field — including :attr:`bursts`, which mirrors the appliance
        switching history — is plain data, so dropping ``agents`` is the only
        information loss.
        """
        return replace(self, agents={})

    def st_energy_estimate_j(self) -> Optional[float]:
        """Mean per-node CP radio energy over the run.

        Exact for ``slot`` fidelity; for ``round`` fidelity it scales the
        calibrated per-round cost by the number of rounds (the radio runs
        every round regardless of the sampling optimisation).
        """
        if self.st_energy is not None:
            values = [m.energy_joules() for m in self.st_energy.values()]
            return float(np.mean(values)) if values else None
        if self.cp_calibration is not None and self.cp_stats is not None:
            return self.cp_calibration.round_energy_j \
                * self.cp_stats.rounds_total
        return None


class HanSystem:
    """Builder + runner for one experiment."""

    def __init__(self, config: HanConfig):
        self.config = config
        scenario = config.scenario
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.meter = SmartMeter(self.sim)
        self.spec = DutyCycleSpec(min_dcd=scenario.min_dcd,
                                  max_dcp=scenario.max_dcp)
        self.sched_config = SchedulerConfig(spec=self.spec)
        self.device_ids = list(range(scenario.n_devices))

        self.appliances: dict[int, Type2Appliance] = {}
        for device_id in self.device_ids:
            self.appliances[device_id] = Type2Appliance(
                self.sim, device_id, f"device-{device_id}",
                scenario.device_power_w, self.spec, meter=self.meter.gauge)

        self.topology: Optional[Topology] = None
        self.channel: Optional[Channel] = None
        self.flood_medium: Optional[FloodMedium] = None
        if config.cp_fidelity != "ideal" or config.policy == "centralized":
            self._build_radio()

        self.agents: dict[int, DeviceAgentBase] = {}
        #: DIs that may hold a fresh CpItem — a conservative superset
        #: maintained via each agent's ``_on_dirty`` observer, so CP
        #: rounds skip idle agents without even calling them (see
        #: :meth:`cp_pending_nodes`)
        self._cp_dirty: set[int] = set()
        self.cp = None
        self.controller: Optional[CentralController] = None
        self.at_network: Optional[CollectionNetwork] = None
        self.st_energy: Optional[dict[int, EnergyMeter]] = None
        self.cp_calibration: Optional[CpCalibration] = None
        if config.policy == "coordinated":
            self._build_coordinated()
        elif config.policy == "uncoordinated":
            self._build_uncoordinated()
        else:
            self._build_centralized()

        self.arrivals = self._build_arrivals()

    # -- construction ------------------------------------------------------------

    def _build_radio(self) -> None:
        radio_config = DEFAULT_RADIO_CONFIG
        if self.config.ci_derating is not None:
            radio_config = RadioConfig(
                ci_derating=self.config.ci_derating)
        self.topology = make_topology(self.config.topology_name,
                                      len(self.device_ids))
        channel_kwargs = {
            "shadowing_sigma_db": self.config.shadowing_sigma_db}
        if self.config.path_loss_exponent is not None:
            channel_kwargs["exponent"] = self.config.path_loss_exponent
        self.channel = self.topology.make_channel(
            rng=self.streams.stream("channel"), config=radio_config,
            **channel_kwargs)
        self.flood_medium = FloodMedium(self.channel,
                                        self.streams.stream("floods"))

    def _minicast_config(self) -> MiniCastConfig:
        return MiniCastConfig(aggregation=self.config.aggregation)

    def _build_coordinated(self) -> None:
        for device_id in self.device_ids:
            agent = CoordinatedAgent(self.sim, self.appliances[device_id],
                                     self.sched_config)
            self.agents[device_id] = agent
            self.sim.spawn(agent.execution_plane(), name=f"ep-{device_id}")
        self._build_cp()

    def _build_uncoordinated(self) -> None:
        for device_id in self.device_ids:
            self.agents[device_id] = UncoordinatedAgent(
                self.sim, self.appliances[device_id], self.sched_config)
        self._build_cp()

    def _watch_dirty_agents(self) -> None:
        """Subscribe to every agent's dirty flag (all start pending)."""
        for device_id, agent in self.agents.items():
            agent._on_dirty = self._cp_dirty.add
            self._cp_dirty.add(device_id)

    def _build_cp(self) -> None:
        self._watch_dirty_agents()
        fidelity = self.config.cp_fidelity
        if fidelity == "ideal":
            self.cp = IdealCP(self.sim, self, self.device_ids,
                              period=self.config.cp_period)
        elif fidelity == "round":
            self.cp_calibration = SampledCP.calibrate(
                self.flood_medium, self.device_ids,
                self._minicast_config(),
                rounds=self.config.calibration_rounds)
            self.cp = SampledCP(
                self.sim, self, self.device_ids,
                self.cp_calibration.delivery_prob,
                self.streams.stream("cp-sampling"),
                period=self.config.cp_period,
                refresh_every=self.config.refresh_every,
                round_duration=self.cp_calibration.round_duration,
                round_energy_j=self.cp_calibration.round_energy_j)
        else:  # slot
            self.st_energy = {i: EnergyMeter() for i in self.device_ids}
            self.cp = SlotLevelCP(
                self.sim, self, self.device_ids, self.flood_medium,
                period=self.config.cp_period,
                minicast_config=self._minicast_config(),
                energy=self.st_energy)
        self.cp.start()

    def _build_centralized(self) -> None:
        if self.config.cp_fidelity == "ideal":
            self._build_centralized_direct()
        else:
            self._build_centralized_at()

    def _build_centralized_direct(self) -> None:
        def disseminate(version: int, decisions: object) -> None:
            for agent in self.agents.values():
                agent.on_schedule(decisions)

        self.controller = CentralController(
            self.sched_config, disseminate, lambda: self.sim.now)

        def submit(origin: int, payload: object) -> None:
            if self.controller.alive:
                self.controller.on_report(origin, payload)

        for device_id in self.device_ids:
            agent = CentralizedAgent(self.sim, self.appliances[device_id],
                                     self.sched_config, submit)
            self.agents[device_id] = agent
            self.sim.spawn(agent.execution_plane(), name=f"ep-{device_id}")

    def _build_centralized_at(self) -> None:
        csma_medium = CsmaMedium(self.sim, self.channel,
                                 self.streams.stream("csma-medium"))
        self.at_network = CollectionNetwork(
            self.sim, self.channel, csma_medium, self.device_ids,
            sink=self.config.controller_id,
            rng_factory=lambda name: self.streams.stream(name),
            on_report=lambda report: self.controller.on_report(
                report.origin, report.payload),
            on_schedule=lambda node, bundle: self.agents[node].on_schedule(
                bundle.payload))
        self.controller = CentralController(
            self.sched_config,
            disseminate=self.at_network.disseminate,
            now=lambda: self.sim.now)
        for device_id in self.device_ids:
            agent = CentralizedAgent(
                self.sim, self.appliances[device_id], self.sched_config,
                submit=self.at_network.submit_report)
            self.agents[device_id] = agent
            self.sim.spawn(agent.execution_plane(), name=f"ep-{device_id}")

    def _build_arrivals(self):
        scenario = self.config.scenario
        sinks = {device_id: self.agents[device_id].on_request
                 for device_id in self.device_ids}
        rng = self.streams.stream("arrivals")
        demand = fixed_demand(scenario.demand_cycles)
        if scenario.arrival_kind == "poisson":
            return PoissonArrivals(self.sim, scenario.arrival_rate_per_hour,
                                   self.device_ids, sinks, rng, demand)
        if scenario.arrival_kind == "batch":
            return BatchArrivals(self.sim, scenario.arrival_rate_per_hour,
                                 self.device_ids, sinks, rng,
                                 batch_size=scenario.batch_size,
                                 demand=demand)
        if scenario.arrival_kind == "mmpp":
            return MmppArrivals(self.sim, scenario.arrival_rate_per_hour,
                                self.device_ids, sinks, rng, demand=demand)
        raise ValueError(
            f"unknown arrival kind {scenario.arrival_kind!r}")

    # -- CpApplication interface (multiplexes the per-DI agents) -----------------

    def cp_pending_nodes(self) -> set:
        """Nodes that may share a payload this round (superset, cheap).

        The CP drivers use this to skip idle DIs without a call per node
        per round; a node leaves the set only once :meth:`cp_payload`
        confirms its agent has nothing left to share, so the set can
        never under-report (skipping a node here is behaviourally
        identical to its ``cp_payload`` returning ``None``).
        """
        return self._cp_dirty

    def cp_payload(self, node: int, round_index: int):
        agent = self.agents[node]
        payload = agent.cp_payload(node, round_index)
        if not agent.cp_pending:
            self._cp_dirty.discard(node)
        return payload

    def cp_deliver(self, node: int, packets: dict, round_index: int) -> None:
        self.agents[node].cp_deliver(node, packets, round_index)

    # -- running -----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> RunResult:
        """Run the experiment and package the results."""
        horizon = until if until is not None else self.config.scenario.horizon
        self.sim.spawn(self.arrivals.run(), name="arrivals")
        self.sim.run(until=horizon)
        return RunResult(
            config=self.config,
            load_w=self.meter.load_series_w,
            requests=list(self.arrivals.requests),
            horizon=horizon,
            cp_stats=self.cp.stats if self.cp is not None else None,
            cp_calibration=self.cp_calibration,
            st_energy=self.st_energy,
            at_stats=(self.at_network.snapshot_stats()
                      if self.at_network is not None else None),
            agents=dict(self.agents),
            bursts={device_id: [(record.on_at, record.off_at)
                                for record in appliance.history]
                    for device_id, appliance in self.appliances.items()})


def make_topology(name: str, n: int) -> Topology:
    """Resolve a topology by name, adapted to ``n`` devices."""
    if name == "flocklab26":
        base = flocklab26()
        if n == base.n:
            return base
        if n < base.n:
            return Topology(f"flocklab26-first{n}", base.positions[:n])
        # Larger fleets: extend with a grid of the same density.
        cols = math.ceil(math.sqrt(n))
        rows = math.ceil(n / cols)
        grid = grid_layout(rows, cols, spacing=18.0)
        return Topology(f"grid-{n}", grid.positions[:n])
    if name == "grid":
        cols = math.ceil(math.sqrt(n))
        rows = math.ceil(n / cols)
        grid = grid_layout(rows, cols, spacing=18.0)
        return Topology(f"grid-{n}", grid.positions[:n])
    if name == "line":
        from repro.radio.topology import linear_layout
        base = linear_layout(n, spacing=20.0)
        return base
    if name == "home":
        from repro.radio.topology import home_layout
        per_room = math.ceil(n / 6)
        layout = home_layout(3, 2, per_room)
        return Topology(f"home-{n}", layout.positions[:n])
    raise ValueError(f"unknown topology {name!r}")


def execute_config(config: HanConfig,
                   until: Optional[float] = None) -> RunResult:
    """Execute one fully-specified config: build the system, run, package.

    This is the non-deprecated execution primitive the spec API bottoms
    out in (``repro.api.run`` → ``ParallelRunner`` → here); application
    code should describe runs as :class:`~repro.api.spec.ExperimentSpec`
    and call :func:`repro.api.run.run` instead.
    """
    return HanSystem(config).run(until=until)


def run_experiment(config: HanConfig,
                   until: Optional[float] = None) -> RunResult:
    """Deprecated convenience runner; use :func:`repro.api.run.run`.

    Kept as a shim: builds the equivalent single-run
    :class:`~repro.api.spec.ExperimentSpec` and delegates to the spec
    API, which produces bit-identical results (the agents field is
    dropped, as for any runner-transported result).
    """
    import warnings
    warnings.warn(
        "run_experiment() is deprecated; build an ExperimentSpec and "
        "call repro.api.run() instead", DeprecationWarning, stacklevel=2)
    from repro.api import run as run_spec
    from repro.api.spec import spec_from_config
    return run_spec(spec_from_config(config, until=until)).runs[0]
