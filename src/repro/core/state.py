"""Shared state exchanged over the Communication Plane.

Every DI shares a :class:`CpItem` — its device's current
:class:`DeviceStatus` plus any not-yet-admitted :class:`RequestAnnouncement`
items that arrived locally.  Each DI folds received items into a
:class:`SharedView`; statuses are versioned per device, so stale or
reordered deliveries never regress the view (merge is idempotent and
commutative — the property tests rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.han.requests import RequestAnnouncement

#: serialized footprint of a status on the radio, bytes
STATUS_WIRE_BYTES: int = 14


@dataclass(frozen=True)
class DeviceStatus:
    """One device's coordination-relevant state, as shared with all DIs.

    Exactly one of ``assigned_slot`` (grid scheduling mode) or
    ``burst_start`` (stagger mode — absolute time of the next claimed
    burst) is meaningful while the device is active.
    """

    device_id: int
    version: int
    active: bool
    remaining_cycles: int
    assigned_slot: Optional[int]
    power_w: float
    #: highest request id this device has admitted (clears announcements)
    last_admitted_request: int = 0
    #: absolute start of the next claimed ON burst (stagger mode)
    burst_start: Optional[float] = None

    def __post_init__(self) -> None:
        if self.remaining_cycles < 0:
            raise ValueError("remaining_cycles cannot be negative")
        if self.active and self.assigned_slot is None \
                and self.burst_start is None:
            raise ValueError("active devices must claim a slot or a start")


@dataclass(frozen=True)
class CpItem:
    """One DI's payload for a Communication-Plane round."""

    status: DeviceStatus
    announcements: tuple[RequestAnnouncement, ...] = ()

    @property
    def wire_bytes(self) -> int:
        """Approximate serialized size, for radio airtime accounting."""
        return (STATUS_WIRE_BYTES
                + RequestAnnouncement.WIRE_BYTES * len(self.announcements))


@dataclass
class SharedView:
    """A DI's best knowledge of every device and outstanding request.

    :attr:`change_epoch` counts effective mutations — it advances exactly
    when a merge changed what the scheduler could read, never on
    idempotent re-deliveries — so planners can tell *whether* (and
    callers caching derived keys, *when*) a view moved since they last
    looked (see :meth:`plan_key` and
    :func:`repro.core.scheduler.plan_admissions`).
    """

    statuses: dict[int, DeviceStatus] = field(default_factory=dict)
    pending: dict[int, RequestAnnouncement] = field(default_factory=dict)
    #: monotone count of effective mutations (excluded from comparisons —
    #: two views with equal content are equal whatever their histories)
    change_epoch: int = field(default=0, compare=False)
    #: cached :meth:`plan_key` content parts + the epoch they describe
    _key_cache: Optional[tuple] = field(default=None, repr=False,
                                        compare=False)

    def merge_item(self, item: CpItem) -> bool:
        """Fold one received payload in; True if anything changed."""
        changed = self._merge_status(item.status)
        for announcement in item.announcements:
            if self._admittable(announcement):
                if announcement.request_id not in self.pending:
                    self.pending[announcement.request_id] = announcement
                    self._mutated()
                    changed = True
        return changed

    def _mutated(self) -> None:
        """Advance the epoch (and drop caches) after an effective change."""
        self.change_epoch += 1
        self._key_cache = None

    def merge_items(self, items: Iterable[CpItem]) -> bool:
        """Fold several payloads; True if anything changed."""
        changed = False
        for item in items:
            changed |= self.merge_item(item)
        return changed

    def _merge_status(self, status: DeviceStatus) -> bool:
        existing = self.statuses.get(status.device_id)
        if existing is not None and existing.version >= status.version:
            # Stale (or duplicate) status: keep the newer one, but still
            # prune any pending announcements the kept status covers, so
            # merge stays order-insensitive.
            self._clear_admitted(existing)
            return False
        self.statuses[status.device_id] = status
        self._mutated()
        self._clear_admitted(status)
        return True

    def _admittable(self, announcement: RequestAnnouncement) -> bool:
        status = self.statuses.get(announcement.device_id)
        if status is None:
            return True
        return announcement.request_id > status.last_admitted_request

    def _clear_admitted(self, status: DeviceStatus) -> None:
        stale = [rid for rid, ann in self.pending.items()
                 if ann.device_id == status.device_id
                 and rid <= status.last_admitted_request]
        for rid in stale:
            del self.pending[rid]
        if stale:
            self._mutated()

    # -- queries --------------------------------------------------------------

    def plan_key(self) -> tuple[tuple, tuple]:
        """``(statuses_part, pending_part)`` — everything planning reads.

        Full value tuples (hash collisions degrade to dict probes, never
        wrong plans), cached against :attr:`change_epoch` so the O(D log D)
        sort is paid once per effective view change instead of once per
        planning call — most calls in a CP round hit views that did not
        move since the last round's key build.
        """
        cache = self._key_cache
        if cache is not None and cache[0] == self.change_epoch:
            return cache[1]
        key = (tuple(sorted(self.statuses.items())),
               tuple(sorted(self.pending.items())))
        self._key_cache = (self.change_epoch, key)
        return key

    def active_statuses(self) -> list[DeviceStatus]:
        """Devices currently executing (sorted by id, deterministic)."""
        return sorted((s for s in self.statuses.values() if s.active),
                      key=lambda s: s.device_id)

    def pending_ordered(self) -> list[RequestAnnouncement]:
        """Outstanding requests in the paper's one-by-one admission order."""
        return sorted(self.pending.values(), key=lambda a: a.sort_key)

    def status_of(self, device_id: int) -> Optional[DeviceStatus]:
        return self.statuses.get(device_id)

    def consistency_digest(self) -> int:
        """Hash of the coordination-relevant content.

        Two DIs with equal digests are guaranteed to derive identical
        schedules; tests use this to measure view convergence.
        """
        status_part = tuple(sorted(
            (s.device_id, s.version, s.active, s.remaining_cycles,
             s.assigned_slot, s.last_admitted_request, s.burst_start)
            for s in self.statuses.values()))
        pending_part = tuple(sorted(self.pending))
        return hash((status_part, pending_part))
