"""The collaborative duty-cycle scheduling algorithm (the contribution).

Deterministic and side-effect free: every DI runs exactly this code on its
:class:`~repro.core.state.SharedView`; identical views yield identical
decisions, which is what makes the scheme decentralized yet coherent.

The algorithm (paper §II) admits requests **one by one** in
``(arrival, id)`` order and guarantees every active and newly requested
device at least one ``minDCD`` execution inside every ``maxDCP`` window.
Two placement modes implement the "coordinate the ON periods" step:

* ``"stagger"`` (default, the paper's behaviour) — each admitted device
  claims a concrete burst start inside ``[now, now + maxDCP − minDCD]``,
  chosen to minimise the projected peak concurrent load; while demand
  remains the burst recurs every ``maxDCP``.  Starts therefore interleave
  one by one and total load moves in single-device steps.
* ``"grid"`` (ablation variant) — time is a grid of ``maxDCP`` epochs
  split into ``minDCD`` slots; each device owns the least-loaded slot
  position.  Simpler, but synchronises switching at slot boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.state import DeviceStatus, SharedView
from repro.han.dutycycle import DutyCycleGrid, DutyCycleSpec
from repro.han.requests import RequestAnnouncement

MODES = ("stagger", "grid")
DEFERRALS = ("period", "strict")


@dataclass(frozen=True)
class AdmissionDecision:
    """What the scheduler decided for one pending request."""

    request_id: int
    device_id: int
    #: True when the request extends an already-active device
    extends: bool
    demand_cycles: int
    #: claimed burst start (stagger mode; None when extending)
    start_time: Optional[float] = None
    #: claimed slot position (grid mode)
    slot: Optional[int] = None


@dataclass
class SchedulerConfig:
    """Knobs of the collaborative scheduler."""

    spec: DutyCycleSpec
    mode: str = "stagger"
    grid_origin: float = 0.0
    #: weigh devices by power (True) or count (False) when balancing
    balance_by_power: bool = True
    #: how late a first burst may start relative to the request:
    #: "period" — the burst *starts* within maxDCP (default; the paper's
    #: "execution ... within a single period of maxDCP");
    #: "strict" — the burst also *completes* within maxDCP.
    deferral: str = "period"
    #: placement granularity guard for float comparisons, seconds
    epsilon: float = 1e-6

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.deferral not in DEFERRALS:
            raise ValueError(
                f"deferral must be one of {DEFERRALS}, got {self.deferral!r}")

    @property
    def start_latitude(self) -> float:
        """Latest admissible burst start, relative to admission time."""
        if self.deferral == "strict":
            return self.spec.max_dcp - self.spec.min_dcd
        return self.spec.max_dcp

    def make_grid(self) -> DutyCycleGrid:
        """The slot grid placements snap to in ``grid`` mode."""
        return DutyCycleGrid(self.spec, self.grid_origin)


#: Exact-key memo of recent :func:`plan_admissions` results.  Planning is
#: a pure function, and within one CP round every converged DI plans the
#: *same* ``(view content, config, now)`` — decentralized-yet-coherent by
#: design — so N identical per-DI planning passes collapse into one
#: computation plus N-1 lookups.  Keys are full value tuples (frozen
#: dataclasses), never bare hashes, so a hash collision degrades to a
#: dict probe, not a wrong plan.
_PLAN_MEMO: dict[tuple, list[AdmissionDecision]] = {}
_PLAN_MEMO_MAX = 32

#: Incremental planning traces keyed ``(projected intervals, config,
#: now)`` — the view-diff companion to the exact memo.  Planning reads a
#: view's statuses through exactly two projections: the claimed-burst
#: intervals of active devices (:func:`_claimed_intervals`) and one
#: ``(active, weight)`` snapshot per processed announcement — so the
#: trace keys on those *contents*, not on exact status equality.  Status
#: churn that leaves both projections unchanged (version bumps, inactive
#: devices flipping fields planning never reads, merged duplicates)
#: lands on the same trace, which is what makes per-epoch online
#: replanning sub-linear in the unchanged homes.  Orders that share a
#: prefix of ``(announcement, snapshot)`` pairs replay from the prefix
#: checkpoint and re-plan only the divergent suffix; planning is a
#: sequential state evolution whose per-item state (decision list,
#: projected-interval list) only ever *appends* — bit-identical to
#: planning from scratch, by purity.
_PLAN_TRACES: dict[tuple, "_PlanTrace"] = {}
_PLAN_TRACES_MAX = 32

#: observability counters of the trace layer, for tests and the replan
#: benchmarks: trace ``hits``/``misses`` plus how many admissions were
#: ``reused`` from a trace prefix vs ``planned`` fresh
PLAN_TRACE_STATS = {"hits": 0, "misses": 0, "reused": 0, "planned": 0}


def reset_plan_caches() -> None:
    """Drop the planner memo, traces and counters (tests/benchmarks)."""
    _PLAN_MEMO.clear()
    _PLAN_TRACES.clear()
    for key in PLAN_TRACE_STATS:
        PLAN_TRACE_STATS[key] = 0


class _PlanTrace:
    """Replayable planning state over one ``(intervals, config, now)``."""

    __slots__ = ("pending", "decisions", "intervals", "checkpoints",
                 "snapshots")

    def __init__(self, intervals: list):
        #: admission order processed so far (announcement values)
        self.pending: list[RequestAnnouncement] = []
        self.decisions: list[AdmissionDecision] = []
        #: base projected intervals + one append per placed cycle
        self.intervals = intervals
        #: ``(len(decisions), len(intervals))`` before item 0 and after
        #: every processed item — the suffix-replay entry points
        self.checkpoints: list[tuple[int, int]] = [(0, len(intervals))]
        #: the ``(active, weight)`` status projection each processed
        #: announcement was planned under — prefix reuse requires the
        #: current view to project identically, announcement by
        #: announcement
        self.snapshots: list[tuple[bool, float]] = []


def _config_key(config: SchedulerConfig) -> tuple:
    """The scheduler knobs planning reads, as one hashable value."""
    return (config.spec, config.mode, config.grid_origin,
            config.balance_by_power, config.deferral, config.epsilon)


def plan_admissions(view: SharedView, config: SchedulerConfig,
                    now: float) -> list[AdmissionDecision]:
    """Decide placements for every pending request in ``view``.

    Pure function of ``(view, config, now)``: DIs holding the same view at
    the same CP round derive the same plan.  Requests are processed in the
    paper's one-by-one ``(arrival, id)`` order; requests for already-active
    devices extend demand without moving the claim.

    Two reuse layers make the N-DI re-planning cheap, both bit-identical
    by purity: the exact-content memo (``_PLAN_MEMO``) collapses fully
    converged views into one computation, and the view-diff traces
    (``_PLAN_TRACES``) let views that diverge only in their pending tail
    re-plan just the affected suffix of the admission order.
    """
    statuses_part, pending_part = view.plan_key()
    config_part = _config_key(config)
    key = (statuses_part, pending_part, config_part, now)
    cached = _PLAN_MEMO.get(key)
    if cached is not None:
        return list(cached)
    if config.mode == "grid":
        decisions = _plan_grid(view, config, now)
    else:
        decisions = _plan_stagger(view, config, now, config_part)
    if len(_PLAN_MEMO) >= _PLAN_MEMO_MAX:
        _PLAN_MEMO.clear()
    _PLAN_MEMO[key] = decisions
    return list(decisions)


# ---------------------------------------------------------------------------
# stagger mode
# ---------------------------------------------------------------------------

def _claimed_intervals(view: SharedView, config: SchedulerConfig,
                       horizon_start: float,
                       horizon_end: float) -> list[tuple[float, float, float]]:
    """Projected ``(start, end, power)`` bursts of active devices.

    Each active device recurs every ``maxDCP`` from its claimed
    ``burst_start`` for its remaining cycles; only the parts overlapping
    the horizon matter for placement.
    """
    spec = config.spec
    intervals: list[tuple[float, float, float]] = []
    for status in view.active_statuses():
        if status.burst_start is None:
            continue
        weight = status.power_w if config.balance_by_power else 1.0
        for k in range(status.remaining_cycles):
            start = status.burst_start + k * spec.max_dcp
            end = start + spec.min_dcd
            if end <= horizon_start:
                continue
            if start >= horizon_end:
                break
            intervals.append((start, end, weight))
    return intervals


def _window_peak(intervals: list[tuple[float, float, float]],
                 u: float, duration: float) -> float:
    """Maximum concurrent projected load inside ``[u, u + duration)``."""
    window_end = u + duration
    events: list[tuple[float, float]] = []
    for start, end, weight in intervals:
        lo = max(start, u)
        hi = min(end, window_end)
        if lo < hi:
            events.append((lo, weight))
            events.append((hi, -weight))
    if not events:
        return 0.0
    events.sort()
    peak = 0.0
    level = 0.0
    for _time, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def _window_peaks(starts: np.ndarray, ends: np.ndarray, weights: np.ndarray,
                  candidates: np.ndarray, duration: float) -> np.ndarray:
    """:func:`_window_peak` for every candidate start, in one batch.

    Bit-compatible with the scalar sweep: per candidate the same clipped
    ``(time, ±weight)`` events are sorted by the same ``(time, delta)``
    key, and ``np.cumsum`` accumulates the running level in exactly the
    scalar iteration order.  Intervals that miss a window contribute
    zero-weight no-op events (adding ±0.0 leaves every IEEE-754 level
    bit-unchanged), which lets all windows share one rectangular batch.
    """
    lo = np.maximum(starts[None, :], candidates[:, None])
    hi = np.minimum(ends[None, :], (candidates + duration)[:, None])
    live = (lo < hi) * weights[None, :]
    times = np.concatenate([lo, hi], axis=1)
    deltas = np.concatenate([live, -live], axis=1)
    order = np.lexsort((deltas, times), axis=1)
    levels = np.cumsum(np.take_along_axis(deltas, order, axis=1), axis=1)
    return np.maximum(levels.max(axis=1), 0.0)


def _pick_start(intervals: list[tuple[float, float, float]],
                config: SchedulerConfig, now: float) -> float:
    """Least-overlapping start in ``[now, now + latitude]``.

    The sliding-window peak is piecewise constant in the start time ``u``,
    changing only where the window boundary crosses a projected interval
    edge; candidates are therefore ``now``, every in-window edge, every
    edge minus ``minDCD``, and the midpoints between consecutive
    breakpoints (plateau representatives).  Selection keys, in order:

    1. smallest projected peak inside ``[u, u + minDCD)``,
    2. no other claimed burst starting at the same instant — this keeps
       total load moving in *single-device* steps (the paper's "load
       increases in small steps"),
    3. earliest ``u`` ("one by one": run as soon as the lull allows).

    Vectorized (every candidate window evaluated in one NumPy batch, see
    :func:`_window_peaks`) but bit-identical to the scalar definition:
    candidate enumeration, peak arithmetic and tie-breaking reproduce the
    same floats in the same order.
    """
    if not intervals:
        return now  # every window is empty; the earliest candidate wins
    spec = config.spec
    latest = now + config.start_latitude
    table = np.asarray(intervals, dtype=float)
    starts, ends, weights = table[:, 0], table[:, 1], table[:, 2]
    edges = np.concatenate([starts, ends,
                            starts - spec.min_dcd, ends - spec.min_dcd])
    edges = edges[(now < edges) & (edges < latest)]
    ordered = np.unique(np.concatenate([edges, [now, latest]]))
    midpoints = (ordered[:-1] + ordered[1:]) / 2.0
    candidates = np.unique(np.concatenate([ordered, midpoints]))
    peaks = _window_peaks(starts, ends, weights, candidates, spec.min_dcd)
    collisions = (np.abs(candidates[:, None] - starts[None, :])
                  < config.epsilon).any(axis=1)
    best_u = now
    best_key: Optional[tuple[float, int, float]] = None
    for u, peak, collides in zip(candidates, peaks, collisions):
        key = (peak, int(collides), u)
        if best_key is None or key < best_key:
            best_key = key
            best_u = u
    return float(best_u)


def _plan_stagger(view: SharedView, config: SchedulerConfig, now: float,
                  config_part: tuple) -> list[AdmissionDecision]:
    """Stagger-mode planning with status-diff-aware suffix reuse.

    The trace is keyed on the *projections* of the statuses that
    planning actually reads — the claimed-interval table plus, per
    announcement, an ``(active, weight)`` snapshot — so views whose
    statuses differ in ways planning never observes share one trace
    (``statuses_part`` is left to the exact-content memo upstream).
    This pass replays the longest prefix of its own admission order the
    trace has seen *under identical snapshots* and computes only the
    divergent suffix.  A pass that extends the trace's order grows the
    trace in place for the next DI.
    """
    pending = view.pending_ordered()
    horizon_end = now + 2.0 * config.spec.max_dcp
    base_intervals = _claimed_intervals(view, config, now, horizon_end)
    trace_key = (tuple(base_intervals), config_part, now)
    trace = _PLAN_TRACES.get(trace_key)
    if trace is None:
        PLAN_TRACE_STATS["misses"] += 1
        trace = _PlanTrace(base_intervals)
        if len(_PLAN_TRACES) >= _PLAN_TRACES_MAX:
            _PLAN_TRACES.clear()
        _PLAN_TRACES[trace_key] = trace
    else:
        PLAN_TRACE_STATS["hits"] += 1
    shared = min(len(trace.pending), len(pending))
    prefix = 0
    while prefix < shared and trace.pending[prefix] == pending[prefix] \
            and trace.snapshots[prefix] == _status_snapshot(
                view, pending[prefix], config):
        prefix += 1
    PLAN_TRACE_STATS["reused"] += prefix
    PLAN_TRACE_STATS["planned"] += len(pending) - prefix
    if prefix == len(trace.pending) and prefix < len(pending):
        # The trace's whole order is our prefix: extend it in place.
        planned = {d.device_id: d for d in trace.decisions
                   if not d.extends}
        _stagger_suffix(view, config, now, pending, prefix,
                        trace.decisions, trace.intervals, planned, trace)
        trace.pending = list(pending)
        return list(trace.decisions)
    # Divergent (or shorter) order: replay the shared prefix from its
    # checkpoint, plan the rest privately — the trace keeps its branch.
    n_decisions, n_intervals = trace.checkpoints[prefix]
    decisions = list(trace.decisions[:n_decisions])
    intervals = list(trace.intervals[:n_intervals])
    planned = {d.device_id: d for d in decisions if not d.extends}
    _stagger_suffix(view, config, now, pending, prefix, decisions,
                    intervals, planned, None)
    return decisions


def _stagger_suffix(view: SharedView, config: SchedulerConfig, now: float,
                    pending: list, start_index: int,
                    decisions: list, intervals: list, planned: dict,
                    trace: Optional[_PlanTrace]) -> None:
    """Process ``pending[start_index:]`` one by one (the paper's order).

    Appends to ``decisions``/``intervals`` in place; when ``trace`` is
    given, records a checkpoint plus the item's status snapshot after
    every item so later passes can branch anywhere in the order and
    verify the prefix was planned under identical status projections.
    """
    spec = config.spec
    for announcement in pending[start_index:]:
        snapshot = _status_snapshot(view, announcement, config)
        active, weight = snapshot
        if active:
            decisions.append(AdmissionDecision(
                request_id=announcement.request_id,
                device_id=announcement.device_id,
                extends=True,
                demand_cycles=announcement.demand_cycles))
        elif announcement.device_id in planned:
            decisions.append(AdmissionDecision(
                request_id=announcement.request_id,
                device_id=announcement.device_id,
                extends=True,
                demand_cycles=announcement.demand_cycles))
        else:
            start = _pick_start(intervals, config, now)
            for k in range(announcement.demand_cycles):
                intervals.append((start + k * spec.max_dcp,
                                  start + k * spec.max_dcp + spec.min_dcd,
                                  weight))
            decision = AdmissionDecision(
                request_id=announcement.request_id,
                device_id=announcement.device_id,
                extends=False,
                demand_cycles=announcement.demand_cycles,
                start_time=start)
            planned[announcement.device_id] = decision
            decisions.append(decision)
        if trace is not None:
            trace.checkpoints.append((len(decisions), len(intervals)))
            trace.snapshots.append(snapshot)


# ---------------------------------------------------------------------------
# grid mode
# ---------------------------------------------------------------------------

def slot_loads(view: SharedView, config: SchedulerConfig) -> list[float]:
    """Projected concurrent load per slot position from claimed slots."""
    loads = [0.0] * config.spec.slots_per_epoch
    for status in view.active_statuses():
        if status.assigned_slot is None:
            continue
        weight = status.power_w if config.balance_by_power else 1.0
        loads[status.assigned_slot % len(loads)] += weight
    return loads


def _pick_slot(loads: list[float], grid: DutyCycleGrid, now: float) -> int:
    """Least-loaded slot; ties broken by earliest next start, then index."""
    best: Optional[tuple[float, float, int]] = None
    for slot, load in enumerate(loads):
        next_start = grid.slot_start(grid.occurrence_of_slot(slot, now))
        key = (load, next_start, slot)
        if best is None or key < best:
            best = key
    assert best is not None
    return best[2]


def _plan_grid(view: SharedView, config: SchedulerConfig,
               now: float) -> list[AdmissionDecision]:
    grid = config.make_grid()
    loads = slot_loads(view, config)
    decisions: list[AdmissionDecision] = []
    planned_slots: dict[int, int] = {}
    for announcement in view.pending_ordered():
        status = view.status_of(announcement.device_id)
        if status is not None and status.active:
            decisions.append(AdmissionDecision(
                request_id=announcement.request_id,
                device_id=announcement.device_id,
                extends=True,
                demand_cycles=announcement.demand_cycles,
                slot=status.assigned_slot))
            continue
        if announcement.device_id in planned_slots:
            decisions.append(AdmissionDecision(
                request_id=announcement.request_id,
                device_id=announcement.device_id,
                extends=True,
                demand_cycles=announcement.demand_cycles,
                slot=planned_slots[announcement.device_id]))
            continue
        slot = _pick_slot(loads, grid, now)
        loads[slot] += _weight_of(view, announcement, config)
        planned_slots[announcement.device_id] = slot
        decisions.append(AdmissionDecision(
            request_id=announcement.request_id,
            device_id=announcement.device_id,
            extends=False,
            demand_cycles=announcement.demand_cycles,
            slot=slot))
    return decisions


def _weight_of(view: SharedView, announcement: RequestAnnouncement,
               config: SchedulerConfig) -> float:
    if not config.balance_by_power:
        return 1.0
    status = view.status_of(announcement.device_id)
    if status is not None and status.power_w > 0:
        return status.power_w
    return announcement.power_w


def _status_snapshot(view: SharedView, announcement: RequestAnnouncement,
                     config: SchedulerConfig) -> tuple[bool, float]:
    """Everything stagger planning reads from one announcement's status.

    ``(active, weight)``: whether the device already runs (the request
    extends demand instead of claiming a start) and the load weight a
    fresh placement would project.  Trace prefix reuse compares these
    snapshots instead of whole statuses — the content-true equality the
    view-diff planner keys on.
    """
    status = view.status_of(announcement.device_id)
    active = status is not None and status.active
    return (active, _weight_of(view, announcement, config))


def decisions_for_device(decisions: list[AdmissionDecision],
                         device_id: int) -> list[AdmissionDecision]:
    """The subset of a plan the owning DI actually applies."""
    return [d for d in decisions if d.device_id == device_id]
