"""Per-DI agents: Communication-Plane endpoints + Execution-Plane actuators.

:class:`CoordinatedAgent` implements the paper's scheme: announce requests
over the CP, run the deterministic scheduler on the shared view after every
round, and drive the appliance along the agreed plan in the EP.

The agent structure mirrors the paper's two-plane split (§II):

* CP side — :meth:`cp_payload` / :meth:`cp_deliver` plug into a
  :class:`~repro.st.rounds.CpApplication` driver;
* EP side — :meth:`execution_plane` is a simulation process executing the
  claimed bursts (stagger mode) or walking the slot grid (grid mode).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.scheduler import AdmissionDecision, SchedulerConfig, \
    plan_admissions
from repro.core.state import CpItem, DeviceStatus, SharedView
from repro.han.appliance import Type2Appliance
from repro.han.requests import RequestAnnouncement, RequestState, UserRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class DeviceAgentBase:
    """Shared bookkeeping: demand queue, status versioning, EP executor."""

    def __init__(self, sim: "Simulator", device: Type2Appliance,
                 config: SchedulerConfig):
        self.sim = sim
        self.device = device
        self.config = config
        self.device_id = device.device_id
        self.view = SharedView()
        self._version = 0
        self._active = False
        self._slot: Optional[int] = None
        self._next_burst: Optional[float] = None
        self._remaining = 0
        self._last_admitted = 0
        #: own requests, for latency/completion metrics
        self.requests: dict[int, UserRequest] = {}
        #: FIFO of [request_id, cycles_left] attributing bursts to requests
        self._burst_queue: deque[list[int]] = deque()
        #: optional observer (the owning system) told when this DI turns
        #: dirty — lets CP rounds skip idle agents without calling them
        self._on_dirty = None
        self._dirty = True
        self._wake = None
        self.view.merge_item(self.item())

    # -- status ------------------------------------------------------------------

    def status(self) -> DeviceStatus:
        """Current shareable status snapshot."""
        return DeviceStatus(
            device_id=self.device_id,
            version=self._version,
            active=self._active,
            remaining_cycles=self._remaining,
            assigned_slot=self._slot,
            power_w=self.device.power_w,
            last_admitted_request=self._last_admitted,
            burst_start=self._next_burst)

    def item(self) -> CpItem:
        """Status plus own unadmitted announcements (subclass hook)."""
        return CpItem(self.status())

    def _mark_dirty(self) -> None:
        """Flag a fresh shareable state (and tell the observer, if any)."""
        self._dirty = True
        if self._on_dirty is not None:
            self._on_dirty(self.device_id)

    @property
    def cp_pending(self) -> bool:
        """True when the next non-healing ``cp_payload`` would share."""
        return self._dirty

    def _bump_status(self) -> None:
        self._version += 1
        self._mark_dirty()
        self.view.merge_item(self.item())

    @property
    def is_active(self) -> bool:
        """True while the device still owes admitted execution cycles."""
        return self._active

    @property
    def remaining_cycles(self) -> int:
        """Admitted ``minDCD`` cycles not yet executed."""
        return self._remaining

    @property
    def assigned_slot(self) -> Optional[int]:
        """Claimed slot position (grid mode), None when inactive."""
        return self._slot

    @property
    def next_burst(self) -> Optional[float]:
        """Absolute start of the next claimed burst (stagger mode)."""
        return self._next_burst

    # -- demand bookkeeping ----------------------------------------------------------

    def _enqueue_demand(self, request_id: int, cycles: int,
                        extends: bool = False) -> None:
        self._remaining += cycles
        self._burst_queue.append([request_id, cycles])
        request = self.requests.get(request_id)
        if request is not None:
            request.state = RequestState.ADMITTED
            request.admitted_at = self.sim.now
            request.extended_existing = extends

    def _account_burst(self, started_at: float) -> None:
        """Attribute one completed burst to the oldest open request."""
        self._remaining -= 1
        if not self._burst_queue:
            return
        head = self._burst_queue[0]
        request = self.requests.get(head[0])
        if request is not None and request.first_burst_at is None:
            request.first_burst_at = started_at
            request.state = RequestState.RUNNING
        head[1] -= 1
        if head[1] == 0:
            self._burst_queue.popleft()
            if request is not None:
                request.state = RequestState.COMPLETED
                request.completed_at = self.sim.now

    # -- applying scheduler decisions --------------------------------------------------

    def _apply_decision(self, decision: AdmissionDecision) -> None:
        """Adopt one admission decision concerning this device."""
        extends = self._active
        if not self._active:
            self._active = True
            if self.config.mode == "grid":
                self._slot = decision.slot if decision.slot is not None else 0
            else:
                self._next_burst = decision.start_time \
                    if decision.start_time is not None else self.sim.now
        self._enqueue_demand(decision.request_id, decision.demand_cycles,
                             extends=extends)
        self._last_admitted = max(self._last_admitted, decision.request_id)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _finish_if_done(self) -> None:
        if self._remaining == 0:
            self._active = False
            self._slot = None
            self._next_burst = None

    # -- execution plane ------------------------------------------------------------

    def execution_plane(self):
        """Process executing the device's claimed bursts."""
        if self.config.mode == "grid":
            yield from self._ep_grid()
        else:
            yield from self._ep_stagger()

    def _ep_stagger(self):
        """Run each claimed burst at its claimed start (stagger mode)."""
        spec = self.config.spec
        while True:
            if not self._active or self._next_burst is None:
                self._wake = self.sim.event()
                yield self._wake
                self._wake = None
                continue
            delay = self._next_burst - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
                continue  # re-check: the claim may have moved meanwhile
            burst_start = self.sim.now
            self.device.turn_on()
            yield self.sim.timeout(spec.min_dcd)
            self.device.turn_off()
            self._account_burst(burst_start)
            if self._remaining > 0:
                # Recur one maxDCP after the claimed start: exactly one
                # burst per period, as the guarantee requires.
                self._next_burst = burst_start + spec.max_dcp
            else:
                self._finish_if_done()
            self._bump_status()

    def _ep_grid(self):
        """Walk the slot grid; burst whenever the owned slot comes up.

        Visits every slot start exactly once (``handled`` guards against
        double-handling and against skipping a slot whose start coincides
        with the end of the previous burst).
        """
        grid = self.config.make_grid()
        spec = self.config.spec
        handled: Optional[tuple[int, int]] = None
        while True:
            ref, start = self._upcoming_slot(grid, handled)
            if start > self.sim.now:
                yield self.sim.timeout(start - self.sim.now)
            handled = (ref.epoch, ref.slot)
            if (self._active and self._remaining > 0
                    and self._slot == ref.slot):
                burst_start = self.sim.now
                self.device.turn_on()
                yield self.sim.timeout(spec.min_dcd)
                self.device.turn_off()
                self._account_burst(burst_start)
                self._finish_if_done()
                self._bump_status()

    _BOUNDARY_EPS = 1e-6

    def _upcoming_slot(self, grid, handled):
        """Next slot to visit: the one starting now (if unvisited) or next."""
        ref = grid.slot_of(self.sim.now)
        start = grid.slot_start(ref)
        at_boundary = abs(start - self.sim.now) < self._BOUNDARY_EPS
        if at_boundary and (ref.epoch, ref.slot) != handled:
            return ref, self.sim.now
        return grid.next_slot_boundary(self.sim.now)


class CoordinatedAgent(DeviceAgentBase):
    """The paper's decentralized collaborative load manager."""

    def __init__(self, sim: "Simulator", device: Type2Appliance,
                 config: SchedulerConfig):
        # Set before super().__init__, which snapshots item() into the view.
        self._announcements: list[RequestAnnouncement] = []
        super().__init__(sim, device, config)

    def item(self) -> CpItem:
        return CpItem(self.status(), tuple(self._announcements))

    # -- user side -------------------------------------------------------------

    def on_request(self, request: UserRequest) -> None:
        """A user pressed the button on this DI."""
        self.requests[request.request_id] = request
        announcement = RequestAnnouncement.of(request,
                                              power_w=self.device.power_w)
        self._announcements.append(announcement)
        self.view.merge_item(CpItem(self.status(), (announcement,)))
        self._mark_dirty()

    # -- CP application interface ----------------------------------------------------

    @property
    def cp_pending(self) -> bool:
        """Dirty, or still announcing unadmitted requests every round."""
        return self._dirty or bool(self._announcements)

    def cp_payload(self, node: int, round_index: int) -> Optional[CpItem]:
        """This DI's :class:`~repro.core.state.CpItem` for the round.

        Returns ``None`` when nothing changed since the last share (the
        :class:`~repro.st.rounds.SampledCP` driver skips such rounds);
        ``round_index == -1`` marks a healing round and always shares.
        """
        if round_index == -1 or self._dirty or self._announcements:
            self._dirty = False
            return self.item()
        return None

    def cp_deliver(self, node: int, packets: dict[int, CpItem],
                   round_index: int) -> None:
        """Fold a round's received items into the view, then admit.

        The admission pass (:func:`~repro.core.scheduler.plan_admissions`)
        is a pure function of the merged
        :class:`~repro.core.state.SharedView`, so DIs holding equal views
        derive equal plans — the decentralized-yet-coherent property the
        paper's scheme rests on.
        """
        self.view.merge_items(packets.values())
        self._run_admission()

    # -- scheduling -------------------------------------------------------------------

    def _run_admission(self) -> None:
        """Admit visible pending requests; apply only this device's share."""
        if not self.view.pending:
            return
        # Only decisions for *this* device are ever applied, and an
        # admission order with none of our announcements cannot produce
        # one (planning is pure) — skip the whole pass.  This is the
        # common case: another device's announcement lingers in our view
        # for a round until its owner's updated status clears it.
        own = self.device_id
        if all(announcement.device_id != own
               for announcement in self.view.pending.values()):
            return
        decisions = plan_admissions(self.view, self.config, self.sim.now)
        mine = [d for d in decisions if d.device_id == self.device_id]
        if not mine:
            return
        for decision in mine:
            self._apply_decision(decision)
        self._announcements = [
            a for a in self._announcements
            if a.request_id > self._last_admitted]
        self._bump_status()
