"""Fleet of fleets: hierarchical multi-feeder grids under one substation.

The paper coordinates homes behind a *single* feeder; real distribution
grids are trees — homes → feeder → substation → region.  This module
generalizes the neighborhood layer one level up (in the spirit of
distributed residential-neighborhood scheduling, arXiv:2011.04338): a
:class:`GridSpec` holds one built fleet per feeder, and
:func:`execute_grid` runs the whole tree with a **two-tier**
coordination pass:

1. **Feeder tier** — every feeder runs today's per-feeder CP rounds
   (:func:`repro.neighborhood.coordination.coordinate_fleet`),
   staggering its homes exactly as a single-feeder neighborhood run
   would.  Shard workers pre-reduce each home's phase envelope locally
   (:attr:`repro.neighborhood.shard.ShardSpec.envelope_bin_s`), so the
   parent never recomputes per-home envelopes.
2. **Substation tier** — the *feeder-level* profiles become the unit
   that flows up the tree (per arXiv:2304.11770's aggregate-envelope
   evaluation): each feeder's realized profile is compressed to a
   :func:`~repro.neighborhood.coordination.phase_envelope`, the same
   claim rounds negotiate per-feeder phase offsets, and offsets apply
   as energy/peak-conserving rotation with the same
   realized-improvement guard.  The substation plane never regresses
   the grid it coordinates.

Aggregation composes exactly up the tree because
:func:`repro.neighborhood.aggregate.combine_partials` is
partition-invariant: the substation's fully-independent profile is the
*correctly rounded* (``math.fsum``-equal) per-event sum of **all** home
series, no matter how homes are grouped into feeders or shards — the
invariant ``tests/test_grid_invariants.py`` locks over randomized
topologies.

Determinism mirrors the single-feeder plane: feeder ``i`` of a grid
builds with :func:`feeder_seed`, feeder 0 inheriting the root seed, so
a flat single-feeder :class:`GridSpec` reproduces the ``neighborhood``
spec kind bit for bit, and every execution knob (``jobs``,
``shard_size``, ``transport``, executor) is a pure strategy that never
changes result bits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

from repro.analysis.report import format_table
from repro.core.system import RunResult
from repro.experiments.runner import ParallelRunner, RunSpec
from repro.neighborhood.aggregate import (
    FeederComparison,
    FeederStats,
    combine_partials,
    feeder_stats,
    partial_sum,
    sum_series,
)
from repro.neighborhood.coordination import (
    FeederConfig,
    FeederCoordination,
    coordinate_fleet,
    negotiate_offsets,
    phase_envelope,
    rotate_series,
    snap_bin,
)
from repro.neighborhood.federation import NeighborhoodResult
from repro.neighborhood.fleet import FleetSpec, build_fleet
from repro.neighborhood.shard import execute_shards, plan_shards
from repro.sim.monitor import StepSeries

#: How the grid's tiers coordinate: ``"independent"`` (no negotiation
#: anywhere), ``"feeder"`` (today's per-feeder CP rounds, nothing
#: above), or ``"substation"`` (per-feeder rounds, then feeder-level
#: envelopes negotiate at the substation tier).
GRID_COORDINATION_MODES = ("independent", "feeder", "substation")


def feeder_seed(root_seed: int, feeder_index: int) -> int:
    """Derive feeder ``feeder_index``'s fleet seed from the grid seed.

    Feeder 0 *inherits* the root seed, so a single-feeder grid builds
    exactly the fleet the ``neighborhood`` kind builds from the same
    spec seed — the flat-grid bit-identity the invariant suite locks.
    Later feeders hash, exactly like
    :func:`repro.neighborhood.fleet.home_seed` one level down:
    collision-free in practice, stable across processes and platforms.
    """
    if feeder_index == 0:
        return root_seed
    token = f"feeder-seed:{root_seed}:{feeder_index}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class GridSpec:
    """One grid, fully built: a tuple of feeder fleets under a substation.

    Produced by :func:`build_grid` (or assembled by hand from
    :class:`~repro.neighborhood.fleet.FleetSpec` values — the escape
    hatch the feeder-grouping invariance tests use); executed by
    :func:`execute_grid`.
    """

    name: str
    seed: int
    feeders: tuple[FleetSpec, ...]

    @property
    def n_feeders(self) -> int:
        """Number of feeder fleets under the substation."""
        return len(self.feeders)

    @property
    def n_homes(self) -> int:
        """Total homes across every feeder."""
        return sum(fleet.n_homes for fleet in self.feeders)

    @property
    def total_devices(self) -> int:
        """Total appliance count across every home of every feeder."""
        return sum(fleet.total_devices for fleet in self.feeders)

    @property
    def horizon(self) -> float:
        """Grid observation window: the largest feeder horizon."""
        return max(fleet.horizon for fleet in self.feeders)


def build_grid(feeders: Sequence[Mapping[str, object]], seed: int = 1,
               policy: str = "coordinated", cp_fidelity: str = "round",
               horizon: Optional[float] = None,
               name: Optional[str] = None) -> GridSpec:
    """Deterministically build a grid of feeder fleets from plans.

    Each entry of ``feeders`` is a mapping with any of the
    :func:`~repro.neighborhood.fleet.build_fleet` build knobs ``homes``,
    ``mix``, ``rate_jitter``, ``size_jitter`` (defaults match
    :class:`repro.api.spec.FeederPlan`).  Feeder ``i`` builds with
    :func:`feeder_seed(seed, i) <feeder_seed>` and is renamed
    ``<grid>/feeder<i>`` so shard-level diagnostics name the feeder
    they came from.
    """
    if not feeders:
        raise ValueError("a grid needs at least one feeder plan")
    fleets = []
    for index, plan in enumerate(feeders):
        fleet = build_fleet(
            int(plan.get("homes", 20)),
            mix=str(plan.get("mix", "suburb")),
            seed=feeder_seed(seed, index),
            policy=policy,
            cp_fidelity=cp_fidelity,
            horizon=horizon,
            rate_jitter=float(plan.get("rate_jitter", 0.25)),
            size_jitter=float(plan.get("size_jitter", 0.2)))
        fleets.append(fleet)
    grid_name = name if name is not None else \
        f"grid-{len(fleets)}feeders-{sum(f.n_homes for f in fleets)}homes"
    fleets = [replace(fleet, name=f"{grid_name}/feeder{index}")
              for index, fleet in enumerate(fleets)]
    return GridSpec(name=grid_name, seed=seed, feeders=tuple(fleets))


# ---------------------------------------------------------------------------
# the substation tier
# ---------------------------------------------------------------------------

def coordinate_profiles(profiles: Sequence[StepSeries], horizon: float,
                        config: Optional[FeederConfig] = None,
                        epoch: Optional[float] = None,
                        name: str = "substation") -> FeederCoordination:
    """Negotiate phase offsets between already-aggregated profiles.

    The substation tier is the feeder plane applied to *feeder-level*
    profiles instead of homes: each profile is compressed to its
    :func:`~repro.neighborhood.coordination.phase_envelope`, the same
    round-robin claim rounds
    (:func:`~repro.neighborhood.coordination.negotiate_offsets`) pick
    per-profile offsets, and offsets apply as
    :func:`~repro.neighborhood.coordination.rotate_series` — conserving
    each profile's energy and individual peak exactly.  The same
    realized-improvement guard re-checks the rotated sum against the
    un-rotated baseline and declines (zero offsets, ``applied=False``)
    unless the realized aggregate peak strictly improves.

    In the returned :class:`FeederCoordination`, ``independent_w`` is
    the *pre-negotiation baseline* at this tier — the plain sum of the
    incoming profiles (which may themselves already be
    feeder-coordinated).
    """
    if config is None:
        config = FeederConfig()
    if not profiles:
        raise ValueError("need at least one profile to coordinate")
    resolved_epoch = epoch if epoch is not None else \
        (config.epoch if config.epoch is not None else horizon)
    resolved_epoch = min(resolved_epoch, horizon)
    bin_s = snap_bin(horizon, config.bin_s)
    shifts = max(int(resolved_epoch / bin_s + 1e-9), 1)
    ids = list(range(len(profiles)))
    envelopes = {index: phase_envelope(profile, horizon, bin_s)
                 for index, profile in enumerate(profiles)}
    claims, cp_stats, sweeps = negotiate_offsets(ids, envelopes, shifts,
                                                 config)
    planned = tuple(claims[index] * bin_s for index in ids)
    baseline = sum_series(list(profiles), name=name)
    rotated = [rotate_series(profile, offset, horizon)
               for profile, offset in zip(profiles, planned)]
    coordinated = sum_series(rotated, name=name)
    applied = True
    if config.guard and any(offset != 0.0 for offset in planned):
        if coordinated.maximum(0.0, horizon) \
                >= baseline.maximum(0.0, horizon) - 1e-9:
            applied = False
    elif all(offset == 0.0 for offset in planned):
        applied = False
    if not applied:
        rotated = [rotate_series(profile, 0.0, horizon)
                   for profile in profiles]
        coordinated = baseline
    return FeederCoordination(
        epoch=resolved_epoch, bin_s=bin_s,
        planned_offsets_s=planned,
        offsets_s=planned if applied else tuple(0.0 for _ in planned),
        applied=applied, sweeps=sweeps, cp_stats=cp_stats,
        contributions_w=rotated, independent_w=baseline,
        coordinated_w=coordinated)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class GridResult:
    """One grid run: per-feeder results plus the substation aggregate.

    :attr:`feeders` are full
    :class:`~repro.neighborhood.federation.NeighborhoodResult` values —
    each feeder is inspectable exactly like a single-feeder run,
    including its own tier-1 coordination record.  :attr:`coordination`
    (when the grid ran in ``"substation"`` mode) is the tier-2 record
    over feeder profiles; its ``independent_w`` is the pre-substation
    baseline, while :attr:`independent_w` here is the *fully*
    independent substation profile — the partition-invariant
    correctly-rounded sum of every home series in the grid.
    """

    grid: GridSpec
    feeders: list[NeighborhoodResult]
    #: what the substation carries under the selected coordination mode
    substation_w: StepSeries
    #: correctly rounded Σ of all (un-rotated) home series in the grid
    independent_w: StepSeries
    horizon: float
    #: the :data:`GRID_COORDINATION_MODES` entry this grid ran with
    coordination_mode: str = "independent"
    #: tier-2 (substation) negotiation record, ``"substation"`` mode only
    coordination: Optional[FeederCoordination] = field(default=None)
    #: originating :class:`~repro.api.spec.ExperimentSpec`, when any
    spec: Optional[object] = field(default=None)

    @property
    def n_feeders(self) -> int:
        """Number of executed feeders feeding the substation."""
        return len(self.feeders)

    @property
    def n_homes(self) -> int:
        """Total homes across every executed feeder."""
        return sum(len(feeder.homes) for feeder in self.feeders)

    def total_requests(self) -> int:
        """Number of user requests across every home of every feeder."""
        return sum(feeder.total_requests() for feeder in self.feeders)

    @property
    def feeder_profiles_w(self) -> list[StepSeries]:
        """Per-feeder substation contributions, feeder order.

        Each feeder's own profile (tier-1 coordinated when the mode
        says so), rotated by its substation offset when tier 2 applied
        one.  The substation profile is exactly their sum.
        """
        if self.coordination is not None:
            return self.coordination.contributions_w
        return [feeder.feeder_w for feeder in self.feeders]

    def substation_stats(self, start: float = 0.0,
                         end: Optional[float] = None) -> FeederStats:
        """Substation aggregate statistics; members are *feeders*.

        Same :class:`~repro.neighborhood.aggregate.FeederStats` shape
        one tier up — ``n_homes``/``sum_home_peaks_kw`` count feeder
        profiles, so ``diversity_factor`` reads as the *inter-feeder*
        diversity the substation sees.
        """
        window_end = end if end is not None else self.horizon
        return feeder_stats(self.substation_w, self.feeder_profiles_w,
                            start, window_end)

    def comparison(self, start: float = 0.0,
                   end: Optional[float] = None,
                   ) -> Optional[FeederComparison]:
        """Coordinated-vs-independent uplift at the substation tier.

        The independent side is the fully-independent grid (no
        negotiation at either tier); the coordinated side is the grid
        as ran.  ``None`` in ``"independent"`` mode — both sides would
        be the same profile.
        """
        if self.coordination_mode == "independent":
            return None
        window_end = end if end is not None else self.horizon
        independent_members = [
            feeder.coordination.independent_w
            if feeder.coordination is not None else feeder.feeder_w
            for feeder in self.feeders]
        independent = feeder_stats(self.independent_w,
                                   independent_members, start, window_end)
        coordinated = feeder_stats(self.substation_w,
                                   self.feeder_profiles_w, start,
                                   window_end)
        return FeederComparison(independent=independent,
                                coordinated=coordinated)

    def render(self) -> str:
        """Plain-text report: one row per feeder, then the substation."""
        coordinated = self.coordination is not None
        rows = []
        for index, feeder in enumerate(self.feeders):
            stats = feeder.feeder_stats()
            row = [f"feeder{index}", feeder.fleet.n_homes,
                   feeder.fleet.total_devices,
                   f"{stats.coincident_peak_kw:.2f}",
                   f"{stats.diversity_factor:.3f}"]
            if coordinated:
                offset = self.coordination.offsets_s[index]
                row.append(f"{offset / 60.0:.1f}")
            rows.append(row)
        headers = ["feeder", "homes", "devices", "peak kW", "diversity"]
        if coordinated:
            headers.append("phase min")
        feeders_table = format_table(
            headers, rows,
            title=f"Grid {self.grid.name} (seed {self.grid.seed}, "
                  f"{self.n_homes} homes, "
                  f"{self.grid.total_devices} devices)")
        substation_table = format_table(
            ["substation metric", "value"],
            self.substation_stats().rows(),
            title="Substation aggregate")
        parts = [feeders_table, substation_table]
        comparison = self.comparison()
        if comparison is not None:
            if coordinated:
                plan = self.coordination
                status = "applied" if plan.applied else \
                    "declined (no realized improvement)"
                title = (f"Substation coordination ({status}; "
                         f"epoch {plan.epoch / 60.0:.0f} min, "
                         f"{plan.cp_stats.rounds_total} CP rounds, "
                         f"{plan.sweeps} sweeps)")
            else:
                title = "Grid coordination (feeder tier only)"
            parts.append(format_table(
                ["substation metric", "independent", "coordinated"],
                comparison.rows(), title=title))
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def execute_grid(grid: GridSpec, jobs: int = 1,
                 until: Optional[float] = None,
                 mp_context: Optional[str] = None,
                 coordination: str = "independent",
                 feeder: Optional[FeederConfig] = None,
                 spec: Optional[object] = None,
                 shard_size: Optional[int] = None,
                 transport: Optional[str] = None,
                 shard_executor=None) -> GridResult:
    """Run every feeder of ``grid`` and aggregate up to the substation.

    The grid execution primitive the spec API bottoms out in
    (:func:`repro.api.run.run` compiles a ``grid`` spec and calls
    here).  Per feeder, execution reuses the PR 5 shard path unchanged
    — including worker-side envelope pre-reduction when a tier will
    coordinate — with shard indices renumbered *globally* across
    feeders so service-plane checkpoint sub-addresses
    (:func:`repro.api.compile.shard_sub_hash`) stay unique.

    ``coordination`` is one of :data:`GRID_COORDINATION_MODES`; the
    optional ``feeder`` :class:`FeederConfig` tunes both tiers (the
    substation tier negotiates over feeder profiles with the same
    knobs).  Every other parameter is a pure execution strategy,
    bit-identical across all values — locked by
    ``tests/test_grid_invariants.py``.
    """
    if coordination not in GRID_COORDINATION_MODES:
        known = ", ".join(GRID_COORDINATION_MODES)
        raise ValueError(
            f"coordination must be one of: {known}; got {coordination!r}")
    config = feeder if feeder is not None else FeederConfig()
    horizon = until if until is not None else grid.horizon
    envelope_bin = snap_bin(horizon, config.bin_s) \
        if coordination != "independent" else None

    feeder_results: list[NeighborhoodResult] = []
    all_partials: list[object] = []
    all_series: list[StepSeries] = []
    next_shard_index = 0
    for fleet in grid.feeders:
        shards = plan_shards(fleet, until=until, shard_size=shard_size,
                             jobs=jobs, transport=transport,
                             envelope_bin_s=envelope_bin)
        if shards is not None:
            shards = [replace(shard, index=next_shard_index + offset)
                      for offset, shard in enumerate(shards)]
            next_shard_index += len(shards)
            results, partials, home_stats, envelopes = execute_shards(
                shards, jobs=jobs, mp_context=mp_context,
                executor=shard_executor)
        else:
            specs = [RunSpec(name=home.scenario.name,
                             config=home.config(), until=until)
                     for home in fleet.homes]
            results = ParallelRunner(jobs=jobs,
                                     mp_context=mp_context).run(specs)
            partials = [partial_sum([one.load_w for one in results])]
            home_stats = None
            envelopes = None
        series = [one.load_w for one in results]
        all_partials.extend(partials)
        all_series.extend(series)
        if coordination == "independent":
            feeder_results.append(NeighborhoodResult(
                fleet=fleet, homes=results,
                feeder_w=combine_partials(partials, series),
                horizon=horizon,
                precomputed_home_stats=home_stats))
        else:
            plan = coordinate_fleet(fleet, results, horizon,
                                    config=config, partials=partials,
                                    envelopes=envelopes)
            feeder_results.append(NeighborhoodResult(
                fleet=fleet, homes=results,
                feeder_w=plan.coordinated_w, horizon=horizon,
                coordination=plan,
                precomputed_home_stats=home_stats))

    # The fully-independent substation profile folds from *all* shard
    # partials at once: partition-invariant, so any feeder grouping or
    # shard size yields the exact fsum of every home series.
    independent_w = combine_partials(all_partials, all_series,
                                     name="substation")
    substation_plan = None
    if coordination == "independent":
        substation_w = independent_w
    elif coordination == "feeder":
        substation_w = sum_series(
            [feeder.feeder_w for feeder in feeder_results],
            name="substation")
    else:
        epoch = config.epoch if config.epoch is not None else max(
            home.scenario.max_dcp
            for fleet in grid.feeders for home in fleet.homes)
        substation_plan = coordinate_profiles(
            [feeder.feeder_w for feeder in feeder_results], horizon,
            config=config, epoch=epoch)
        substation_w = substation_plan.coordinated_w
    return GridResult(grid=grid, feeders=feeder_results,
                      substation_w=substation_w,
                      independent_w=independent_w, horizon=horizon,
                      coordination_mode=coordination,
                      coordination=substation_plan, spec=spec)
