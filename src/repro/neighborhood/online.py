"""Online per-epoch coordination against predicted envelopes.

The batch feeder plane (:func:`~repro.neighborhood.coordination
.coordinate_fleet`) negotiates once, *post hoc*, over realized
profiles.  This module is the production shape of the same plane
(ROADMAP open item 2, after arXiv:2304.11770's epoch-replanning online
HEMS): the horizon is tiled into CP epochs, and at each epoch start the
gateways re-negotiate phase offsets against **predicted** envelopes
from a :mod:`repro.forecast` forecaster fed by the
:mod:`repro.telemetry` stream of everything realized so far.

The epoch loop (:func:`coordinate_fleet_online`), per epoch:

1. **predict** — every home's forecaster emits its envelope for the
   upcoming window from telemetry strictly *before* the window (the
   oracle alone may peek, by design — it is the zero-error ceiling);
2. **diff + renegotiate** — homes whose predicted envelope moved
   re-publish (:meth:`~repro.neighborhood.coordination.FeederPlane
   .update_envelope`) and only they take claim tokens
   (:func:`~repro.neighborhood.coordination.renegotiate_offsets`),
   seeded with the previous epoch's claims — incremental, not
   from-scratch; the first epoch is a cold full negotiation;
3. **apply + guard** — offsets rotate each home's *realized* window
   (:func:`~repro.neighborhood.coordination.rotate_window`, energy- and
   per-home-peak-conserving); the realized-improvement guard re-checks
   each epoch independently and declines to zero offsets any epoch
   whose rotated sum does not strictly beat the independent profile —
   so online coordination never raises any epoch's peak;
4. **ingest** — the realized window streams into telemetry
   (journalled in a replayable
   :class:`~repro.telemetry.log.TelemetryLog`), becoming history for
   the next epoch's predictions.

**Degradation under telemetry faults.**  With an active
:mod:`repro.faults` plan, a home's per-epoch batch can be dropped,
delayed (delivered whole a few epochs later through
:meth:`~repro.telemetry.stream.TelemetryIngest.ingest_late`), or
duplicated in the journal.  A per-home staleness ledger tracks the
newest epoch each home has reported through; a home whose ledger lags
the prediction boundary falls down a three-step ladder instead of
feeding stale data to its configured forecaster:

1. **persistence** — any telemetry at all → predict the last observed
   window forward (:class:`repro.forecast.PersistenceForecaster`);
2. **last committed envelope** — no telemetry yet but a previous epoch
   negotiated → reuse that epoch's committed envelope;
3. **zero offset** — nothing known → a zero envelope, and the home's
   claim is forced to offset 0 for the epoch (it participates in
   aggregation but never rotates blind).

The ladder only shapes *predictions*; offsets still rotate realized
windows under the per-epoch guard, so energy conservation (drift
exactly 0.0 Wh) and never-raise-peak hold under **any** fault
schedule — the invariants ``tests/test_fault_matrix.py`` locks.

Determinism: the loop consumes only the bit-deterministic per-home
results in fleet order, forecasters are pure (noise comes from named
streams keyed on home and window), and stitching uses the scalar-
equivalent :meth:`~repro.sim.monitor.StepSeries.append` — so online
runs are bit-identical across jobs counts and shard sizes, locked by
``tests/test_online_coordination.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.system import RunResult
from repro.neighborhood.aggregate import combine_partials, sum_series
from repro.neighborhood.coordination import (
    FeederConfig,
    FeederCoordination,
    FeederPlane,
    negotiate_offsets,
    renegotiate_offsets,
    rotate_window,
    snap_bin,
)
from repro.sim.monitor import StepSeries
from repro.st.rounds import CpStats
from repro.telemetry import TelemetryIngest

if TYPE_CHECKING:  # pragma: no cover
    from repro.neighborhood.fleet import FleetSpec


@dataclass(frozen=True)
class ForecastConfig:
    """Forecaster selection + knobs for an online coordination run.

    The neighborhood-layer twin of :class:`repro.api.spec.ForecastPlan`
    (the spec API converts one to the other), defaulting to the oracle
    with no noise — the uplift-ceiling configuration.
    """

    #: one of :data:`repro.forecast.FORECASTERS`
    forecaster: str = "oracle"
    #: multiplicative per-bin noise amplitude (0 = exact predictions)
    noise: float = 0.0
    #: root seed of the noise streams (named per home and window)
    noise_seed: int = 1
    #: EWMA weight for the ``"ewma"`` forecaster
    ewma_alpha: float = 0.5
    #: season length, in epochs, for the ``"seasonal"`` forecaster
    season_epochs: int = 1


@dataclass(frozen=True)
class EpochOutcome:
    """What one CP epoch of an online run decided and realized."""

    #: epoch index, 0-based
    index: int
    #: epoch window ``[start_s, end_s)`` in seconds
    start_s: float
    end_s: float
    #: False when the per-epoch guard declined (offsets forced to zero)
    applied: bool
    #: offsets actually applied this epoch (seconds, fleet order)
    offsets_s: tuple[float, ...]
    #: homes whose predicted envelope moved (= claim tokens granted)
    changed_homes: int
    #: CP rounds this epoch's (re-)negotiation ran
    cp_rounds: int
    #: peak of the independent profile inside the window, watts
    independent_peak_w: float
    #: realized peak of the (possibly rotated) window as applied, watts
    coordinated_peak_w: float
    #: homes served off the degradation ladder this epoch (stale
    #: telemetry → persistence / last envelope / forced zero offset)
    stale_homes: int = 0


@dataclass
class OnlineCoordination(FeederCoordination):
    """Outcome of an online run: the feeder record plus per-epoch detail.

    Subclasses :class:`~repro.neighborhood.coordination
    .FeederCoordination` so every batch consumer — result rendering,
    exporters, comparison stats — reads an online plan unchanged.  The
    inherited ``epoch`` is the epoch *length*; ``planned_offsets_s`` /
    ``offsets_s`` are the final epoch's plan (per-epoch offsets live in
    :attr:`epochs`); ``applied`` is True when any epoch applied.
    """

    #: per-epoch records, epoch order
    epochs: tuple[EpochOutcome, ...] = ()
    #: forecaster name the run predicted with
    forecaster: str = "oracle"
    #: total claim tokens granted across all re-negotiations
    replanned_homes: int = 0
    #: digest of the full telemetry journal (replay fingerprint)
    telemetry_digest: str = ""
    #: number of samples journalled across the run
    telemetry_events: int = 0
    #: per-epoch telemetry batches dropped by an injected fault plan
    telemetry_dropped: int = 0
    #: batches delivered late (whole, a few epochs on) by injection
    telemetry_delayed: int = 0
    #: batches journalled twice by injection (duplicate storms)
    telemetry_duplicated: int = 0
    #: home-epochs predicted off the degradation ladder (stale inputs)
    stale_predictions: int = 0

    @property
    def n_epochs(self) -> int:
        """How many CP epochs tiled the horizon."""
        return len(self.epochs)

    @property
    def epochs_applied(self) -> int:
        """How many epochs survived the per-epoch realized guard."""
        return sum(1 for outcome in self.epochs if outcome.applied)


def epoch_grid(horizon: float, epoch_s: float) -> list[tuple[float, float]]:
    """The epoch windows tiling ``[0, horizon)``, in order.

    Window ``k`` is ``[k·epoch_s, (k+1)·epoch_s)`` with the last end
    pinned to ``horizon`` exactly.  Every window satisfies
    :func:`~repro.neighborhood.coordination.rotate_window`'s exact-span
    contract (``start == 0`` or ``end ≤ 2·start``).
    """
    n_epochs = max(int(round(horizon / epoch_s)), 1)
    step = horizon / n_epochs
    return [(k * step, horizon if k == n_epochs - 1 else (k + 1) * step)
            for k in range(n_epochs)]


def coordinate_fleet_online(fleet: "FleetSpec",
                            results: Sequence[RunResult],
                            horizon: float,
                            config: Optional[FeederConfig] = None,
                            forecast: Optional[ForecastConfig] = None,
                            partials: Optional[Sequence[object]] = None,
                            replan: str = "diff",
                            ) -> OnlineCoordination:
    """Run the online epoch loop over a finished fleet run.

    Like :func:`~repro.neighborhood.coordination.coordinate_fleet` this
    is pure post-exchange — the per-home simulations already ran; what
    is *online* is the information structure: every epoch's offsets are
    chosen from predictions computed before that epoch's telemetry
    exists, then applied to the realized windows under the per-epoch
    guard.  The epoch length is the feeder phase period
    (:attr:`~repro.neighborhood.coordination.FeederConfig.epoch`,
    defaulting to the fleet's largest ``maxDCP``), snapped to tile the
    horizon; envelope bins snap to tile the epoch.

    ``replan`` picks the epoch 2+ negotiation path: ``"diff"`` (the
    production default) re-publishes only homes whose predicted
    envelope moved and renegotiates incrementally from the previous
    epoch's claims; ``"cold"`` re-runs the full n² negotiation from
    scratch every epoch.  The two paths may settle on different (both
    guard-checked) claims; NBHD-ONLINE uses an oracle ``"cold"`` run
    as the hindsight ceiling the incremental loop is measured against.
    """
    if config is None:
        config = FeederConfig()
    if forecast is None:
        forecast = ForecastConfig()
    if replan not in ("diff", "cold"):
        raise ValueError(
            f"replan must be 'diff' or 'cold', got {replan!r}")
    if len(results) != fleet.n_homes:
        raise ValueError(
            f"fleet has {fleet.n_homes} homes but got {len(results)} "
            f"results")
    phase = config.epoch if config.epoch is not None \
        else max(home.scenario.max_dcp for home in fleet.homes)
    phase = min(phase, horizon)
    windows = epoch_grid(horizon, phase)
    epoch_s = horizon / len(windows)
    bin_s = snap_bin(epoch_s, config.bin_s)
    bins = max(int(round(epoch_s / bin_s)), 1)
    shifts = bins

    home_ids = [home.home_id for home in fleet.homes]
    realized = {home.home_id: result.load_w
                for home, result in zip(fleet.homes, results)}
    if partials is not None:
        independent = combine_partials(partials,
                                       [r.load_w for r in results])
    else:
        independent = sum_series([r.load_w for r in results])
    # Imported here, not at module top: repro.forecast itself imports
    # the coordination module (for envelope shapes), and this package's
    # __init__ pulls us in — a top-level import would cycle whenever
    # repro.forecast is imported first.
    from repro.forecast import PersistenceForecaster, make_forecaster
    forecaster = make_forecaster(
        forecast.forecaster, realized=realized, noise=forecast.noise,
        noise_seed=forecast.noise_seed, ewma_alpha=forecast.ewma_alpha,
        season_epochs=forecast.season_epochs)
    telemetry = TelemetryIngest(window_s=epoch_s,
                                ewma_alpha=forecast.ewma_alpha)
    from repro.faults import get_injector
    injector = get_injector()
    fallback = PersistenceForecaster()
    #: newest source epoch each home has reported through (the
    #: staleness ledger) — only consulted when an injector is active;
    #: without one it tracks `index` exactly and no home is ever stale
    latest_ingested: dict[int, int] = {}
    #: delayed batches awaiting delivery: target epoch -> batches of
    #: ``(home_id, times, values, source_epoch)``
    held: dict[int, list[tuple[int, list, list, int]]] = {}
    dropped = delayed = duplicated = stale_served = 0

    contributions = [StepSeries(result.load_w.name)
                     for result in results]
    plane: Optional[FeederPlane] = None
    previous: dict[int, tuple[float, ...]] = {}
    outcomes: list[EpochOutcome] = []
    totals = CpStats()
    total_sweeps = 0
    replanned = 0
    last_planned: tuple[float, ...] = tuple(0.0 for _ in home_ids)
    last_applied_offsets: tuple[float, ...] = last_planned

    for index, (start, end) in enumerate(windows):
        # Deliver any batches whose injected delay expires this epoch
        # *before* predicting — a recovered home predicts from real
        # (late) telemetry again instead of riding the ladder.
        for home_id, times, values, source in held.pop(index, []):
            telemetry.ingest_late(home_id, times, values)
            latest_ingested[home_id] = max(
                latest_ingested.get(home_id, -1), source)
        predictions = {}
        forced_zero: set[int] = set()
        epoch_stale = 0
        for home_id in home_ids:
            stale = index > 0 and \
                latest_ingested.get(home_id, -1) < index - 1
            if not stale:
                predictions[home_id] = forecaster.predict(
                    home_id, telemetry.series(home_id), start, end,
                    bin_s, bins)
                continue
            # Degradation ladder: persistence over whatever telemetry
            # exists, else the last committed envelope, else a zero
            # envelope with the claim pinned to offset 0.
            epoch_stale += 1
            if len(telemetry.series(home_id)):
                predictions[home_id] = fallback.predict(
                    home_id, telemetry.series(home_id), start, end,
                    bin_s, bins)
            elif home_id in previous:
                predictions[home_id] = previous[home_id]
            else:
                predictions[home_id] = tuple(0.0 for _ in range(bins))
                forced_zero.add(home_id)
        if plane is None or replan == "cold":
            changed = list(home_ids)
            claims, stats, sweeps = negotiate_offsets(
                home_ids, predictions, shifts, config)
            plane = FeederPlane(home_ids, predictions, shifts,
                                claims=claims)
        else:
            changed = [home_id for home_id in home_ids
                       if predictions[home_id] != previous[home_id]]
            for home_id in changed:
                plane.update_envelope(home_id, predictions[home_id])
            claims, stats, sweeps = renegotiate_offsets(plane, changed,
                                                        config)
        totals.rounds_total += stats.rounds_total
        totals.rounds_active += stats.rounds_active
        totals.deliveries += stats.deliveries
        totals.misses += stats.misses
        totals.duration_on_air += stats.duration_on_air
        total_sweeps += sweeps
        replanned += len(changed)

        # Ladder step 3: a home negotiating on a zero envelope holds a
        # claim, but its *applied* offset is pinned to 0 — never rotate
        # a home the plane knows nothing about.  The claims dict itself
        # stays untouched (it is the plane's live negotiation state).
        planned = tuple(
            0.0 if home_id in forced_zero else claims[home_id] * bin_s
            for home_id in home_ids)
        rotated = [rotate_window(realized[home_id], offset, start, end)
                   for home_id, offset in zip(home_ids, planned)]
        independent_peak = independent.maximum(start, end)
        coordinated_peak = sum_series(rotated).maximum(start, end)
        applied = any(offset != 0.0 for offset in planned)
        if applied and config.guard \
                and coordinated_peak >= independent_peak - 1e-9:
            applied = False
        if not applied:
            rotated = [rotate_window(realized[home_id], 0.0, start, end)
                       for home_id in home_ids]
            coordinated_peak = independent_peak
        offsets = planned if applied else tuple(0.0 for _ in planned)
        for series, window in zip(contributions, rotated):
            series.append(window.times, window.values)
        for home_id in home_ids:
            window = realized[home_id].window(start, end)
            if injector is not None:
                key = f"e{index}:{home_id}"
                if injector.fire("telemetry.drop", key):
                    dropped += 1
                    continue
                if injector.fire("telemetry.delay", key):
                    target = index + injector.delay_epochs(key)
                    if target < len(windows):
                        held.setdefault(target, []).append(
                            (home_id, list(window.times),
                             list(window.values), index))
                        delayed += 1
                    else:
                        dropped += 1  # past the horizon = never arrives
                    continue
            telemetry.ingest(home_id, window.times, window.values)
            latest_ingested[home_id] = max(
                latest_ingested.get(home_id, -1), index)
            if injector is not None and \
                    injector.fire("telemetry.dup", f"e{index}:{home_id}"):
                # Duplicate storm: the journal sees the batch twice;
                # replay() collapses the copies bit-identically.
                telemetry.log.extend(home_id, window.times,
                                     window.values)
                duplicated += 1
        stale_served += epoch_stale
        outcomes.append(EpochOutcome(
            index=index, start_s=start, end_s=end, applied=applied,
            offsets_s=offsets, changed_homes=len(changed),
            cp_rounds=stats.rounds_total,
            independent_peak_w=independent_peak,
            coordinated_peak_w=coordinated_peak,
            stale_homes=epoch_stale))
        previous = predictions
        last_planned = planned
        last_applied_offsets = offsets

    applied_any = any(outcome.applied for outcome in outcomes)
    coordinated = sum_series(contributions) if applied_any \
        else independent
    return OnlineCoordination(
        epoch=epoch_s, bin_s=bin_s,
        planned_offsets_s=last_planned,
        offsets_s=last_applied_offsets,
        applied=applied_any, sweeps=total_sweeps, cp_stats=totals,
        contributions_w=contributions, independent_w=independent,
        coordinated_w=coordinated,
        epochs=tuple(outcomes), forecaster=forecast.forecaster,
        replanned_homes=replanned,
        telemetry_digest=telemetry.log.digest(),
        telemetry_events=len(telemetry.log),
        telemetry_dropped=dropped, telemetry_delayed=delayed,
        telemetry_duplicated=duplicated,
        stale_predictions=stale_served)
