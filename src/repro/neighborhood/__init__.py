"""Neighborhood layer: many heterogeneous HANs behind one feeder.

Four modules, one pipeline (see ``docs/architecture.md``):

* :mod:`~repro.neighborhood.fleet` — deterministic heterogeneous fleet
  construction (:func:`build_fleet`);
* :mod:`~repro.neighborhood.federation` — the parallel fan-out and result
  packaging (:func:`run_neighborhood`);
* :mod:`~repro.neighborhood.coordination` — the feeder-level
  collaboration plane (:func:`coordinate_fleet`, ``docs/coordination.md``);
* :mod:`~repro.neighborhood.aggregate` — exact feeder summation and
  feeder statistics (:func:`feeder_stats`).
"""

from repro.neighborhood.aggregate import (
    FeederComparison,
    FeederStats,
    feeder_stats,
    sum_series,
)
from repro.neighborhood.coordination import (
    FeederConfig,
    FeederCoordination,
    FeederPlane,
    HomeItem,
    coordinate_fleet,
    negotiate_offsets,
    phase_envelope,
    rotate_series,
)
from repro.neighborhood.federation import (
    COORDINATION_MODES,
    NeighborhoodResult,
    execute_fleet,
    run_neighborhood,
)
from repro.neighborhood.fleet import (
    FleetSpec,
    HomeSpec,
    build_fleet,
    home_seed,
)

__all__ = [
    "COORDINATION_MODES",
    "FeederComparison",
    "FeederConfig",
    "FeederCoordination",
    "FeederPlane",
    "FeederStats",
    "FleetSpec",
    "HomeItem",
    "HomeSpec",
    "NeighborhoodResult",
    "build_fleet",
    "coordinate_fleet",
    "execute_fleet",
    "feeder_stats",
    "home_seed",
    "negotiate_offsets",
    "phase_envelope",
    "rotate_series",
    "run_neighborhood",
    "sum_series",
]
