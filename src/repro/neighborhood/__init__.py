"""Neighborhood layer: many heterogeneous HANs behind one feeder.

Eight modules, one pipeline (see ``docs/architecture.md``):

* :mod:`~repro.neighborhood.fleet` — deterministic heterogeneous fleet
  construction (:func:`build_fleet`);
* :mod:`~repro.neighborhood.federation` — the parallel fan-out and result
  packaging (:func:`run_neighborhood`);
* :mod:`~repro.neighborhood.shard` — fleet-scale execution: per-shard
  sub-specs, worker-local pre-reduction (:func:`plan_shards`);
* :mod:`~repro.neighborhood.transport` — batched shared-memory series
  frames between workers and the parent;
* :mod:`~repro.neighborhood.coordination` — the feeder-level
  collaboration plane (:func:`coordinate_fleet`, ``docs/coordination.md``);
* :mod:`~repro.neighborhood.aggregate` — exact feeder summation and
  feeder statistics (:func:`feeder_stats`);
* :mod:`~repro.neighborhood.grid` — fleet of fleets: multi-feeder grids
  under one substation with two-tier coordination
  (:func:`execute_grid`, ``docs/grid.md``);
* :mod:`~repro.neighborhood.online` — per-epoch coordination against
  predicted envelopes from streaming telemetry
  (:func:`coordinate_fleet_online`, ``docs/online.md``).
"""

from repro.neighborhood.aggregate import (
    FeederComparison,
    FeederStats,
    SeriesPartial,
    combine_partials,
    feeder_stats,
    partial_sum,
    sum_series,
)
from repro.neighborhood.coordination import (
    FeederConfig,
    FeederCoordination,
    FeederPlane,
    HomeItem,
    coordinate_fleet,
    negotiate_offsets,
    phase_envelope,
    phase_envelope_window,
    renegotiate_offsets,
    rotate_series,
    rotate_window,
    snap_bin,
)
from repro.neighborhood.federation import (
    COORDINATION_MODES,
    NeighborhoodResult,
    execute_fleet,
    run_neighborhood,
)
from repro.neighborhood.fleet import (
    FleetSpec,
    HomeSpec,
    build_fleet,
    home_seed,
)
from repro.neighborhood.grid import (
    GRID_COORDINATION_MODES,
    GridResult,
    GridSpec,
    build_grid,
    coordinate_profiles,
    execute_grid,
    feeder_seed,
)
from repro.neighborhood.online import (
    EpochOutcome,
    ForecastConfig,
    OnlineCoordination,
    coordinate_fleet_online,
    epoch_grid,
)
from repro.neighborhood.shard import (
    ShardSpec,
    plan_shards,
    shard_fleet,
)

__all__ = [
    "COORDINATION_MODES",
    "EpochOutcome",
    "FeederComparison",
    "FeederConfig",
    "FeederCoordination",
    "FeederPlane",
    "FeederStats",
    "FleetSpec",
    "ForecastConfig",
    "GRID_COORDINATION_MODES",
    "GridResult",
    "GridSpec",
    "HomeItem",
    "HomeSpec",
    "NeighborhoodResult",
    "OnlineCoordination",
    "SeriesPartial",
    "ShardSpec",
    "build_fleet",
    "build_grid",
    "combine_partials",
    "coordinate_fleet",
    "coordinate_fleet_online",
    "coordinate_profiles",
    "epoch_grid",
    "execute_fleet",
    "execute_grid",
    "feeder_seed",
    "feeder_stats",
    "home_seed",
    "negotiate_offsets",
    "partial_sum",
    "phase_envelope",
    "phase_envelope_window",
    "plan_shards",
    "renegotiate_offsets",
    "rotate_series",
    "rotate_window",
    "run_neighborhood",
    "shard_fleet",
    "snap_bin",
    "sum_series",
]
