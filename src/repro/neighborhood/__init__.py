"""Neighborhood layer: many heterogeneous HANs behind one feeder."""

from repro.neighborhood.aggregate import (
    FeederStats,
    feeder_stats,
    sum_series,
)
from repro.neighborhood.federation import (
    NeighborhoodResult,
    run_neighborhood,
)
from repro.neighborhood.fleet import (
    FleetSpec,
    HomeSpec,
    build_fleet,
    home_seed,
)

__all__ = [
    "FeederStats",
    "FleetSpec",
    "HomeSpec",
    "NeighborhoodResult",
    "build_fleet",
    "feeder_stats",
    "home_seed",
    "run_neighborhood",
    "sum_series",
]
