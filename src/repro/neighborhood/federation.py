"""Running a neighborhood: fan the homes out, aggregate the feeder.

Each home is one independent :class:`~repro.core.system.HanSystem` run (the
paper's decentralized coordination never crosses the home's meter), so a
neighborhood is embarrassingly parallel: the federation hands every home to
the :class:`~repro.experiments.runner.ParallelRunner` and sums the returned
load series into the feeder profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.loadstats import LoadStats, load_stats
from repro.analysis.report import format_table
from repro.core.system import RunResult
from repro.experiments.runner import ParallelRunner, RunSpec
from repro.neighborhood.aggregate import FeederStats, feeder_stats, sum_series
from repro.neighborhood.fleet import FleetSpec
from repro.sim.monitor import StepSeries


@dataclass
class NeighborhoodResult:
    """One neighborhood run: per-home results plus the feeder aggregate."""

    fleet: FleetSpec
    homes: list[RunResult]
    feeder_w: StepSeries
    horizon: float

    def home_stats(self, start: float = 0.0,
                   end: Optional[float] = None) -> list[LoadStats]:
        window_end = end if end is not None else self.horizon
        return [load_stats(result.load_w, start, window_end)
                for result in self.homes]

    def feeder_stats(self, start: float = 0.0,
                     end: Optional[float] = None,
                     home_stats: Optional[list[LoadStats]] = None,
                     ) -> FeederStats:
        """Feeder aggregate; pass ``home_stats`` to reuse per-home stats
        already computed for the same window."""
        window_end = end if end is not None else self.horizon
        if home_stats is None:
            home_stats = self.home_stats(start, window_end)
        return feeder_stats(
            self.feeder_w, [result.load_w for result in self.homes],
            start, window_end, precomputed_home_stats=home_stats)

    def total_requests(self) -> int:
        return sum(len(result.requests) for result in self.homes)

    def render(self) -> str:
        """Plain-text report: one row per home, then the feeder summary."""
        home_stats = self.home_stats()
        rows = []
        for spec, stats in zip(self.fleet.homes, home_stats):
            scenario = spec.scenario
            rows.append([scenario.name, spec.archetype, scenario.n_devices,
                         f"{scenario.arrival_rate_per_hour:.1f}",
                         stats.peak_kw, stats.mean_kw, stats.std_kw])
        homes_table = format_table(
            ["home", "archetype", "devices", "rate/h", "peak kW",
             "mean kW", "std kW"],
            rows, title=f"Neighborhood {self.fleet.name} (seed "
                        f"{self.fleet.seed}, {self.fleet.total_devices} "
                        f"devices)")
        feeder_table = format_table(
            ["feeder metric", "value"],
            self.feeder_stats(home_stats=home_stats).rows(),
            title="Feeder aggregate")
        return f"{homes_table}\n\n{feeder_table}"


def run_neighborhood(fleet: FleetSpec, jobs: int = 1,
                     until: Optional[float] = None,
                     mp_context: Optional[str] = None) -> NeighborhoodResult:
    """Run every home of ``fleet`` (over ``jobs`` workers) and aggregate.

    Homes are seeded independently (see
    :func:`~repro.neighborhood.fleet.home_seed`), so the result is
    bit-identical for any ``jobs``.
    """
    specs = [RunSpec(name=home.scenario.name, config=home.config(),
                     until=until)
             for home in fleet.homes]
    results = ParallelRunner(jobs=jobs, mp_context=mp_context).run(specs)
    horizon = until if until is not None else fleet.horizon
    feeder = sum_series([result.load_w for result in results])
    return NeighborhoodResult(fleet=fleet, homes=results, feeder_w=feeder,
                              horizon=horizon)
