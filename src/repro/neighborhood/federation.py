"""Running a neighborhood: fan the homes out, aggregate the feeder.

Each home is one independent :class:`~repro.core.system.HanSystem` run (the
paper's decentralized coordination never crosses the home's meter), so a
neighborhood is embarrassingly parallel: the federation hands every home to
the :class:`~repro.experiments.runner.ParallelRunner` and sums the returned
load series into the feeder profile.

With ``coordination="feeder"`` a second, cross-home collaboration plane
runs after the fan-out: the feeder CP of
:mod:`repro.neighborhood.coordination` negotiates per-home phase offsets
(the paper's announce/claim/stagger exchange, one level up) and the feeder
profile becomes the sum of the re-phased homes.  The home runs themselves
— and therefore per-home peaks, energies and request logs — are untouched,
and the whole pipeline stays bit-identical for any ``jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.loadstats import LoadStats, load_stats
from repro.analysis.report import format_table
from repro.core.system import RunResult
from repro.experiments.runner import ParallelRunner, RunSpec
from repro.neighborhood.aggregate import (
    FeederComparison,
    FeederStats,
    combine_partials,
    feeder_stats,
    sum_series,
)
from repro.neighborhood.shard import execute_shards, plan_shards
from repro.neighborhood.coordination import (
    FeederConfig,
    FeederCoordination,
    coordinate_fleet,
    snap_bin,
)
from repro.neighborhood.fleet import FleetSpec
from repro.sim.monitor import StepSeries

#: How homes behind the feeder relate: ``"independent"`` (the paper's
#: scheme stops at the meter), ``"feeder"`` (post-hoc cross-home
#: staggering via :mod:`repro.neighborhood.coordination`), or
#: ``"online"`` (per-epoch re-negotiation against predicted envelopes
#: via :mod:`repro.neighborhood.online`).
COORDINATION_MODES = ("independent", "feeder", "online")


@dataclass
class NeighborhoodResult:
    """One neighborhood run: per-home results plus the feeder aggregate.

    When the run was feeder-coordinated, :attr:`coordination` carries the
    negotiated :class:`~repro.neighborhood.coordination.FeederCoordination`
    and :attr:`feeder_w` is the *coordinated* profile; :meth:`comparison`
    then reports the uplift over the independent baseline (which rides
    along in the coordination record — no second run needed).
    """

    fleet: FleetSpec
    homes: list[RunResult]
    feeder_w: StepSeries
    horizon: float
    coordination: Optional[FeederCoordination] = field(default=None)
    #: The declarative :class:`~repro.api.spec.ExperimentSpec` this run
    #: compiled from, when it came through the spec API (``None`` for
    #: hand-built fleets); exporters embed its hash + canonical JSON.
    spec: Optional[object] = field(default=None)
    #: Per-home stats over the default ``[0, horizon)`` window, when the
    #: shard workers pre-computed them (fleet order); :meth:`home_stats`
    #: serves this cache for the default window — same code path in the
    #: worker, so the values are bit-identical to computing them here.
    precomputed_home_stats: Optional[list[LoadStats]] = \
        field(default=None, repr=False)

    @property
    def contributions_w(self) -> list[StepSeries]:
        """Per-home feeder contributions, fleet order.

        The homes' own load series when independent; their phase-rotated
        series under feeder coordination.  Either way the feeder profile
        is exactly their sum.
        """
        if self.coordination is not None:
            return self.coordination.contributions_w
        return [result.load_w for result in self.homes]

    def home_stats(self, start: float = 0.0,
                   end: Optional[float] = None) -> list[LoadStats]:
        """Per-home :class:`~repro.analysis.loadstats.LoadStats`.

        Computed from the homes' own (un-rotated) series: phase rotation
        preserves peak, mean, std and energy, so these are the homes'
        statistics under either coordination mode.
        """
        window_end = end if end is not None else self.horizon
        if (self.precomputed_home_stats is not None and start == 0.0
                and window_end == self.horizon):
            return list(self.precomputed_home_stats)
        return [load_stats(result.load_w, start, window_end)
                for result in self.homes]

    def feeder_stats(self, start: float = 0.0,
                     end: Optional[float] = None,
                     home_stats: Optional[list[LoadStats]] = None,
                     ) -> FeederStats:
        """Feeder aggregate; pass ``home_stats`` to reuse per-home stats
        already computed for the same window."""
        window_end = end if end is not None else self.horizon
        if home_stats is None:
            home_stats = self.home_stats(start, window_end)
        return feeder_stats(
            self.feeder_w, self.contributions_w,
            start, window_end, precomputed_home_stats=home_stats)

    def comparison(self, start: float = 0.0,
                   end: Optional[float] = None) -> Optional[FeederComparison]:
        """Coordinated-vs-independent uplift, if this run was coordinated.

        Returns ``None`` for an independent run (there is nothing to
        compare against without re-running the fleet).
        """
        if self.coordination is None:
            return None
        window_end = end if end is not None else self.horizon
        home_stats = self.home_stats(start, window_end)
        independent = feeder_stats(
            self.coordination.independent_w,
            [result.load_w for result in self.homes],
            start, window_end, precomputed_home_stats=home_stats)
        coordinated = feeder_stats(
            self.coordination.coordinated_w, self.contributions_w,
            start, window_end, precomputed_home_stats=home_stats)
        return FeederComparison(independent=independent,
                                coordinated=coordinated)

    def total_requests(self) -> int:
        """Number of user requests across every home."""
        return sum(len(result.requests) for result in self.homes)

    def render(self) -> str:
        """Plain-text report: one row per home, then the feeder summary.

        Coordinated runs additionally show each home's phase offset and
        the coordinated-vs-independent comparison table.
        """
        home_stats = self.home_stats()
        coordinated = self.coordination is not None
        rows = []
        for index, (spec, stats) in enumerate(zip(self.fleet.homes,
                                                  home_stats)):
            scenario = spec.scenario
            row = [scenario.name, spec.archetype, scenario.n_devices,
                   f"{scenario.arrival_rate_per_hour:.1f}",
                   stats.peak_kw, stats.mean_kw, stats.std_kw]
            if coordinated:
                offset = self.coordination.offsets_s[index]
                row.append(f"{offset / 60.0:.1f}")
            rows.append(row)
        headers = ["home", "archetype", "devices", "rate/h", "peak kW",
                   "mean kW", "std kW"]
        if coordinated:
            headers.append("phase min")
        homes_table = format_table(
            headers, rows,
            title=f"Neighborhood {self.fleet.name} (seed "
                  f"{self.fleet.seed}, {self.fleet.total_devices} "
                  f"devices)")
        feeder_table = format_table(
            ["feeder metric", "value"],
            self.feeder_stats(home_stats=home_stats).rows(),
            title="Feeder aggregate")
        parts = [homes_table, feeder_table]
        if coordinated:
            plan = self.coordination
            comparison = self.comparison()
            status = "applied" if plan.applied else \
                "declined (no realized improvement)"
            epochs = getattr(plan, "epochs", None)
            if epochs:
                title = (f"Online coordination ({status}; "
                         f"{plan.forecaster} forecast, "
                         f"{plan.epochs_applied}/{plan.n_epochs} epochs "
                         f"applied, {plan.cp_stats.rounds_total} CP "
                         f"rounds, {plan.replanned_homes} replans)")
            else:
                title = (f"Feeder coordination ({status}; "
                         f"epoch {plan.epoch / 60.0:.0f} min, "
                         f"{plan.cp_stats.rounds_total} CP rounds, "
                         f"{plan.sweeps} sweeps)")
            comparison_table = format_table(
                ["feeder metric", "independent", "coordinated"],
                comparison.rows(), title=title)
            parts.append(comparison_table)
        return "\n\n".join(parts)


def execute_fleet(fleet: FleetSpec, jobs: int = 1,
                  until: Optional[float] = None,
                  mp_context: Optional[str] = None,
                  coordination: str = "independent",
                  feeder: Optional[FeederConfig] = None,
                  spec: Optional[object] = None,
                  shard_size: Optional[int] = None,
                  transport: Optional[str] = None,
                  shard_executor=None,
                  forecast: Optional[object] = None) -> NeighborhoodResult:
    """Run every home of ``fleet`` (over ``jobs`` workers) and aggregate.

    This is the neighborhood execution primitive the spec API bottoms
    out in (:func:`repro.api.run.run` compiles the fleet and calls
    here, threading the originating spec through for provenance);
    application code should describe neighborhoods declaratively and go
    through the spec API.

    Homes are seeded independently (see
    :func:`~repro.neighborhood.fleet.home_seed`), so the result is
    bit-identical for any ``jobs``.

    ``coordination`` selects the feeder behaviour (one of
    :data:`COORDINATION_MODES`): ``"independent"`` sums the homes as they
    ran; ``"feeder"`` additionally negotiates cross-home phase offsets
    through :func:`~repro.neighborhood.coordination.coordinate_fleet`
    (optionally tuned by a
    :class:`~repro.neighborhood.coordination.FeederConfig`) and sums the
    re-phased homes instead; ``"online"`` re-negotiates every CP epoch
    against predicted envelopes
    (:func:`~repro.neighborhood.online.coordinate_fleet_online`), with
    ``forecast`` — a :class:`~repro.neighborhood.online.ForecastConfig`
    or any object carrying its fields — selecting the forecaster.

    ``shard_size`` / ``transport`` tune the fleet-scale execution
    strategy (see :mod:`repro.neighborhood.shard`): large fleets are
    auto-sharded so each worker runs a whole sub-fleet, pre-reduces it
    locally and ships one batched series frame; ``shard_size=0`` forces
    the per-home path.  Pure execution knobs — results are bit-identical
    for every combination.

    ``shard_executor`` swaps the per-shard worker body on the sharded
    path (see :func:`repro.neighborhood.shard.execute_shards`) — the
    service plane's checkpointing hook; ignored when the fleet runs
    per-home.
    """
    if coordination not in COORDINATION_MODES:
        known = ", ".join(COORDINATION_MODES)
        raise ValueError(
            f"coordination must be one of: {known}; got {coordination!r}")
    horizon = until if until is not None else fleet.horizon
    # Coordinating runs ask the shard workers to pre-reduce each home's
    # phase envelope at the exact (snapped) bin the plane will negotiate
    # with, so the parent-side cost of coordination stays flat in N.
    envelope_bin = None
    if coordination == "feeder":
        envelope_bin = snap_bin(
            horizon, (feeder or FeederConfig()).bin_s)
    shards = plan_shards(fleet, until=until, shard_size=shard_size,
                         jobs=jobs, transport=transport,
                         envelope_bin_s=envelope_bin)
    partials = None
    home_stats = None
    envelopes = None
    if shards is not None:
        results, partials, home_stats, envelopes = execute_shards(
            shards, jobs=jobs, mp_context=mp_context,
            executor=shard_executor)
    else:
        specs = [RunSpec(name=home.scenario.name, config=home.config(),
                         until=until)
                 for home in fleet.homes]
        results = ParallelRunner(jobs=jobs,
                                 mp_context=mp_context).run(specs)
    if coordination == "feeder":
        plan = coordinate_fleet(fleet, results, horizon, config=feeder,
                                partials=partials, envelopes=envelopes)
        return NeighborhoodResult(fleet=fleet, homes=results,
                                  feeder_w=plan.coordinated_w,
                                  horizon=horizon, coordination=plan,
                                  spec=spec,
                                  precomputed_home_stats=home_stats)
    if coordination == "online":
        from repro.neighborhood.online import (
            ForecastConfig,
            coordinate_fleet_online,
        )
        if forecast is not None and not isinstance(forecast,
                                                   ForecastConfig):
            forecast = ForecastConfig(
                forecaster=forecast.forecaster, noise=forecast.noise,
                noise_seed=forecast.noise_seed,
                ewma_alpha=forecast.ewma_alpha,
                season_epochs=forecast.season_epochs)
        plan = coordinate_fleet_online(fleet, results, horizon,
                                       config=feeder, forecast=forecast,
                                       partials=partials)
        return NeighborhoodResult(fleet=fleet, homes=results,
                                  feeder_w=plan.coordinated_w,
                                  horizon=horizon, coordination=plan,
                                  spec=spec,
                                  precomputed_home_stats=home_stats)
    if partials is not None:
        feeder_w = combine_partials(
            partials, [result.load_w for result in results])
    else:
        feeder_w = sum_series([result.load_w for result in results])
    return NeighborhoodResult(fleet=fleet, homes=results, feeder_w=feeder_w,
                              horizon=horizon, spec=spec,
                              precomputed_home_stats=home_stats)


def run_neighborhood(fleet: FleetSpec, jobs: int = 1,
                     until: Optional[float] = None,
                     mp_context: Optional[str] = None,
                     coordination: str = "independent",
                     feeder: Optional[FeederConfig] = None,
                     ) -> NeighborhoodResult:
    """Deprecated fleet runner; use :func:`repro.api.run.run`.

    Shim over :func:`execute_fleet`, the same executor a neighborhood
    :class:`~repro.api.spec.ExperimentSpec` compiles into — results are
    bit-identical.  Kept because pre-built :class:`FleetSpec` values
    (the escape hatch for hand-crafted fleets) have no declarative
    form.
    """
    import warnings
    warnings.warn(
        "run_neighborhood() is deprecated; build a neighborhood "
        "ExperimentSpec and call repro.api.run() instead",
        DeprecationWarning, stacklevel=2)
    return execute_fleet(fleet, jobs=jobs, until=until,
                         mp_context=mp_context, coordination=coordination,
                         feeder=feeder)
