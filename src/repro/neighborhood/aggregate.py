"""Feeder-level aggregation of per-home load series.

Homes behind one feeder are electrically independent; the feeder sees the
*sum* of their step-function load profiles.  Aggregation is exact (event
merge, no resampling) and deterministic: the per-event totals are the
*correctly rounded* sums of the member values — the same value
``math.fsum`` produces — so the aggregate is bit-identical regardless of
which worker produced which home **and regardless of how the fleet was
partitioned into shards**.  The fast path is a vectorized compensated
sum (:func:`_sum2_columns`) with a per-event rounding-certainty margin;
the vanishingly rare events the margin cannot certify are re-summed with
``math.fsum`` directly.

Fleet-scale runs pre-reduce per shard: each worker folds its homes into
one :class:`SeriesPartial` (hi/lo compensated pair per event), and the
parent combines S partials instead of N homes
(:func:`combine_partials`) — same bits, a fleet-size-independent parent
loop.

:class:`FeederStats` summarises one feeder profile;
:class:`FeederComparison` puts two of them side by side — the independent
and the feeder-coordinated profile of the *same* fleet run — and reports
the diversity-factor uplift the coordination plane
(:mod:`repro.neighborhood.coordination`) achieved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.loadstats import (
    LoadStats,
    coincidence_factor,
    diversity_factor,
    load_stats,
    percent_reduction,
    relative_difference,
)
from repro.sim.monitor import StepSeries

#: unit roundoff of IEEE-754 binary64
_U = 2.0 ** -53


def dedup_records(times: np.ndarray,
                  values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """What :meth:`~repro.sim.monitor.StepSeries.record` would keep.

    Replays a ``(time, value)``-lexsorted event stream through the record
    semantics — same-instant groups collapse to their last entry, and an
    entry equal to the value already in force is dropped *unless* it got
    there via a same-instant overwrite — entirely vectorized.  The
    returned arrays feed :meth:`~repro.sim.monitor.StepSeries.from_arrays`
    bit-identically to a scalar record loop over the same (sorted)
    stream.

    The lexsort precondition is load-bearing, not cosmetic: within a
    same-instant group the record loop's skip-then-overwrite behaviour
    depends on entry order, and the vectorized collapse below is only
    its equal for value-ascending groups — so unsorted input is rejected
    rather than silently mis-collapsed.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return times, values
    time_step = np.diff(times)
    if np.any(time_step < 0) or np.any(
            (time_step == 0) & (np.diff(values) < 0)):
        raise ValueError("dedup_records needs a (time, value)-lexsorted "
                         "stream")
    # Last entry of each same-instant group wins (same-instant overwrite);
    # the group's *first* value decides whether the whole group was a
    # no-change skip (record() only skips while nothing of the group has
    # been appended, and values within a group arrive sorted).
    boundary = times[1:] != times[:-1]
    last = np.concatenate([boundary, [True]])
    first = np.concatenate([[True], boundary])
    group_times = times[last]
    group_last = values[last]
    group_first = values[first]
    keep = np.empty(group_times.size, dtype=bool)
    keep[0] = True
    keep[1:] = ~((group_first[1:] == group_last[1:])
                 & (group_last[1:] == group_last[:-1]))
    return group_times[keep], group_last[keep]


def _sample_arrays(times: np.ndarray, values: np.ndarray,
                   query: np.ndarray) -> np.ndarray:
    """Step-function sampling on raw arrays (0.0 before the first event).

    The array twin of :meth:`~repro.sim.monitor.StepSeries.sample`, for
    consumers that hold a series as bare ``(times, values)`` pairs (shard
    partials, transport frames).
    """
    if times.size == 0:
        return np.zeros(query.shape, dtype=float)
    index = np.searchsorted(times, query, side="right") - 1
    out = values[np.maximum(index, 0)]
    return np.where(index >= 0, out, 0.0)


def _sum2_columns(columns: Sequence[np.ndarray],
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compensated (Sum2) column-wise sum: ``(hi, lo, abs_sum)`` per row.

    One error-free two-sum per column keeps ``hi + lo`` within
    ``O((n·u)²) · Σ|x|`` of the exact sum (Ogita–Rump–Oishi *Sum2*), all
    rows at once; ``abs_sum`` scales that bound per row.
    """
    hi = np.zeros_like(np.asarray(columns[0], dtype=float))
    lo = np.zeros_like(hi)
    abs_sum = np.zeros_like(hi)
    for column in columns:
        column = np.asarray(column, dtype=float)
        total = hi + column
        virtual = total - hi
        err = (hi - (total - virtual)) + (column - virtual)
        lo = lo + err
        abs_sum = abs_sum + np.abs(column)
        hi = total
    return hi, lo, abs_sum


def _sum2_error_bound(n_terms: int, abs_sum: np.ndarray) -> np.ndarray:
    """Per-row bound on ``|exact − (hi + lo)|`` after :func:`_sum2_columns`.

    Published Sum2 bound is ``2·γ²(n−1)·Σ|x|``; the factor 8 absorbs the
    γ-vs-``n·u`` slack and the rounding of ``abs_sum`` itself.
    """
    return (8.0 * (n_terms * _U) ** 2) * abs_sum


def _round_to_nearest(hi: np.ndarray, lo: np.ndarray,
                      err_bound: np.ndarray,
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Round ``hi + lo (± err_bound)`` to one float; flag uncertain rows.

    Returns ``(sums, uncertain)``: ``sums[i]`` is guaranteed to equal the
    correctly rounded exact sum wherever ``uncertain[i]`` is False.  The
    certainty test is conservative — the residual of ``fl(hi + lo)`` plus
    the error bound must clear a quarter-ulp margin, which keeps the exact
    sum strictly inside the rounding interval and away from ties.
    """
    rounded = hi + lo
    virtual = rounded - hi
    residual = (hi - (rounded - virtual)) + (lo - virtual)
    margin = 0.25 * np.spacing(np.abs(rounded))
    certain = (np.abs(residual) + err_bound) < margin
    # Exactly-zero rows (no load anywhere) under-run the spacing test.
    certain |= (err_bound == 0.0) & (residual == 0.0)
    return rounded, ~certain


def _exact_row_sums(columns: Sequence[np.ndarray],
                    fallback: Callable[[np.ndarray], np.ndarray],
                    ) -> np.ndarray:
    """Correctly rounded per-row sums over ``columns``.

    The vectorized Sum2 pass covers (in practice) every row; rows whose
    certainty margin fails — exact sums within ``~2⁻⁸⁶`` relative of a
    rounding boundary — are recomputed via ``fallback(row_indices)``,
    which must return the ``math.fsum`` of each flagged row.
    """
    hi, lo, abs_sum = _sum2_columns(columns)
    sums, uncertain = _round_to_nearest(
        hi, lo, _sum2_error_bound(len(columns), abs_sum))
    if uncertain.any():
        rows = np.flatnonzero(uncertain)
        sums[rows] = fallback(rows)
    return sums


def sum_series(series_list: Sequence[StepSeries],
               name: str = "feeder") -> StepSeries:
    """Exact sum of step functions: a new series stepping at every event.

    Fully vectorized, bit-identical to the scalar definition: every
    member is sampled at the sorted-unique union of event times, per-event
    totals are the correctly rounded sums of the member values (the
    ``math.fsum`` value, via :func:`_exact_row_sums`), and the output
    keeps exactly the events a scalar ``record`` loop would keep.
    """
    gathered = [series._data()[0] for series in series_list
                if len(series)]
    if not gathered:
        return StepSeries(name)
    events = np.unique(np.concatenate(gathered))
    columns = [series.sample(events) for series in series_list]

    def _fsum_rows(rows: np.ndarray) -> np.ndarray:
        stacked = np.stack([column[rows] for column in columns], axis=1)
        return np.array([math.fsum(row.tolist()) for row in stacked])

    sums = _exact_row_sums(columns, _fsum_rows)
    times, values = dedup_records(events, sums)
    return StepSeries.from_arrays(name, times, values)


@dataclass(frozen=True)
class SeriesPartial:
    """A shard's pre-reduced (compensated) partial sum of its home series.

    ``hi + lo`` tracks the shard's exact per-event total to within
    :func:`_sum2_error_bound` of ``n_series`` terms scaled by ``abs_w``;
    between events every component is constant, so sampling the three
    arrays at any later event grid reproduces the shard's exact state
    there.  Produced by workers (:func:`partial_sum`), consumed by the
    parent (:func:`combine_partials`) — N per-home columns collapse to S
    shard columns without changing a bit of the final feeder profile.
    """

    times: np.ndarray
    hi: np.ndarray
    lo: np.ndarray
    abs_w: np.ndarray
    n_series: int

    @classmethod
    def empty(cls, n_series: int = 0) -> "SeriesPartial":
        """The partial of a shard with no recorded events."""
        zero = np.zeros(0, dtype=float)
        return cls(times=zero, hi=zero, lo=zero, abs_w=zero,
                   n_series=n_series)


def partial_sum(series_list: Sequence[StepSeries]) -> SeriesPartial:
    """Pre-reduce a group of series into one :class:`SeriesPartial`.

    Runs in the shard worker: the group's union event grid plus the
    compensated column sum over its members.  Deterministic — pure
    arithmetic on the (bit-deterministic) member series, no rounding
    decision is taken here.
    """
    gathered = [series._data()[0] for series in series_list
                if len(series)]
    if not gathered:
        return SeriesPartial.empty(len(series_list))
    events = np.unique(np.concatenate(gathered))
    columns = [series.sample(events) for series in series_list]
    hi, lo, abs_sum = _sum2_columns(columns)
    return SeriesPartial(times=events, hi=hi, lo=lo, abs_w=abs_sum,
                         n_series=len(series_list))


def combine_partials(partials: Sequence[SeriesPartial],
                     series_list: Optional[Sequence[StepSeries]] = None,
                     name: str = "feeder") -> StepSeries:
    """Fold shard partials into the feeder profile, bit-identically.

    The parent-side half of sharded aggregation: samples every shard's
    ``(hi, lo, abs)`` state at the global union of events and re-reduces
    2·S compensated columns.  Because each certified row is the
    *correctly rounded* exact total — a value independent of the
    partition — the result equals :func:`sum_series` over the flat home
    list for any shard size.  ``series_list`` (the full per-home series,
    which the parent holds anyway for per-home reporting) serves the
    ``math.fsum`` fallback on uncertain rows; omitting it is only safe
    for callers that accept a (never yet observed) ``ValueError`` there.
    """
    nonempty = [p for p in partials if p.times.size]
    if not nonempty:
        return StepSeries(name)
    events = np.unique(np.concatenate([p.times for p in nonempty]))
    columns: list[np.ndarray] = []
    carried_bound = np.zeros(events.size, dtype=float)
    for partial in nonempty:
        columns.append(_sample_arrays(partial.times, partial.hi, events))
        columns.append(_sample_arrays(partial.times, partial.lo, events))
        carried_bound += _sum2_error_bound(
            partial.n_series,
            _sample_arrays(partial.times, partial.abs_w, events))
    hi, lo, abs_sum = _sum2_columns(columns)
    bound = carried_bound + _sum2_error_bound(len(columns), abs_sum)
    sums, uncertain = _round_to_nearest(hi, lo, bound)
    if uncertain.any():
        if series_list is None:
            raise ValueError(
                "combine_partials needs the member series to settle "
                "rounding-boundary events; pass series_list")
        rows = np.flatnonzero(uncertain)
        row_times = events[rows]
        stacked = np.stack([series.sample(row_times)
                            for series in series_list], axis=1)
        sums[rows] = [math.fsum(row.tolist()) for row in stacked]
    times, values = dedup_records(events, sums)
    return StepSeries.from_arrays(name, times, values)


@dataclass(frozen=True)
class FeederStats:
    """What the feeder operator cares about, beyond one home's LoadStats."""

    feeder: LoadStats
    n_homes: int
    #: Peak of the *summed* profile — what the feeder must actually carry.
    coincident_peak_kw: float
    #: Sum of each home's individual peak — the no-diversity worst case.
    sum_home_peaks_kw: float
    #: sum_home_peaks / coincident_peak (>= 1; higher = more staggering).
    diversity_factor: float
    #: 1 / diversity_factor (<= 1).
    coincidence_factor: float
    #: Time-weighted std of the feeder load — the paper's "load variation"
    #: lifted to neighborhood scale.
    load_variation_kw: float

    def rows(self) -> list[list[object]]:
        """Table rows for plain-text reporting."""
        return [
            ["homes", self.n_homes],
            ["coincident peak", f"{self.coincident_peak_kw:.2f} kW"],
            ["sum of home peaks", f"{self.sum_home_peaks_kw:.2f} kW"],
            ["diversity factor", f"{self.diversity_factor:.3f}"],
            ["coincidence factor", f"{self.coincidence_factor:.3f}"],
            ["load variation (std)", f"{self.load_variation_kw:.2f} kW"],
            ["average load", f"{self.feeder.mean_kw:.2f} kW"],
            ["energy", f"{self.feeder.energy_kwh:.2f} kWh"],
        ]


@dataclass(frozen=True)
class FeederComparison:
    """Coordinated vs independent feeder behaviour of one fleet run.

    Both sides describe the *same* homes over the same window; the
    coordinated side only re-phases them (see
    :func:`repro.neighborhood.coordination.rotate_series`), so per-home
    peaks and energies are identical by construction and every difference
    below is pure cross-home staggering.
    """

    independent: FeederStats
    coordinated: FeederStats

    @property
    def diversity_uplift(self) -> float:
        """coordinated / independent diversity factor (> 1 = improvement)."""
        return self.coordinated.diversity_factor \
            / self.independent.diversity_factor

    @property
    def peak_reduction_pct(self) -> float:
        """Coincident-peak reduction achieved by cross-home staggering."""
        return percent_reduction(self.independent.coincident_peak_kw,
                                 self.coordinated.coincident_peak_kw)

    @property
    def variation_reduction_pct(self) -> float:
        """Feeder load-variation (std) reduction."""
        return percent_reduction(self.independent.load_variation_kw,
                                 self.coordinated.load_variation_kw)

    @property
    def energy_drift_pct(self) -> float:
        """Feeder energy disagreement — 0 up to float rounding, because
        phase rotation conserves every home's energy exactly."""
        return 100.0 * relative_difference(
            self.independent.feeder.energy_kwh,
            self.coordinated.feeder.energy_kwh)

    def rows(self) -> list[list[object]]:
        """Table rows for plain-text reporting."""
        indep, coord = self.independent, self.coordinated
        return [
            ["coincident peak",
             f"{indep.coincident_peak_kw:.2f} kW",
             f"{coord.coincident_peak_kw:.2f} kW"],
            ["diversity factor",
             f"{indep.diversity_factor:.3f}",
             f"{coord.diversity_factor:.3f}"],
            ["load variation (std)",
             f"{indep.load_variation_kw:.2f} kW",
             f"{coord.load_variation_kw:.2f} kW"],
            ["energy",
             f"{indep.feeder.energy_kwh:.2f} kWh",
             f"{coord.feeder.energy_kwh:.2f} kWh"],
            ["diversity uplift", "-", f"{self.diversity_uplift:.3f}x"],
            ["peak reduction", "-", f"{self.peak_reduction_pct:.1f}%"],
        ]


def feeder_stats(feeder_w: StepSeries,
                 home_series: Sequence[StepSeries],
                 start: float, end: float,
                 precomputed_home_stats: Optional[Sequence[LoadStats]] = None,
                 ) -> FeederStats:
    """Compute :class:`FeederStats` over ``[start, end)``."""
    stats = load_stats(feeder_w, start, end)
    if precomputed_home_stats is not None:
        home_peaks = [s.peak_kw for s in precomputed_home_stats]
    else:
        home_peaks = [load_stats(series, start, end).peak_kw
                      for series in home_series]
    return FeederStats(
        feeder=stats,
        n_homes=len(home_series),
        coincident_peak_kw=stats.peak_kw,
        sum_home_peaks_kw=float(sum(home_peaks)),
        diversity_factor=diversity_factor(home_peaks, stats.peak_kw),
        coincidence_factor=coincidence_factor(home_peaks, stats.peak_kw),
        load_variation_kw=stats.std_kw)
