"""Feeder-level aggregation of per-home load series.

Homes behind one feeder are electrically independent; the feeder sees the
*sum* of their step-function load profiles.  Aggregation is exact (event
merge, no resampling) and deterministic: event times are sorted-unique and
homes are summed in fleet order, so the aggregate is bit-identical
regardless of which worker produced which home.

:class:`FeederStats` summarises one feeder profile;
:class:`FeederComparison` puts two of them side by side — the independent
and the feeder-coordinated profile of the *same* fleet run — and reports
the diversity-factor uplift the coordination plane
(:mod:`repro.neighborhood.coordination`) achieved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.loadstats import (
    LoadStats,
    coincidence_factor,
    diversity_factor,
    load_stats,
    percent_reduction,
    relative_difference,
)
from repro.sim.monitor import StepSeries


def sum_series(series_list: Sequence[StepSeries],
               name: str = "feeder") -> StepSeries:
    """Exact sum of step functions: a new series stepping at every event.

    Vectorized: every member series is sampled at the sorted-unique union
    of event times in one :meth:`~repro.sim.monitor.StepSeries.sample`
    call, then summed per event with ``math.fsum`` — the same correctly
    rounded (order-independent) total the scalar loop produced, so
    aggregates stay bit-identical.
    """
    out = StepSeries(name)
    gathered = [series._data()[0] for series in series_list
                if len(series)]
    if not gathered:
        return out
    events = np.unique(np.concatenate(gathered))
    sampled = np.empty((events.size, len(series_list)), dtype=float)
    for column, series in enumerate(series_list):
        sampled[:, column] = series.sample(events)
    for t, row in zip(events.tolist(), sampled):
        out.record(t, math.fsum(row.tolist()))
    return out


@dataclass(frozen=True)
class FeederStats:
    """What the feeder operator cares about, beyond one home's LoadStats."""

    feeder: LoadStats
    n_homes: int
    #: Peak of the *summed* profile — what the feeder must actually carry.
    coincident_peak_kw: float
    #: Sum of each home's individual peak — the no-diversity worst case.
    sum_home_peaks_kw: float
    #: sum_home_peaks / coincident_peak (>= 1; higher = more staggering).
    diversity_factor: float
    #: 1 / diversity_factor (<= 1).
    coincidence_factor: float
    #: Time-weighted std of the feeder load — the paper's "load variation"
    #: lifted to neighborhood scale.
    load_variation_kw: float

    def rows(self) -> list[list[object]]:
        """Table rows for plain-text reporting."""
        return [
            ["homes", self.n_homes],
            ["coincident peak", f"{self.coincident_peak_kw:.2f} kW"],
            ["sum of home peaks", f"{self.sum_home_peaks_kw:.2f} kW"],
            ["diversity factor", f"{self.diversity_factor:.3f}"],
            ["coincidence factor", f"{self.coincidence_factor:.3f}"],
            ["load variation (std)", f"{self.load_variation_kw:.2f} kW"],
            ["average load", f"{self.feeder.mean_kw:.2f} kW"],
            ["energy", f"{self.feeder.energy_kwh:.2f} kWh"],
        ]


@dataclass(frozen=True)
class FeederComparison:
    """Coordinated vs independent feeder behaviour of one fleet run.

    Both sides describe the *same* homes over the same window; the
    coordinated side only re-phases them (see
    :func:`repro.neighborhood.coordination.rotate_series`), so per-home
    peaks and energies are identical by construction and every difference
    below is pure cross-home staggering.
    """

    independent: FeederStats
    coordinated: FeederStats

    @property
    def diversity_uplift(self) -> float:
        """coordinated / independent diversity factor (> 1 = improvement)."""
        return self.coordinated.diversity_factor \
            / self.independent.diversity_factor

    @property
    def peak_reduction_pct(self) -> float:
        """Coincident-peak reduction achieved by cross-home staggering."""
        return percent_reduction(self.independent.coincident_peak_kw,
                                 self.coordinated.coincident_peak_kw)

    @property
    def variation_reduction_pct(self) -> float:
        """Feeder load-variation (std) reduction."""
        return percent_reduction(self.independent.load_variation_kw,
                                 self.coordinated.load_variation_kw)

    @property
    def energy_drift_pct(self) -> float:
        """Feeder energy disagreement — 0 up to float rounding, because
        phase rotation conserves every home's energy exactly."""
        return 100.0 * relative_difference(
            self.independent.feeder.energy_kwh,
            self.coordinated.feeder.energy_kwh)

    def rows(self) -> list[list[object]]:
        """Table rows for plain-text reporting."""
        indep, coord = self.independent, self.coordinated
        return [
            ["coincident peak",
             f"{indep.coincident_peak_kw:.2f} kW",
             f"{coord.coincident_peak_kw:.2f} kW"],
            ["diversity factor",
             f"{indep.diversity_factor:.3f}",
             f"{coord.diversity_factor:.3f}"],
            ["load variation (std)",
             f"{indep.load_variation_kw:.2f} kW",
             f"{coord.load_variation_kw:.2f} kW"],
            ["energy",
             f"{indep.feeder.energy_kwh:.2f} kWh",
             f"{coord.feeder.energy_kwh:.2f} kWh"],
            ["diversity uplift", "-", f"{self.diversity_uplift:.3f}x"],
            ["peak reduction", "-", f"{self.peak_reduction_pct:.1f}%"],
        ]


def feeder_stats(feeder_w: StepSeries,
                 home_series: Sequence[StepSeries],
                 start: float, end: float,
                 precomputed_home_stats: Optional[Sequence[LoadStats]] = None,
                 ) -> FeederStats:
    """Compute :class:`FeederStats` over ``[start, end)``."""
    stats = load_stats(feeder_w, start, end)
    if precomputed_home_stats is not None:
        home_peaks = [s.peak_kw for s in precomputed_home_stats]
    else:
        home_peaks = [load_stats(series, start, end).peak_kw
                      for series in home_series]
    return FeederStats(
        feeder=stats,
        n_homes=len(home_series),
        coincident_peak_kw=stats.peak_kw,
        sum_home_peaks_kw=float(sum(home_peaks)),
        diversity_factor=diversity_factor(home_peaks, stats.peak_kw),
        coincidence_factor=coincidence_factor(home_peaks, stats.peak_kw),
        load_variation_kw=stats.std_kw)
