"""Batched result transport for fleet-scale neighborhood runs.

Per-home pickles were measured fine at N=200 (~8 kB/home, <1 % of the
run), but at N≥500 the per-object serialisation — one ``StepSeries``
pickle per home, each a separate dispatch through the result pipe —
becomes pure overhead on the hot fan-in path.  This module replaces N
per-home series pickles with **one frame per shard**:

* the worker concatenates every series' ``(times, values)`` arrays into
  a single ``float64`` block — a :class:`SeriesFrame` records the
  per-series lengths plus where the block lives;
* with the ``"shm"`` transport the block is a
  :mod:`multiprocessing.shared_memory` segment: the parent re-maps it
  and hands out **zero-copy NumPy views** — every bulk consumer
  (aggregation, coordination, statistics) reads the mapped arrays
  directly; the O(events) plain-list twin each series also carries is
  for the scalar paths and is negligible at fleet event densities — and
  the segment is unlinked immediately after attach,
  garbage-collecting with the last series viewing it;
* the ``"pickle"`` fallback ships the same block as one ``bytes`` blob
  through the ordinary result pipe — still one frame per shard, and the
  parent's ``np.frombuffer`` views are zero-copy over the blob.

Transport never touches values: both paths carry the exact recorded
float64 bits, so results are bit-identical across transports — the
shard-invariance tests run the same fleet through both and diff digests.

Selection: :func:`pick_transport` prefers shared memory when the
platform offers it and honours ``REPRO_FLEET_TRANSPORT``
(``shm``/``pickle``) for explicit control.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.faults import get_injector
from repro.sim.monitor import StepSeries

#: Environment variable forcing a transport (one of :data:`TRANSPORTS`).
TRANSPORT_ENV = "REPRO_FLEET_TRANSPORT"
#: The wire formats a frame can travel over.
TRANSPORTS = ("shm", "pickle")


class FrameUnavailableError(RuntimeError):
    """A frame's shared-memory segment no longer exists (or cannot map).

    Raised by :func:`unpack_series` when attaching to ``shm_name`` fails —
    typically because the worker that packed the frame crashed and the
    segment was reaped (resource-tracker cleanup at interpreter shutdown,
    or an operator clearing ``/dev/shm``), exactly the re-lease scenario
    of the service plane (:mod:`repro.service`).  The frame's data is
    gone; the shard must be re-executed.  Carries ``shm_name`` so callers
    can name the lost segment in their own diagnostics.
    """

    def __init__(self, shm_name: str, detail: str):
        super().__init__(
            f"series frame segment {shm_name!r} is unavailable: {detail} "
            f"(the packing worker likely crashed and the segment was "
            f"reaped; re-execute the shard)")
        self.shm_name = shm_name


def shared_memory_available() -> bool:
    """Whether POSIX shared memory can actually be allocated here.

    Importing :mod:`multiprocessing.shared_memory` can succeed on
    platforms whose ``/dev/shm`` is absent or unwritable (minimal
    containers), so probe by allocating one tiny segment.
    """
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (ImportError, OSError):
        return False
    try:
        probe.unlink()
    except OSError:  # pragma: no cover - race with a cleaner
        pass
    probe.close()
    return True


def pick_transport(requested: Optional[str] = None) -> str:
    """Resolve the transport to use: explicit arg > env > probe.

    ``requested`` (or ``$REPRO_FLEET_TRANSPORT``) must be one of
    :data:`TRANSPORTS`; ``None`` auto-selects ``"shm"`` when available,
    ``"pickle"`` otherwise.
    """
    choice = requested if requested is not None \
        else os.environ.get(TRANSPORT_ENV) or None
    if choice is not None:
        if choice not in TRANSPORTS:
            known = ", ".join(TRANSPORTS)
            raise ValueError(
                f"transport must be one of: {known}; got {choice!r}")
        return choice
    return "shm" if shared_memory_available() else "pickle"


@dataclass
class SeriesFrame:
    """Many step series batched into one contiguous transport block.

    Layout: a ``(2, total)`` float64 array — row 0 the concatenated
    event times, row 1 the concatenated values — with ``lengths[i]``
    spans in series order.  Exactly one of ``shm_name`` (shared-memory
    transport) or ``blob`` (pickle transport) is set; the frame itself
    pickles either way (a name string, or the raw block bytes).
    """

    names: tuple[str, ...]
    lengths: tuple[int, ...]
    shm_name: Optional[str] = None
    blob: Optional[bytes] = None

    @property
    def total(self) -> int:
        """Total number of ``(time, value)`` records in the block."""
        return sum(self.lengths)


def pack_series(series_list: Sequence[StepSeries],
                transport: str) -> SeriesFrame:
    """Batch ``series_list`` into one frame (worker side).

    With ``transport="shm"`` the block is written into a fresh
    shared-memory segment that stays registered with the resource
    tracker until the parent adopts it (:func:`unpack_series`) — a
    worker crashing between pack and unpack is cleaned up at interpreter
    shutdown rather than leaking the segment.  Falls back to the
    ``bytes`` blob if the segment cannot be allocated.
    """
    names = tuple(series.name for series in series_list)
    lengths = tuple(len(series) for series in series_list)
    total = sum(lengths)
    # np.zeros, not np.empty: the block keeps one padding slot when
    # ``total == 0`` (zero-size shm segments cannot be allocated), and
    # that slot is never written below — uninitialized padding made
    # ``tobytes()`` blobs byte-nondeterministic, breaking digests/dedup
    # over pickled frames.
    block = np.zeros((2, max(total, 1)), dtype=np.float64)
    cursor = 0
    for series in series_list:
        times, values = series._data()
        span = times.size
        block[0, cursor:cursor + span] = times
        block[1, cursor:cursor + span] = values
        cursor += span
    if transport == "shm":
        try:
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(create=True,
                                                 size=block.nbytes)
        except (ImportError, OSError):
            segment = None
        if segment is not None:
            mapped = np.ndarray(block.shape, dtype=np.float64,
                                buffer=segment.buf)
            mapped[:] = block
            name = segment.name
            segment.close()
            return SeriesFrame(names=names, lengths=lengths,
                               shm_name=name)
    elif transport != "pickle":
        known = ", ".join(TRANSPORTS)
        raise ValueError(
            f"transport must be one of: {known}; got {transport!r}")
    return SeriesFrame(names=names, lengths=lengths,
                       blob=block.tobytes())


def _discard_frame(frame: SeriesFrame) -> None:
    """Release a frame's real backing before an injected loss.

    An injected ``transport.frame`` fault must behave like the segment
    never existed — so the *actual* shared-memory segment is unlinked
    and closed first, or it would leak in ``/dev/shm`` for the life of
    the pool process.  Pickle blobs need no cleanup.
    """
    if frame.shm_name is None:
        return
    from multiprocessing import shared_memory
    try:
        segment = shared_memory.SharedMemory(name=frame.shm_name)
    except (FileNotFoundError, OSError):  # already gone
        return
    try:
        segment.unlink()
    except OSError:  # pragma: no cover - race with a cleaner
        pass
    segment.close()


def unpack_series(frame: SeriesFrame) -> list[StepSeries]:
    """Rebuild the batched series from a frame (parent side), zero-copy.

    Shared-memory frames are re-mapped, immediately unlinked (the name
    disappears; the mapping lives on), and the segment object rides
    along as each series' ``hold`` so the block is reclaimed exactly
    when the last series viewing it is.  Pickle frames view the blob via
    ``np.frombuffer`` — also copy-free.

    Under an active fault plan, the ``transport.frame`` site (keyed on
    the frame's first series name — stable for a given shard layout) can
    make the frame unavailable: the real segment is released and a
    :class:`FrameUnavailableError` raised, exercising callers'
    re-execution fallbacks exactly as a reaped segment would.
    """
    injector = get_injector()
    if injector is not None and frame.names and injector.fire(
            "transport.frame", frame.names[0]):
        _discard_frame(frame)
        raise FrameUnavailableError(
            frame.shm_name if frame.shm_name is not None else "<blob>",
            "injected frame loss")
    total = frame.total
    hold: Optional[object] = None
    if frame.shm_name is not None:
        from multiprocessing import shared_memory
        try:
            segment = shared_memory.SharedMemory(name=frame.shm_name)
        except FileNotFoundError as gone:
            # The segment was reaped before we attached — a worker
            # crashing between pack and unpack (the service re-lease
            # scenario).  Surface a typed, actionable error instead of a
            # bare traceback.
            raise FrameUnavailableError(
                frame.shm_name, "segment no longer exists") from gone
        try:
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already cleaned elsewhere
                pass
            block = np.ndarray((2, max(total, 1)), dtype=np.float64,
                               buffer=segment.buf)
        except Exception as bad:
            # Mapping failed after attach (e.g. a segment smaller than
            # the frame's layout claims): close the mapping so the fd
            # doesn't leak for the life of the process, then report.
            segment.close()
            raise FrameUnavailableError(
                frame.shm_name,
                f"cannot map {2 * max(total, 1)} float64 values "
                f"({bad})") from bad
        hold = segment
    else:
        block = np.frombuffer(frame.blob,
                              dtype=np.float64).reshape(2, -1)
    series_list: list[StepSeries] = []
    cursor = 0
    for name, span in zip(frame.names, frame.lengths):
        series_list.append(StepSeries.from_arrays(
            name,
            block[0, cursor:cursor + span],
            block[1, cursor:cursor + span],
            hold=hold))
        cursor += span
    return series_list
