"""Heterogeneous home fleets for neighborhood-scale simulation.

A fleet (:class:`FleetSpec`) is N fully-specified homes behind one feeder.
Each home (:class:`HomeSpec`) draws its archetype (studio / family /
large, see :data:`repro.workloads.scenarios.HOME_ARCHETYPES`), device
count, power rating and arrival rate from *named* random streams —
``fleet/home-<i>`` — of one root seed
(:class:`~repro.sim.rng.RandomStreams`), so home *i* is identical whether
the fleet is built for 4 homes or 400, serially or in parallel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import FIDELITIES, POLICIES, HanConfig
from repro.sim.rng import RandomStreams
from repro.workloads.scenarios import FLEET_MIXES, HOME_ARCHETYPES, Scenario


def home_seed(root_seed: int, home_id: int) -> int:
    """Derive home ``home_id``'s simulation seed from the fleet seed.

    Hash-based (like :mod:`repro.sim.rng` stream derivation) so seeds are
    independent of fleet size and build order.
    """
    digest = hashlib.sha256(
        f"home-seed:{root_seed}:{home_id}".encode()).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class HomeSpec:
    """One home's complete, picklable run specification."""

    home_id: int
    archetype: str
    scenario: Scenario
    policy: str = "coordinated"
    cp_fidelity: str = "round"
    seed: int = 1

    def config(self, **overrides) -> HanConfig:
        """The :class:`HanConfig` that reproduces this home exactly."""
        kwargs = dict(scenario=self.scenario, policy=self.policy,
                      cp_fidelity=self.cp_fidelity, seed=self.seed)
        kwargs.update(overrides)
        return HanConfig(**kwargs)


@dataclass(frozen=True)
class FleetSpec:
    """A named neighborhood: the homes plus the seed that produced them."""

    name: str
    seed: int
    homes: tuple[HomeSpec, ...]

    @property
    def n_homes(self) -> int:
        """Number of homes behind the feeder."""
        return len(self.homes)

    @property
    def total_devices(self) -> int:
        """Type-2 devices across every home of the fleet."""
        return sum(home.scenario.n_devices for home in self.homes)

    @property
    def horizon(self) -> float:
        """The feeder observation window (homes share one horizon)."""
        return max(home.scenario.horizon for home in self.homes)


def _pick_archetype(weights: Sequence[tuple[str, float]],
                    draw: float) -> str:
    """Map a uniform [0,1) draw onto the cumulative weight table."""
    total = sum(weight for _name, weight in weights)
    threshold = draw * total
    accumulated = 0.0
    for name, weight in weights:
        accumulated += weight
        if threshold < accumulated:
            return name
    return weights[-1][0]


def build_fleet(n_homes: int, mix: str = "suburb", seed: int = 1,
                policy: str = "coordinated", cp_fidelity: str = "round",
                horizon: Optional[float] = None,
                rate_jitter: float = 0.25,
                size_jitter: float = 0.2) -> FleetSpec:
    """Build a heterogeneous ``n_homes``-home fleet from a named mix.

    Per-home randomness comes from the stream ``fleet/home-<i>``, so each
    home's composition depends only on ``(seed, i)`` — never on how many
    other homes exist or who was built first.
    """
    if n_homes < 1:
        raise ValueError(f"n_homes must be >= 1, got {n_homes}")
    if mix not in FLEET_MIXES:
        known = ", ".join(sorted(FLEET_MIXES))
        raise KeyError(f"unknown fleet mix {mix!r}; one of: {known}")
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
    if cp_fidelity not in FIDELITIES:
        raise ValueError(
            f"cp_fidelity must be one of {FIDELITIES}, got {cp_fidelity!r}")
    weights = FLEET_MIXES[mix]
    streams = RandomStreams(seed).child("fleet")
    homes = []
    for i in range(n_homes):
        rng = streams.stream(f"home-{i}")
        # Fixed draw order within the stream keeps each home reproducible.
        archetype = _pick_archetype(weights, float(rng.random()))
        base = HOME_ARCHETYPES[archetype]()
        n_devices = max(2, round(base.n_devices
                                 * (1.0 + rng.uniform(-size_jitter,
                                                      size_jitter))))
        power_w = base.device_power_w * (1.0 + rng.uniform(-0.1, 0.1))
        rate = base.arrival_rate_per_hour \
            * (1.0 + rng.uniform(-rate_jitter, rate_jitter))
        scenario = replace(
            base,
            name=f"home{i:03d}-{archetype}",
            n_devices=int(n_devices),
            device_power_w=float(power_w),
            arrival_rate_per_hour=float(rate),
            horizon=horizon if horizon is not None else base.horizon,
            notes=f"{mix} fleet member (seed {seed})")
        homes.append(HomeSpec(home_id=i, archetype=archetype,
                              scenario=scenario, policy=policy,
                              cp_fidelity=cp_fidelity,
                              seed=home_seed(seed, i)))
    return FleetSpec(name=f"{mix}-{n_homes}homes", seed=seed,
                     homes=tuple(homes))
