"""Sharded neighborhood execution: fleets lowered to per-shard sub-specs.

At N≥500 homes the fan-out itself becomes the cost: one dispatch, one
result pickle and one parent-side aggregation step *per home*.  Sharding
re-cuts the work so every unit is a contiguous **sub-fleet**:

* :func:`shard_fleet` lowers a :class:`~repro.neighborhood.fleet.FleetSpec`
  into per-shard sub-specs (``<fleet>/shard<i>`` slices) — the
  declarative layer exposes the same lowering as
  :func:`repro.api.compile.compile_shards`;
* each persistent-pool worker (:func:`_execute_shard`) runs its whole
  shard and **pre-reduces locally**: the shard's compensated partial
  feeder sum (:func:`~repro.neighborhood.aggregate.partial_sum`) and the
  per-home scalar :class:`~repro.analysis.loadstats.LoadStats`, so the
  parent aggregates S partials instead of N homes;
* per-home series travel as **one batched frame per shard**
  (:mod:`repro.neighborhood.transport`) instead of N per-home pickles.

Sharding is an execution strategy, never an experiment parameter:
results are bit-identical for every ``(shard_size, jobs, transport)``
combination — the feeder profile is the correctly rounded per-event sum
regardless of partitioning (see
:func:`~repro.neighborhood.aggregate.combine_partials`), and home runs
are independently seeded.  ``tests/test_fleet_sharding.py`` locks the
invariance by digest.
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.analysis.loadstats import LoadStats, load_stats
from repro.core.system import RunResult, execute_config
from repro.neighborhood.aggregate import SeriesPartial, partial_sum
from repro.neighborhood.fleet import FleetSpec
from repro.neighborhood.transport import FrameUnavailableError, \
    SeriesFrame, pack_series, unpack_series

#: Fleets smaller than this stay on the per-home path by default —
#: dispatch and aggregation overhead only dominates at fleet scale.
AUTO_SHARD_MIN_HOMES = 64
#: Auto shard size for in-process (``jobs=1``) fleet runs.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class ShardSpec:
    """One shard's complete, picklable work order: a sub-fleet to run.

    ``transport`` selects the series wire format
    (:data:`repro.neighborhood.transport.TRANSPORTS`); ``None`` keeps
    results in-process (the ``jobs=1`` fast path — no frame, no pickle).
    """

    index: int
    fleet: FleetSpec
    until: Optional[float]
    #: stats window end — per-home :class:`LoadStats` cover ``[0, horizon)``
    horizon: float
    transport: Optional[str] = None
    #: when set, the worker also pre-reduces each home's
    #: :func:`~repro.neighborhood.coordination.phase_envelope` at this
    #: (already snapped — see ``snap_bin``) bin width, so the parent's
    #: coordination plane never touches raw per-home series
    envelope_bin_s: Optional[float] = None


@dataclass
class ShardOutcome:
    """What one shard worker hands back, pre-reduced.

    ``homes`` ride with their ``load_w`` stripped when ``frame`` is set
    (the series travel batched); :func:`execute_shards` re-attaches the
    unpacked views before anyone downstream sees the results.
    """

    index: int
    homes: list[RunResult]
    frame: Optional[SeriesFrame]
    partial: SeriesPartial
    home_stats: list[LoadStats]
    #: per-home phase envelopes (shard order) when the spec asked for
    #: them (:attr:`ShardSpec.envelope_bin_s`), else ``None``
    envelopes: Optional[list[tuple[float, ...]]] = None


def shard_fleet(fleet: FleetSpec, shard_size: int) -> list[FleetSpec]:
    """Lower a fleet into contiguous per-shard sub-fleets (sub-specs).

    Slicing preserves home identity completely — each
    :class:`~repro.neighborhood.fleet.HomeSpec` carries its own derived
    seed and scenario — so running the sub-fleets in any grouping
    reproduces the unsharded fleet bit for bit.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [replace(fleet, name=f"{fleet.name}/shard{index}",
                    homes=fleet.homes[start:start + shard_size])
            for index, start in enumerate(
                range(0, fleet.n_homes, shard_size))]


def plan_shards(fleet: FleetSpec, until: Optional[float] = None,
                shard_size: Optional[int] = None, jobs: int = 1,
                transport: Optional[str] = None,
                envelope_bin_s: Optional[float] = None,
                ) -> Optional[list[ShardSpec]]:
    """Decide the shard layout for one fleet run (``None`` = don't shard).

    ``shard_size=None`` auto-shards fleets of
    :data:`AUTO_SHARD_MIN_HOMES`+ homes — ``jobs``-aware so every worker
    sees several shards (load balancing, same policy as
    :func:`repro.experiments.pool.dispatch_chunksize`); ``0`` forces the
    per-home path; any other value is used as given.  ``transport``
    overrides the wire format for cross-process shards.

    ``envelope_bin_s`` (a bin width already snapped to the horizon —
    see :func:`repro.neighborhood.coordination.snap_bin`) asks the shard
    workers to pre-reduce each home's phase envelope locally, so a
    coordinating parent aggregates S envelope batches instead of
    touching N raw series; :func:`phase_envelope
    <repro.neighborhood.coordination.phase_envelope>` is pure, so the
    result is bit-identical to computing them parent-side.
    """
    n_homes = fleet.n_homes
    if shard_size is None:
        if n_homes < AUTO_SHARD_MIN_HOMES:
            return None
        if jobs <= 1:
            size = DEFAULT_SHARD_SIZE
        else:
            from repro.experiments.pool import CHUNKS_PER_WORKER
            size = max(1, math.ceil(n_homes / (jobs * CHUNKS_PER_WORKER)))
    elif shard_size == 0:
        return None
    else:
        if shard_size < 1:
            raise ValueError(
                f"shard_size must be >= 0, got {shard_size}")
        size = shard_size
    sub_fleets = shard_fleet(fleet, size)
    horizon = until if until is not None else fleet.horizon
    in_process = jobs == 1 or len(sub_fleets) == 1
    wire = None
    if not in_process:
        from repro.neighborhood.transport import pick_transport
        wire = pick_transport(transport)
    return [ShardSpec(index=index, fleet=sub_fleet, until=until,
                      horizon=horizon, transport=wire,
                      envelope_bin_s=envelope_bin_s)
            for index, sub_fleet in enumerate(sub_fleets)]


def _execute_shard(spec: ShardSpec) -> tuple:
    """Worker body: run every home of the shard, pre-reduce, pack.

    Module-level and returning ``(status, name, payload)`` triples for
    the same reasons as
    :func:`repro.experiments.runner._execute_run_spec`; a failing home
    names itself, not the shard, so
    :class:`~repro.experiments.runner.WorkerFailure` messages stay as
    precise as on the per-home path.
    """
    results: list[RunResult] = []
    for home in spec.fleet.homes:
        try:
            results.append(
                execute_config(home.config(), until=spec.until).portable())
        except Exception:
            return ("err", home.scenario.name, traceback.format_exc())
    try:
        series = [result.load_w for result in results]
        partial = partial_sum(series)
        stats = [load_stats(result.load_w, 0.0, spec.horizon)
                 for result in results]
        envelopes = None
        if spec.envelope_bin_s is not None:
            from repro.neighborhood.coordination import phase_envelope
            envelopes = [phase_envelope(one, spec.horizon,
                                        spec.envelope_bin_s)
                         for one in series]
        if spec.transport is None:
            outcome = ShardOutcome(index=spec.index, homes=results,
                                   frame=None, partial=partial,
                                   home_stats=stats,
                                   envelopes=envelopes)
        else:
            frame = pack_series(series, spec.transport)
            stripped = [replace(result, load_w=None)
                        for result in results]
            outcome = ShardOutcome(index=spec.index, homes=stripped,
                                   frame=frame, partial=partial,
                                   home_stats=stats,
                                   envelopes=envelopes)
        return ("ok", spec.fleet.name, outcome)
    except Exception:
        return ("err", spec.fleet.name, traceback.format_exc())


def execute_shards(shards: Sequence[ShardSpec], jobs: int = 1,
                   mp_context: Optional[str] = None,
                   executor=None,
                   ) -> tuple[list[RunResult], list[SeriesPartial],
                              list[LoadStats],
                              Optional[list[tuple[float, ...]]]]:
    """Run every shard and fan the pre-reduced pieces back in.

    Returns ``(home_results, shard_partials, home_stats, envelopes)``,
    all in fleet order; ``envelopes`` is ``None`` unless the shards
    carried an :attr:`ShardSpec.envelope_bin_s`.  Cross-process shards
    come back as one frame each; the series are re-attached as
    zero-copy views before return.

    ``executor`` swaps the per-shard worker body (default
    :func:`_execute_shard`): a module-level picklable callable with the
    same ``ShardSpec -> (status, name, payload)`` contract.  The service
    plane injects a checkpointing wrapper here
    (:func:`repro.service.worker._checkpointed_shard`); since outcomes
    are bit-identical however produced, the hook cannot change results.
    """
    from repro.experiments.runner import ParallelRunner, WorkerFailure
    shards = list(shards)
    if not shards:
        return [], [], [], None
    runner = ParallelRunner(jobs=jobs, mp_context=mp_context)
    triples = runner.execute(
        executor if executor is not None else _execute_shard, shards)
    homes: list[RunResult] = []
    partials: list[SeriesPartial] = []
    home_stats: list[LoadStats] = []
    envelopes: list[tuple[float, ...]] = []
    failure: Optional[tuple[str, str]] = None
    # Adopt every completed shard's frame *before* surfacing a failure:
    # unpack_series unlinks the shared-memory segment, so a failing
    # sibling shard can never strand the finished ones' blocks in
    # /dev/shm for the life of the (persistent-pool) process.
    for status, name, payload in triples:
        if status == "err":
            if failure is None:
                failure = (name, payload)
            continue
        outcome: ShardOutcome = payload
        if outcome.frame is not None:
            try:
                series = unpack_series(outcome.frame)
            except FrameUnavailableError:
                # The shard's batched series are gone — the packing
                # worker crashed and its segment was reaped (or a
                # transport.frame fault was injected).  Home runs are
                # bit-deterministic, so re-executing the shard here,
                # in-process and frameless, reproduces the lost data
                # exactly; only the transport optimization is lost.
                status, name, payload = _execute_shard(
                    replace(shards[outcome.index], transport=None))
                if status == "err":
                    if failure is None:
                        failure = (name, payload)
                    continue
                outcome = payload
            else:
                outcome.homes = [replace(result, load_w=one)
                                 for result, one in zip(outcome.homes,
                                                        series)]
        homes.extend(outcome.homes)
        partials.append(outcome.partial)
        home_stats.extend(outcome.home_stats)
        if outcome.envelopes is not None:
            envelopes.extend(outcome.envelopes)
    if failure is not None:
        raise WorkerFailure(*failure)
    return homes, partials, home_stats, \
        envelopes if len(envelopes) == len(homes) and homes else None
