"""Feeder-level collaboration plane: the paper's CP, one level up.

The paper's collaborative scheme (§II) never crosses the home's meter:
every Device Interface shares a :class:`~repro.core.state.CpItem` over
MiniCast rounds, and the shared deterministic scheduler staggers bursts
*inside* one home.  Behind a feeder, independently coordinated homes still
peak together — PR 1's neighborhood layer measures that as a diversity
factor barely above 1.

This module extends the same announce/claim/stagger structure across
homes, in the spirit of distributed neighborhood scheduling
(arXiv:2011.04338) and online multi-home load coordination
(arXiv:2304.11770):

* each home's gateway (its smart meter uplink) publishes a compact
  :class:`HomeItem` — the home's *claimed-burst envelope*, i.e. the
  per-phase-bin upper bound of its realized Type-2 load — the
  neighborhood analogue of a :class:`~repro.core.state.CpItem`;
* a decentralized **feeder round** mirrors the in-home CP's loss-free
  all-to-all exchange (:class:`~repro.st.rounds.IdealCP` semantics,
  executed directly at fleet scale — see :class:`FeederPlane`): one
  gateway per round holds the claim token and picks the **phase offset**
  minimising the projected feeder peak given every other home's claimed
  envelope — exactly the in-home scheduler's one-by-one stagger logic,
  one level up;
* the negotiated offsets are applied by *phase-rotating* each home's
  realized load profile (:func:`rotate_series`).  The workloads are
  time-homogeneous (Poisson / MMPP / batch arrivals with no
  time-of-day structure), so a cyclic rotation of a home's trajectory
  is a sample path of the phase-shifted home — and rotation preserves
  each home's energy and individual peak *exactly*, which pins the
  conservation law the invariant tests rely on: coordination moves
  load, it never sheds it.

Determinism: the plane consumes only the (already bit-deterministic)
per-home results, in fleet order, and draws no randomness — so
``run_neighborhood(..., coordination="feeder")`` stays bit-identical for
any ``jobs`` count.

Safety: the per-bin envelope makes the negotiated objective an *upper
bound* on the realized feeder peak, so the plane re-evaluates the final
plan against the realized profiles and falls back to zero offsets
(``applied=False``) if staggering would not strictly lower the realized
coincident peak.  The feeder plane is advisory — it never regresses the
feeder it coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.system import RunResult
from repro.neighborhood.aggregate import combine_partials, sum_series
from repro.sim.monitor import StepSeries
from repro.st.rounds import CpStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.neighborhood.fleet import FleetSpec

#: serialized footprint of a HomeItem header on the wire, bytes
HOME_ITEM_HEADER_BYTES: int = 10
#: bytes per quantized envelope bin on the wire
ENVELOPE_BIN_BYTES: int = 2


@dataclass(frozen=True)
class FeederConfig:
    """Knobs of the feeder collaboration plane.

    Defaults mirror the in-home Communication Plane where a counterpart
    exists: feeder rounds run every ``period`` (= the paper's 2 s MiniCast
    period), and the phase ``epoch`` defaults to the fleet's largest
    ``maxDCP`` — the recurrence period of the bursts being staggered.
    """

    #: phase period the offsets live in; None = max home ``maxDCP``
    epoch: Optional[float] = None
    #: nominal envelope bin width (seconds) — also the offset
    #: granularity; snapped so bins tile the horizon exactly
    bin_s: float = 60.0
    #: maximum full claim sweeps (every gateway claims once per sweep)
    max_sweeps: int = 4
    #: feeder CP round period, seconds (one claim token per round)
    period: float = 2.0
    #: re-check the realized feeder peak and refuse a non-improving plan
    guard: bool = True

    def __post_init__(self) -> None:
        if self.bin_s <= 0:
            raise ValueError(f"bin_s must be > 0, got {self.bin_s}")
        if self.max_sweeps < 1:
            raise ValueError(
                f"max_sweeps must be >= 1, got {self.max_sweeps}")
        if self.epoch is not None and self.epoch <= 0:
            raise ValueError(f"epoch must be > 0, got {self.epoch}")


@dataclass(frozen=True)
class HomeItem:
    """One home gateway's payload for a feeder CP round.

    The neighborhood analogue of the in-home
    :class:`~repro.core.state.CpItem`: instead of one device's status plus
    announcements, a gateway shares its whole home's *aggregate
    claimed-burst envelope* — the per-bin upper bound of the home's load
    over the observation window — plus the phase ``shift`` (in bins) it
    currently claims.  Items are versioned so view merges stay idempotent
    and order-insensitive, mirroring
    :meth:`repro.core.state.SharedView.merge_item`.
    """

    home_id: int
    version: int
    #: claimed phase offset, in envelope bins
    shift: int
    #: per-bin upper bound of the home's load over the horizon, watts
    envelope: tuple[float, ...]
    #: the home's individual peak (max of the envelope), watts
    peak_w: float

    @property
    def wire_bytes(self) -> int:
        """Approximate serialized size (quantized bins), for airtime
        accounting — the feeder analogue of
        :attr:`repro.core.state.CpItem.wire_bytes`."""
        return (HOME_ITEM_HEADER_BYTES
                + ENVELOPE_BIN_BYTES * len(self.envelope))


@dataclass
class FeederCoordination:
    """Outcome of one feeder-plane negotiation over a finished fleet run.

    Carries both the coordinated and the independent (un-rotated) feeder
    series so :class:`~repro.neighborhood.federation.NeighborhoodResult`
    can report the diversity-factor uplift without re-running anything.
    """

    #: resolved phase period (seconds)
    epoch: float
    #: envelope bin width = offset granularity (seconds)
    bin_s: float
    #: negotiated per-home phase offsets (seconds, fleet order)
    planned_offsets_s: tuple[float, ...]
    #: offsets actually applied (all zero when the guard declined)
    offsets_s: tuple[float, ...]
    #: False when the guard found no realized improvement and fell back
    applied: bool
    #: full claim sweeps the negotiation ran before converging
    sweeps: int
    #: feeder CP round statistics (reused :class:`~repro.st.rounds.CpStats`)
    cp_stats: CpStats
    #: per-home feeder contributions (phase-rotated load), fleet order
    contributions_w: list[StepSeries]
    #: Σ un-rotated homes — the independent baseline feeder profile
    independent_w: StepSeries
    #: Σ rotated homes — what the feeder carries under coordination
    coordinated_w: StepSeries


# ---------------------------------------------------------------------------
# envelopes and rotation
# ---------------------------------------------------------------------------

def snap_bin(horizon: float, bin_s: float) -> float:
    """The envelope bin width snapped so bins tile ``horizon`` exactly.

    The claim objective rolls envelopes on a cycle of ``bins × bin_s``
    and rotation wraps at the horizon — the two cycles must be the same
    length or the negotiated offsets optimize a mis-wrapped profile.
    Both :func:`coordinate_fleet` and the shard planner's envelope
    pre-reduction (:attr:`repro.neighborhood.shard.ShardSpec.envelope_bin_s`)
    go through this one function, so a worker-side envelope is always
    computed at exactly the bin the parent will negotiate with.
    """
    n_bins = max(int(round(horizon / bin_s)), 1)
    return horizon / n_bins

def _segment_table(series: StepSeries, horizon: float,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(starts, ends, values)`` arrays partitioning ``[0, horizon)``.

    The vectorized twin of :meth:`~repro.sim.monitor.StepSeries.segments`
    (same boundaries, same values, no arithmetic) — rotation and
    envelopes must agree with the statistics' decomposition bit for bit.
    """
    times, values = series._data()
    lo = int(np.searchsorted(times, 0.0, side="right"))
    hi = int(np.searchsorted(times, horizon, side="left"))
    starts = np.empty(hi - lo + 1, dtype=float)
    starts[0] = 0.0
    starts[1:] = times[lo:hi]
    ends = np.empty(hi - lo + 1, dtype=float)
    ends[:-1] = times[lo:hi]
    ends[-1] = horizon
    seg_values = np.empty(hi - lo + 1, dtype=float)
    seg_values[0] = values[lo - 1] if lo > 0 else 0.0
    seg_values[1:] = values[lo:hi]
    return starts, ends, seg_values


def phase_envelope(series: StepSeries, horizon: float,
                   bin_s: float) -> tuple[float, ...]:
    """Per-bin upper bound of ``series`` on a regular grid over the window.

    Bin ``b`` covers ``[b * bin_s, (b + 1) * bin_s)``; its envelope value
    is the *maximum* signal value attained inside, so summed envelopes
    upper-bound the summed signals — the property the feeder plane's
    claim objective relies on.  One vectorized slice-max per constant
    segment (not one Python comparison per bin), same floats as the
    scalar loop it replaced.
    """
    # The tiny slack keeps exact divisions (the usual case — see
    # coordinate_fleet's bin snapping) from spilling into an extra bin
    # through float rounding.
    bins = int(math.ceil(horizon / bin_s - 1e-9))
    envelope = np.zeros(bins, dtype=float)
    starts, ends, values = _segment_table(series, horizon)
    for start, end, value in zip(starts.tolist(), ends.tolist(),
                                 values.tolist()):
        if value <= 0.0:
            continue
        first = int(start // bin_s)
        last = min(int(math.ceil(end / bin_s)), bins)
        if first < last:
            np.maximum(envelope[first:last], value,
                       out=envelope[first:last])
    return tuple(envelope.tolist())


def _window_segment_table(series: StepSeries, start: float, end: float,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(starts, ends, values)`` arrays partitioning ``[start, end)``.

    The windowed twin of :func:`_segment_table`: same boundaries, same
    values, no arithmetic on either — the online loop's per-epoch
    envelopes and rotations must agree with the statistics'
    decomposition bit for bit.
    """
    times, values = series._data()
    lo = int(np.searchsorted(times, start, side="right"))
    hi = int(np.searchsorted(times, end, side="left"))
    starts = np.empty(hi - lo + 1, dtype=float)
    starts[0] = start
    starts[1:] = times[lo:hi]
    ends = np.empty(hi - lo + 1, dtype=float)
    ends[:-1] = times[lo:hi]
    ends[-1] = end
    seg_values = np.empty(hi - lo + 1, dtype=float)
    seg_values[0] = values[lo - 1] if lo > 0 else 0.0
    seg_values[1:] = values[lo:hi]
    return starts, ends, seg_values


def phase_envelope_window(series: StepSeries, start: float, end: float,
                          bin_s: float,
                          bins: Optional[int] = None,
                          ) -> tuple[float, ...]:
    """Per-bin upper bound of ``series`` over the window ``[start, end)``.

    The windowed form of :func:`phase_envelope`: bin ``b`` covers
    ``[start + b·bin_s, start + (b+1)·bin_s)``.  ``bins`` pins the
    envelope length explicitly — the online loop passes the per-epoch
    bin count so every epoch's envelope (including a last epoch whose
    span differs by one float ulp) has the same shape and the claim
    plane can roll them against each other.
    """
    if bins is None:
        bins = int(math.ceil((end - start) / bin_s - 1e-9))
    envelope = np.zeros(bins, dtype=float)
    starts, ends, values = _window_segment_table(series, start, end)
    for seg_start, seg_end, value in zip(starts.tolist(), ends.tolist(),
                                         values.tolist()):
        if value <= 0.0:
            continue
        first = int((seg_start - start) // bin_s)
        last = min(int(math.ceil((seg_end - start) / bin_s)), bins)
        if first < last:
            np.maximum(envelope[first:last], value,
                       out=envelope[first:last])
    return tuple(envelope.tolist())


def rotate_window(series: StepSeries, offset: float, start: float,
                  end: float, name: Optional[str] = None) -> StepSeries:
    """Cyclically delay the ``[start, end)`` window of ``series``.

    The windowed form of :func:`rotate_series`: returns a step series
    defined on ``[start, end)`` only — beginning with a record exactly
    at ``start`` — holding ``s(start + ((t − start − offset) mod span))``
    with ``span = end − start``.  Segment durations and values are
    permuted, never changed, so the window's energy, time-weighted
    distribution and peak are preserved exactly; with ``offset == 0``
    the window's own records come back untouched (no float round-trip),
    which is what lets declined epochs stitch bit-identical realized
    windows.

    Caller contract (which epoch grids satisfy by construction): the
    computed ``span`` must be the *exact* real difference ``end − start``
    — true whenever ``start == 0`` or ``end ≤ 2·start`` (Sterbenz) — so
    wrapped record times can never land before ``start``.
    """
    from repro.neighborhood.aggregate import dedup_records
    out_name = name if name is not None else series.name
    span = end - start
    offset = offset % span
    starts, ends, values = _window_segment_table(series, start, end)
    if offset == 0.0:
        times, kept = dedup_records(starts, values)
        return StepSeries.from_arrays(out_name, times, kept)
    new_starts = starts + offset
    wrapped = new_starts >= end
    split = ~wrapped & (ends + offset > end)
    entry_times = np.concatenate([
        np.where(wrapped, new_starts - span, new_starts),
        np.full(int(split.sum()), start, dtype=float)])
    entry_values = np.concatenate([values, values[split]])
    order = np.lexsort((entry_values, entry_times))
    times, kept = dedup_records(entry_times[order], entry_values[order])
    return StepSeries.from_arrays(out_name, times, kept)


def rotate_series(series: StepSeries, offset: float, horizon: float,
                  name: Optional[str] = None) -> StepSeries:
    """Cyclically delay ``series`` by ``offset`` within ``[0, horizon)``.

    Returns the step series ``r(t) = s((t − offset) mod horizon)``: the
    home's day, started ``offset`` later, with the displaced tail wrapping
    to the front (the steady-state reading of a phase shift).  Rotation
    permutes the constant segments without changing their durations or
    values, so the integral (energy), the time-weighted distribution and
    the peak over ``[0, horizon)`` are all preserved.

    Vectorized (segment shift, lexsort, record-semantics dedup via
    :func:`repro.neighborhood.aggregate.dedup_records`) and bit-identical
    to the scalar record loop it replaced.
    """
    from repro.neighborhood.aggregate import dedup_records
    out_name = name if name is not None else series.name
    offset = offset % horizon
    starts, ends, values = _segment_table(series, horizon)
    if offset == 0.0:
        times, kept = dedup_records(starts, values)
        return StepSeries.from_arrays(out_name, times, kept)
    new_starts = starts + offset
    wrapped = new_starts >= horizon
    split = ~wrapped & (ends + offset > horizon)
    entry_times = np.concatenate([
        np.where(wrapped, new_starts - horizon, new_starts),
        np.zeros(int(split.sum()), dtype=float)])
    entry_values = np.concatenate([values, values[split]])
    order = np.lexsort((entry_values, entry_times))
    times, kept = dedup_records(entry_times[order], entry_values[order])
    return StepSeries.from_arrays(out_name, times, kept)


# ---------------------------------------------------------------------------
# the decentralized feeder round
# ---------------------------------------------------------------------------

class FeederPlane:
    """The feeder-level claim plane, one gateway per home.

    Claims are made one by one — the gateway whose ``home_id`` matches
    the round index (round-robin token) re-claims its phase offset
    against the envelopes everyone else published, mirroring the paper's
    one-by-one admission order.  A claim is only moved when it *strictly*
    lowers the projected feeder peak, so the negotiation is a descent on
    a finite lattice and always converges.

    The rounds used to be driven through
    :class:`~repro.st.rounds.IdealCP` with every gateway re-sharing its
    full :class:`HomeItem` every round; at fleet scale (N≥500) that
    all-to-all merge was O(N³) per sweep and dominated the whole run.
    Because IdealCP delivery is loss-free, every gateway's merged view is
    simply "each home's latest claim", so :meth:`run_round` now evolves
    that shared state directly — same claim sequence bit for bit (the
    per-home rolled envelopes are cached and re-summed in home order at
    every claim, never incrementally updated, so no float drift) — and
    :func:`negotiate_offsets` accounts the identical
    :class:`~repro.st.rounds.CpStats` the driver produced.
    :class:`HomeItem` remains the wire format the stats meter airtime
    against.
    """

    def __init__(self, home_ids: Sequence[int],
                 envelopes: dict[int, tuple[float, ...]],
                 shifts: int,
                 claims: Optional[dict[int, int]] = None):
        if shifts < 1:
            raise ValueError(f"need >= 1 candidate shift, got {shifts}")
        self.home_ids = list(home_ids)
        self.shifts = shifts
        self._envelopes = {home: np.asarray(envelopes[home], dtype=float)
                           for home in self.home_ids}
        #: seeded claims carry a previous epoch's negotiation state into
        #: an online re-negotiation (:func:`renegotiate_offsets`)
        self.claims: dict[int, int] = (
            {home: 0 for home in self.home_ids} if claims is None
            else {home: int(claims[home]) for home in self.home_ids})
        #: each home's envelope rolled by its current claim — what the
        #: other gateways' merged views hold for it
        self._rolled = {home: np.roll(self._envelopes[home],
                                      self.claims[home])
                        for home in self.home_ids}
        self.sweep_changed = False

    def update_envelope(self, node: int,
                        envelope: tuple[float, ...]) -> None:
        """Replace one gateway's published envelope, keeping its claim.

        The online plane's per-epoch re-publication: a home whose
        predicted envelope changed announces the new one; its claimed
        shift stands until a later claim round moves it.
        """
        self._envelopes[node] = np.asarray(envelope, dtype=float)
        self._rolled[node] = np.roll(self._envelopes[node],
                                     self.claims[node])

    def item(self, node: int) -> HomeItem:
        """The gateway's current :class:`HomeItem` (the wire form)."""
        envelope = self._envelopes[node]
        return HomeItem(home_id=node, version=1, shift=self.claims[node],
                        envelope=tuple(envelope),
                        peak_w=float(envelope.max(initial=0.0)))

    def run_round(self, round_index: int) -> None:
        """One feeder round: the round-robin token holder re-claims."""
        self.reclaim(self.home_ids[round_index % len(self.home_ids)])

    def reclaim(self, token: int) -> None:
        """Give ``token`` the claim round: re-pick its phase offset."""
        best = self._best_shift(token)
        if best != self.claims[token]:
            self.claims[token] = best
            self._rolled[token] = np.roll(self._envelopes[token], best)
            self.sweep_changed = True

    # -- the claim rule ----------------------------------------------------------

    def _combined_others(self, node: int) -> np.ndarray:
        """Projected feeder load per bin from everyone else's claims."""
        combined = np.zeros(len(self._envelopes[node]), dtype=float)
        for home in self.home_ids:
            if home == node:
                continue
            combined += self._rolled[home]
        return combined

    def _best_shift(self, node: int) -> int:
        """Least-peak phase for ``node`` given the others, stagger-style.

        Selection keys mirror :func:`repro.core.scheduler._pick_start`
        one level up: (1) smallest projected feeder peak, (2) the current
        claim when it ties (stability — only strict improvements move),
        (3) the earliest phase.
        """
        combined = self._combined_others(node)
        envelope = self._envelopes[node]
        current = self.claims[node]
        rolled = np.stack([np.roll(envelope, s)
                           for s in range(self.shifts)])
        peaks = (combined[None, :] + rolled).max(axis=1)
        floor = float(peaks.min())
        candidates = [s for s in range(self.shifts)
                      if peaks[s] <= floor + 1e-9]
        if current in candidates:
            return current
        return candidates[0]


def negotiate_offsets(home_ids: Sequence[int],
                      envelopes: dict[int, tuple[float, ...]],
                      shifts: int,
                      config: FeederConfig,
                      ) -> tuple[dict[int, int], CpStats, int]:
    """Run feeder claim rounds until the claims converge.

    One claim token per round (n rounds to a sweep), until a full sweep
    moves no claim or :attr:`FeederConfig.max_sweeps` is reached.
    Returns the claimed shifts (bins) per home, the CP round statistics
    — identical to what driving the plane through
    :class:`~repro.st.rounds.IdealCP` produced (every round is active,
    all n items reach all n gateways) — and the number of sweeps run.
    """
    plane = FeederPlane(home_ids, envelopes, shifts)
    n = len(plane.home_ids)
    stats = CpStats()
    round_index = 0
    sweeps = 0
    for _sweep in range(config.max_sweeps):
        plane.sweep_changed = False
        # Rounds sweep*n .. sweep*n + n − 1, one token claim each.
        for _round in range(n):
            stats.rounds_total += 1
            stats.rounds_active += 1
            stats.deliveries += n * n
            plane.run_round(round_index)
            round_index += 1
        sweeps += 1
        if not plane.sweep_changed:
            break
    return dict(plane.claims), stats, sweeps


def renegotiate_offsets(plane: FeederPlane, changed: Sequence[int],
                        config: FeederConfig,
                        ) -> tuple[dict[int, int], CpStats, int]:
    """Incrementally re-run claim rounds after an envelope diff.

    The online plane's per-epoch re-negotiation: ``plane`` carries every
    gateway's current claims and (already re-published) envelopes from
    the previous epoch, and only the homes in ``changed`` — those whose
    predicted envelope actually moved — get claim tokens.  Unchanged
    homes keep claims that are still optimal against their unchanged
    envelopes, so the per-sweep work is O(|changed|·n·bins) rather than
    the from-scratch O(n²·bins) of :func:`negotiate_offsets`, and with
    nothing changed no round runs at all — the sub-linear replan cost
    ``benchmarks/test_bench_online.py`` measures.

    CP accounting matches the incremental wire traffic: each round
    delivers *one* updated :class:`HomeItem` to the n gateways (``n``
    deliveries), not the all-to-all re-share of a cold negotiation.
    Returns ``(claims, stats, sweeps)`` like :func:`negotiate_offsets`.
    """
    n = len(plane.home_ids)
    stats = CpStats()
    changed_set = set(changed)
    order = [home for home in plane.home_ids if home in changed_set]
    sweeps = 0
    if not order:
        return dict(plane.claims), stats, sweeps
    for _sweep in range(config.max_sweeps):
        plane.sweep_changed = False
        for token in order:
            stats.rounds_total += 1
            stats.rounds_active += 1
            stats.deliveries += n
            plane.reclaim(token)
        sweeps += 1
        if not plane.sweep_changed:
            break
    return dict(plane.claims), stats, sweeps


# ---------------------------------------------------------------------------
# putting it together
# ---------------------------------------------------------------------------

def coordinate_fleet(fleet: "FleetSpec", results: Sequence[RunResult],
                     horizon: float,
                     config: Optional[FeederConfig] = None,
                     partials: Optional[Sequence[object]] = None,
                     envelopes: Optional[
                         Sequence[tuple[float, ...]]] = None,
                     ) -> FeederCoordination:
    """Negotiate and apply cross-home phase offsets for a finished run.

    ``results`` are the per-home :class:`~repro.core.system.RunResult`
    objects of ``fleet`` (fleet order), as produced by the independent
    fan-out in :func:`~repro.neighborhood.federation.run_neighborhood`.
    Pure post-exchange: no randomness, no re-simulation, bit-identical
    for any worker count.

    ``partials`` — the per-shard
    :class:`~repro.neighborhood.aggregate.SeriesPartial` pre-reductions
    of a sharded run, when available — let the independent baseline
    profile fold from S shard columns instead of N homes; the value is
    bit-identical either way.

    ``envelopes`` — per-home phase envelopes (fleet order) the shard
    workers pre-reduced at :func:`snap_bin`'s width — skip the
    parent-side :func:`phase_envelope` pass entirely.
    :func:`phase_envelope` is pure, so precomputed and recomputed
    envelopes are the same tuples and the negotiation is bit-identical.
    """
    if config is None:
        config = FeederConfig()
    if len(results) != fleet.n_homes:
        raise ValueError(
            f"fleet has {fleet.n_homes} homes but got {len(results)} "
            f"results")
    epoch = config.epoch if config.epoch is not None \
        else max(home.scenario.max_dcp for home in fleet.homes)
    epoch = min(epoch, horizon)
    bin_s = snap_bin(horizon, config.bin_s)
    shifts = max(int(epoch / bin_s + 1e-9), 1)
    home_ids = [home.home_id for home in fleet.homes]
    if envelopes is not None:
        if len(envelopes) != fleet.n_homes:
            raise ValueError(
                f"fleet has {fleet.n_homes} homes but got "
                f"{len(envelopes)} precomputed envelopes")
        envelope_map = {home.home_id: envelope
                        for home, envelope in zip(fleet.homes, envelopes)}
    else:
        envelope_map = {
            home.home_id: phase_envelope(result.load_w, horizon, bin_s)
            for home, result in zip(fleet.homes, results)}
    claims, cp_stats, sweeps = negotiate_offsets(home_ids, envelope_map,
                                                 shifts, config)
    planned = tuple(claims[home.home_id] * bin_s
                    for home in fleet.homes)
    if partials is not None:
        independent = combine_partials(partials,
                                       [r.load_w for r in results])
    else:
        independent = sum_series([r.load_w for r in results])
    rotated = [rotate_series(result.load_w, offset, horizon)
               for result, offset in zip(results, planned)]
    coordinated = sum_series(rotated)
    applied = True
    if config.guard and any(offset != 0.0 for offset in planned):
        if coordinated.maximum(0.0, horizon) \
                >= independent.maximum(0.0, horizon) - 1e-9:
            applied = False
    elif all(offset == 0.0 for offset in planned):
        applied = False
    if not applied:
        rotated = [rotate_series(result.load_w, 0.0, horizon)
                   for result in results]
        coordinated = independent
    return FeederCoordination(
        epoch=epoch, bin_s=bin_s,
        planned_offsets_s=planned,
        offsets_s=planned if applied else tuple(0.0 for _ in planned),
        applied=applied, sweeps=sweeps, cp_stats=cp_stats,
        contributions_w=rotated, independent_w=independent,
        coordinated_w=coordinated)
