"""Feeder-level collaboration plane: the paper's CP, one level up.

The paper's collaborative scheme (§II) never crosses the home's meter:
every Device Interface shares a :class:`~repro.core.state.CpItem` over
MiniCast rounds, and the shared deterministic scheduler staggers bursts
*inside* one home.  Behind a feeder, independently coordinated homes still
peak together — PR 1's neighborhood layer measures that as a diversity
factor barely above 1.

This module extends the same announce/claim/stagger structure across
homes, in the spirit of distributed neighborhood scheduling
(arXiv:2011.04338) and online multi-home load coordination
(arXiv:2304.11770):

* each home's gateway (its smart meter uplink) publishes a compact
  :class:`HomeItem` — the home's *claimed-burst envelope*, i.e. the
  per-phase-bin upper bound of its realized Type-2 load — the
  neighborhood analogue of a :class:`~repro.core.state.CpItem`;
* a decentralized **feeder round** runs over the very same CP driver the
  in-home plane uses (:class:`~repro.st.rounds.IdealCP` on a private
  :class:`~repro.sim.kernel.Simulator`): one gateway per round holds the
  claim token and picks the **phase offset** minimising the projected
  feeder peak given every other home's claimed envelope — exactly the
  in-home scheduler's one-by-one stagger logic, one level up;
* the negotiated offsets are applied by *phase-rotating* each home's
  realized load profile (:func:`rotate_series`).  The workloads are
  time-homogeneous (Poisson / MMPP / batch arrivals with no
  time-of-day structure), so a cyclic rotation of a home's trajectory
  is a sample path of the phase-shifted home — and rotation preserves
  each home's energy and individual peak *exactly*, which pins the
  conservation law the invariant tests rely on: coordination moves
  load, it never sheds it.

Determinism: the plane consumes only the (already bit-deterministic)
per-home results, in fleet order, and draws no randomness — so
``run_neighborhood(..., coordination="feeder")`` stays bit-identical for
any ``jobs`` count.

Safety: the per-bin envelope makes the negotiated objective an *upper
bound* on the realized feeder peak, so the plane re-evaluates the final
plan against the realized profiles and falls back to zero offsets
(``applied=False``) if staggering would not strictly lower the realized
coincident peak.  The feeder plane is advisory — it never regresses the
feeder it coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.system import RunResult
from repro.neighborhood.aggregate import sum_series
from repro.sim.kernel import Simulator
from repro.sim.monitor import StepSeries
from repro.st.rounds import CpStats, IdealCP

if TYPE_CHECKING:  # pragma: no cover
    from repro.neighborhood.fleet import FleetSpec

#: serialized footprint of a HomeItem header on the wire, bytes
HOME_ITEM_HEADER_BYTES: int = 10
#: bytes per quantized envelope bin on the wire
ENVELOPE_BIN_BYTES: int = 2


@dataclass(frozen=True)
class FeederConfig:
    """Knobs of the feeder collaboration plane.

    Defaults mirror the in-home Communication Plane where a counterpart
    exists: feeder rounds run every ``period`` (= the paper's 2 s MiniCast
    period), and the phase ``epoch`` defaults to the fleet's largest
    ``maxDCP`` — the recurrence period of the bursts being staggered.
    """

    #: phase period the offsets live in; None = max home ``maxDCP``
    epoch: Optional[float] = None
    #: nominal envelope bin width (seconds) — also the offset
    #: granularity; snapped so bins tile the horizon exactly
    bin_s: float = 60.0
    #: maximum full claim sweeps (every gateway claims once per sweep)
    max_sweeps: int = 4
    #: feeder CP round period, seconds (one claim token per round)
    period: float = 2.0
    #: re-check the realized feeder peak and refuse a non-improving plan
    guard: bool = True

    def __post_init__(self) -> None:
        if self.bin_s <= 0:
            raise ValueError(f"bin_s must be > 0, got {self.bin_s}")
        if self.max_sweeps < 1:
            raise ValueError(
                f"max_sweeps must be >= 1, got {self.max_sweeps}")
        if self.epoch is not None and self.epoch <= 0:
            raise ValueError(f"epoch must be > 0, got {self.epoch}")


@dataclass(frozen=True)
class HomeItem:
    """One home gateway's payload for a feeder CP round.

    The neighborhood analogue of the in-home
    :class:`~repro.core.state.CpItem`: instead of one device's status plus
    announcements, a gateway shares its whole home's *aggregate
    claimed-burst envelope* — the per-bin upper bound of the home's load
    over the observation window — plus the phase ``shift`` (in bins) it
    currently claims.  Items are versioned so view merges stay idempotent
    and order-insensitive, mirroring
    :meth:`repro.core.state.SharedView.merge_item`.
    """

    home_id: int
    version: int
    #: claimed phase offset, in envelope bins
    shift: int
    #: per-bin upper bound of the home's load over the horizon, watts
    envelope: tuple[float, ...]
    #: the home's individual peak (max of the envelope), watts
    peak_w: float

    @property
    def wire_bytes(self) -> int:
        """Approximate serialized size (quantized bins), for airtime
        accounting — the feeder analogue of
        :attr:`repro.core.state.CpItem.wire_bytes`."""
        return (HOME_ITEM_HEADER_BYTES
                + ENVELOPE_BIN_BYTES * len(self.envelope))


@dataclass
class FeederCoordination:
    """Outcome of one feeder-plane negotiation over a finished fleet run.

    Carries both the coordinated and the independent (un-rotated) feeder
    series so :class:`~repro.neighborhood.federation.NeighborhoodResult`
    can report the diversity-factor uplift without re-running anything.
    """

    #: resolved phase period (seconds)
    epoch: float
    #: envelope bin width = offset granularity (seconds)
    bin_s: float
    #: negotiated per-home phase offsets (seconds, fleet order)
    planned_offsets_s: tuple[float, ...]
    #: offsets actually applied (all zero when the guard declined)
    offsets_s: tuple[float, ...]
    #: False when the guard found no realized improvement and fell back
    applied: bool
    #: full claim sweeps the negotiation ran before converging
    sweeps: int
    #: feeder CP round statistics (reused :class:`~repro.st.rounds.CpStats`)
    cp_stats: CpStats
    #: per-home feeder contributions (phase-rotated load), fleet order
    contributions_w: list[StepSeries]
    #: Σ un-rotated homes — the independent baseline feeder profile
    independent_w: StepSeries
    #: Σ rotated homes — what the feeder carries under coordination
    coordinated_w: StepSeries


# ---------------------------------------------------------------------------
# envelopes and rotation
# ---------------------------------------------------------------------------

def _series_segments(series: StepSeries,
                     horizon: float) -> list[tuple[float, float, float]]:
    """``(start, end, value)`` segments partitioning ``[0, horizon)``.

    Thin wrapper over :meth:`~repro.sim.monitor.StepSeries.segments`, the
    canonical decomposition the statistics are computed from — rotation
    and envelopes must agree with it bit for bit.
    """
    return list(series.segments(0.0, horizon))


def phase_envelope(series: StepSeries, horizon: float,
                   bin_s: float) -> tuple[float, ...]:
    """Per-bin upper bound of ``series`` on a regular grid over the window.

    Bin ``b`` covers ``[b * bin_s, (b + 1) * bin_s)``; its envelope value
    is the *maximum* signal value attained inside, so summed envelopes
    upper-bound the summed signals — the property the feeder plane's
    claim objective relies on.
    """
    # The tiny slack keeps exact divisions (the usual case — see
    # coordinate_fleet's bin snapping) from spilling into an extra bin
    # through float rounding.
    bins = int(math.ceil(horizon / bin_s - 1e-9))
    envelope = [0.0] * bins
    for start, end, value in _series_segments(series, horizon):
        if value <= 0.0:
            continue
        first = int(start // bin_s)
        last = min(int(math.ceil(end / bin_s)), bins)
        for b in range(first, last):
            if value > envelope[b]:
                envelope[b] = value
    return tuple(envelope)


def rotate_series(series: StepSeries, offset: float, horizon: float,
                  name: Optional[str] = None) -> StepSeries:
    """Cyclically delay ``series`` by ``offset`` within ``[0, horizon)``.

    Returns the step series ``r(t) = s((t − offset) mod horizon)``: the
    home's day, started ``offset`` later, with the displaced tail wrapping
    to the front (the steady-state reading of a phase shift).  Rotation
    permutes the constant segments without changing their durations or
    values, so the integral (energy), the time-weighted distribution and
    the peak over ``[0, horizon)`` are all preserved.
    """
    out = StepSeries(name if name is not None else series.name)
    offset = offset % horizon
    if offset == 0.0:
        for start, _end, value in _series_segments(series, horizon):
            out.record(start, value)
        return out
    shifted: list[tuple[float, float]] = []
    for start, end, value in _series_segments(series, horizon):
        new_start = start + offset
        new_end = end + offset
        if new_start >= horizon:
            shifted.append((new_start - horizon, value))
        elif new_end > horizon:
            shifted.append((new_start, value))
            shifted.append((0.0, value))
        else:
            shifted.append((new_start, value))
    for start, value in sorted(shifted):
        out.record(start, value)
    return out


# ---------------------------------------------------------------------------
# the decentralized feeder round
# ---------------------------------------------------------------------------

class FeederPlane:
    """The feeder-level :class:`~repro.st.rounds.CpApplication`.

    One *gateway* per home plugs into a CP driver exactly the way
    :class:`~repro.core.system.HanSystem` plugs per-DI agents in: the
    driver calls :meth:`cp_payload` to gather every gateway's
    :class:`HomeItem` and :meth:`cp_deliver` to hand each gateway the
    round's packets.  Claims are made one by one — the gateway whose
    ``home_id`` matches the round index (round-robin token) re-claims its
    phase offset against the envelopes everyone else published, mirroring
    the paper's one-by-one admission order.  A claim is only moved when it
    *strictly* lowers the projected feeder peak, so the negotiation is a
    descent on a finite lattice and always converges.
    """

    def __init__(self, home_ids: Sequence[int],
                 envelopes: dict[int, tuple[float, ...]],
                 shifts: int):
        if shifts < 1:
            raise ValueError(f"need >= 1 candidate shift, got {shifts}")
        self.home_ids = list(home_ids)
        self.shifts = shifts
        self._envelopes = {home: np.asarray(envelopes[home], dtype=float)
                           for home in self.home_ids}
        self.claims: dict[int, int] = {home: 0 for home in self.home_ids}
        self._versions: dict[int, int] = {home: 1 for home in self.home_ids}
        self._views: dict[int, dict[int, HomeItem]] = {
            home: {} for home in self.home_ids}
        self.sweep_changed = False

    # -- CpApplication interface ------------------------------------------------

    def cp_payload(self, node: int, round_index: int) -> HomeItem:
        """The gateway's current item (always fresh: claims are cheap)."""
        envelope = self._envelopes[node]
        return HomeItem(home_id=node, version=self._versions[node],
                        shift=self.claims[node],
                        envelope=tuple(envelope),
                        peak_w=float(envelope.max(initial=0.0)))

    def cp_deliver(self, node: int, packets: dict[int, HomeItem],
                   round_index: int) -> None:
        """Merge the round's items; re-claim if ``node`` holds the token."""
        view = self._views[node]
        for origin, item in packets.items():
            known = view.get(origin)
            if known is None or item.version > known.version:
                view[origin] = item
        token = self.home_ids[round_index % len(self.home_ids)]
        if node != token:
            return
        best = self._best_shift(node)
        if best != self.claims[node]:
            self.claims[node] = best
            self._versions[node] += 1
            self.sweep_changed = True

    # -- the claim rule ----------------------------------------------------------

    def _combined_others(self, node: int) -> np.ndarray:
        """Projected feeder load per bin from everyone else's claims."""
        view = self._views[node]
        combined = np.zeros(len(self._envelopes[node]), dtype=float)
        for origin, item in view.items():
            if origin == node:
                continue
            combined += np.roll(np.asarray(item.envelope, dtype=float),
                                item.shift)
        return combined

    def _best_shift(self, node: int) -> int:
        """Least-peak phase for ``node`` given the others, stagger-style.

        Selection keys mirror :func:`repro.core.scheduler._pick_start`
        one level up: (1) smallest projected feeder peak, (2) the current
        claim when it ties (stability — only strict improvements move),
        (3) the earliest phase.
        """
        combined = self._combined_others(node)
        envelope = self._envelopes[node]
        current = self.claims[node]
        rolled = np.stack([np.roll(envelope, s)
                           for s in range(self.shifts)])
        peaks = (combined[None, :] + rolled).max(axis=1)
        floor = float(peaks.min())
        candidates = [s for s in range(self.shifts)
                      if peaks[s] <= floor + 1e-9]
        if current in candidates:
            return current
        return candidates[0]


def negotiate_offsets(home_ids: Sequence[int],
                      envelopes: dict[int, tuple[float, ...]],
                      shifts: int,
                      config: FeederConfig,
                      ) -> tuple[dict[int, int], CpStats, int]:
    """Run feeder CP rounds until the claims converge.

    Drives a :class:`FeederPlane` with the in-home round machinery
    (:class:`~repro.st.rounds.IdealCP` on a private simulator), one claim
    token per round, until a full sweep moves no claim or
    :attr:`FeederConfig.max_sweeps` is reached.  Returns the claimed
    shifts (bins) per home, the CP round statistics and the number of
    sweeps run.
    """
    plane = FeederPlane(home_ids, envelopes, shifts)
    sim = Simulator()
    cp = IdealCP(sim, plane, home_ids, period=config.period)
    cp.start()
    n = len(plane.home_ids)
    sweeps = 0
    for sweep in range(config.max_sweeps):
        plane.sweep_changed = False
        # Rounds sweep*n .. sweep*n + n − 1 run at round_index * period.
        sim.run(until=((sweep + 1) * n - 1) * config.period)
        sweeps += 1
        if not plane.sweep_changed:
            break
    return dict(plane.claims), cp.stats, sweeps


# ---------------------------------------------------------------------------
# putting it together
# ---------------------------------------------------------------------------

def coordinate_fleet(fleet: "FleetSpec", results: Sequence[RunResult],
                     horizon: float,
                     config: Optional[FeederConfig] = None,
                     ) -> FeederCoordination:
    """Negotiate and apply cross-home phase offsets for a finished run.

    ``results`` are the per-home :class:`~repro.core.system.RunResult`
    objects of ``fleet`` (fleet order), as produced by the independent
    fan-out in :func:`~repro.neighborhood.federation.run_neighborhood`.
    Pure post-exchange: no randomness, no re-simulation, bit-identical
    for any worker count.
    """
    if config is None:
        config = FeederConfig()
    if len(results) != fleet.n_homes:
        raise ValueError(
            f"fleet has {fleet.n_homes} homes but got {len(results)} "
            f"results")
    epoch = config.epoch if config.epoch is not None \
        else max(home.scenario.max_dcp for home in fleet.homes)
    epoch = min(epoch, horizon)
    # Snap the bin width so bins tile the horizon exactly: the claim
    # objective rolls envelopes on a cycle of bins x bin_s, and rotation
    # wraps at the horizon — the two cycles must be the same length or
    # the negotiated offsets optimize a mis-wrapped profile.
    n_bins = max(int(round(horizon / config.bin_s)), 1)
    bin_s = horizon / n_bins
    shifts = max(int(epoch / bin_s + 1e-9), 1)
    home_ids = [home.home_id for home in fleet.homes]
    envelopes = {
        home.home_id: phase_envelope(result.load_w, horizon, bin_s)
        for home, result in zip(fleet.homes, results)}
    claims, cp_stats, sweeps = negotiate_offsets(home_ids, envelopes,
                                                 shifts, config)
    planned = tuple(claims[home.home_id] * bin_s
                    for home in fleet.homes)
    independent = sum_series([r.load_w for r in results])
    rotated = [rotate_series(result.load_w, offset, horizon)
               for result, offset in zip(results, planned)]
    coordinated = sum_series(rotated)
    applied = True
    if config.guard and any(offset != 0.0 for offset in planned):
        if coordinated.maximum(0.0, horizon) \
                >= independent.maximum(0.0, horizon) - 1e-9:
            applied = False
    elif all(offset == 0.0 for offset in planned):
        applied = False
    if not applied:
        rotated = [rotate_series(result.load_w, 0.0, horizon)
                   for result in results]
        coordinated = independent
    return FeederCoordination(
        epoch=epoch, bin_s=bin_s,
        planned_offsets_s=planned,
        offsets_s=planned if applied else tuple(0.0 for _ in planned),
        applied=applied, sweeps=sweeps, cp_stats=cp_stats,
        contributions_w=rotated, independent_w=independent,
        coordinated_w=coordinated)
