"""ABL-CP-PERIOD — sensitivity to the 2 s MiniCast period.

Admission latency tracks the CP period, but the load shape barely moves
even at a 60 s period: the paper's 2 s choice is comfortably conservative
for 15-minute duty-cycle slots.
"""

import pytest

from repro.experiments import cp_period_sweep
from repro.sim.units import MINUTE

HORIZON = 180 * MINUTE
PERIODS = (0.5, 2.0, 10.0, 60.0)


@pytest.mark.benchmark(group="ablations")
def test_cp_period_sweep(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: cp_period_sweep(periods=PERIODS, seeds=(1, 2),
                                horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    # Admission latency is bounded by (and grows with) the period.
    for period in PERIODS:
        assert data[period]["admission_latency_s"] <= 2 * period + 1e-6
    assert data[60.0]["admission_latency_s"] > \
        data[2.0]["admission_latency_s"]
    # The load shape is insensitive across 0.5 s .. 60 s.
    peaks = [data[p]["peak_kw"] for p in PERIODS]
    assert max(peaks) - min(peaks) <= 1.5

    benchmark.extra_info["latency_at_2s"] = round(
        data[2.0]["admission_latency_s"], 2)
    benchmark.extra_info["latency_at_60s"] = round(
        data[60.0]["admission_latency_s"], 2)
