"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artefact (figure/table) or ablation and

* saves the rendered text under ``benchmarks/results/<id>.txt``,
* prints it (visible with ``pytest -s``),
* records headline numbers in ``benchmark.extra_info``.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Persist a FigureData and echo it."""

    def _record(figure) -> None:
        path = results_dir / f"{figure.figure_id}.txt"
        path.write_text(figure.text + "\n")
        print(f"\n{figure.text}\n[saved to {path}]")

    return _record
