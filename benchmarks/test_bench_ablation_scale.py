"""ABL-SCALE — does the benefit survive beyond 26 devices?

Fleet-size sweep at constant per-device request rate; the coordinated
advantage must not vanish as the HAN grows past the paper's testbed size.
"""

import pytest

from repro.experiments import scale_sweep
from repro.sim.units import MINUTE

HORIZON = 180 * MINUTE
COUNTS = (10, 26, 40, 60)


@pytest.mark.benchmark(group="ablations")
def test_scale_sweep(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: scale_sweep(device_counts=COUNTS, seeds=(1, 2),
                            horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    for n in COUNTS:
        # coordination wins at every size
        assert data[n]["peak_with"] < data[n]["peak_wo"], n
        assert data[n]["peak_reduction_pct"] > 10.0, n
    # absolute peaks scale with the fleet
    assert data[60]["peak_wo"] > data[10]["peak_wo"]

    for n in COUNTS:
        benchmark.extra_info[f"reduction_at_{n}"] = round(
            data[n]["peak_reduction_pct"], 1)
