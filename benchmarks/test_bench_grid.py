"""GRID-10K — 10,000 homes on 20 feeders, end-to-end under a minute.

The fleet-of-fleets acceptance path of PR 7: twenty 500-home feeders
under one substation, executed through the sharded engine with worker-
side envelope pre-reduction, per-feeder CP rounds, and feeder-level
envelope negotiation at the substation tier
(:func:`repro.neighborhood.grid.execute_grid`).  One round — this bench
exists to keep the 10k wall-clock number visible per push (group
``grid`` in ``BENCH_PR7.json``), not to average it.

The 10-minute horizon with ideal CP is the budget that fits the 1-core
bench box inside 60 seconds; the artefact this regenerates is the
committed golden lock ``benchmarks/results/grid-10k.txt`` (digest
included), so a bits-level regression fails the diff, not just the
assertions below.
"""

import pytest

from repro.experiments.ablations import grid_uplift

FEEDERS = 20
HOMES_PER_FEEDER = 500


@pytest.mark.benchmark(group="grid")
def test_grid_10k_substation_smoke(benchmark, record_figure):
    figure = benchmark.pedantic(grid_uplift, rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    assert data["n_feeders"] == FEEDERS
    assert data["n_homes"] == FEEDERS * HOMES_PER_FEEDER
    # Rotation conserves energy exactly; the guard never lets either
    # tier regress the substation it coordinates.
    assert data["energy_drift_pct"] < 1e-6
    assert data["peak_reduction_pct"] >= -1e-9
    assert data["df_coordinated"] >= data["df_independent"] - 1e-9
    # The flagship claim: two-tier coordination finds real headroom at
    # substation scale.  At N=10k the 20 statistically-identical
    # feeders peak near-simultaneously (DF_indep ~ 1.000), so the
    # uplift ratio stays close to 1 — the headroom shows up as the
    # coincident-peak reduction itself.
    assert data["diversity_uplift"] >= 1.0 - 1e-9
    assert data["peak_reduction_pct"] > 10.0
    assert data["applied"]

    benchmark.extra_info["homes"] = data["n_homes"]
    benchmark.extra_info["feeders"] = data["n_feeders"]
    benchmark.extra_info["diversity_uplift"] = round(
        data["diversity_uplift"], 4)
    benchmark.extra_info["peak_reduction_pct"] = round(
        data["peak_reduction_pct"], 2)
    benchmark.extra_info["digest"] = data["digest"][:16]
