"""FIG2B — Figure 2(b): peak load vs arrival rate (4/18/30 per hour).

The paper reports peak-load reduction "up to 50%"; this bench regenerates
the same bars (mean ± seed-std) and records the measured best reduction.
"""

import pytest

from repro.experiments import fig2b

SEEDS = (1, 2, 3)


@pytest.mark.benchmark(group="figures")
def test_fig2b(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: fig2b(seeds=SEEDS, cp_fidelity="round"),
        rounds=1, iterations=1)
    record_figure(figure)

    rates = figure.data["rates"]
    assert set(rates) == {4.0, 18.0, 30.0}
    for rate, entry in rates.items():
        with_mean = entry["with"][0]
        without_mean = entry["without"][0]
        # coordination must win at every rate
        assert with_mean < without_mean, rate
        # peak grows with the arrival rate in both systems
    assert rates[4.0]["without"][0] < rates[18.0]["without"][0] \
        < rates[30.0]["without"][0]
    assert rates[4.0]["with"][0] < rates[18.0]["with"][0] \
        < rates[30.0]["with"][0]

    best = figure.data["best_reduction_pct"]
    # the paper claims "up to 50%"; the reproduced shape lands in the
    # 25-55% band depending on seed (see EXPERIMENTS.md)
    assert best >= 25.0
    benchmark.extra_info["best_peak_reduction_pct"] = best
