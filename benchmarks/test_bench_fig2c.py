"""FIG2C — Figure 2(c): average load ± load deviation vs arrival rate.

The paper's error bars are the load's standard deviation over time; the
claim is that coordination keeps the average while shrinking the bars
(by up to 58%).
"""

import pytest

from repro.experiments import fig2c

SEEDS = (1, 2, 3)


@pytest.mark.benchmark(group="figures")
def test_fig2c(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: fig2c(seeds=SEEDS, cp_fidelity="round"),
        rounds=1, iterations=1)
    record_figure(figure)

    rates = figure.data["rates"]
    for rate, entry in rates.items():
        with_mean, with_dev = entry["with"]
        wo_mean, wo_dev = entry["without"]
        # average load preserved (the paper: "keeping average load the
        # same") — coordination defers, it does not shed energy
        assert with_mean == pytest.approx(wo_mean, rel=0.12), rate
        # deviation (error bar) shrinks at every rate
        assert with_dev < wo_dev, rate
    # average load grows with the arrival rate
    assert rates[4.0]["with"][0] < rates[18.0]["with"][0] \
        < rates[30.0]["with"][0]

    best = figure.data["best_reduction_pct"]
    assert best >= 20.0
    benchmark.extra_info["best_std_reduction_pct"] = best
