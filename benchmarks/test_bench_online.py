"""NBHD-ONLINE — per-epoch online coordination against forecasts.

The telemetry + forecast plane acceptance path of PR 8: 500 homes run
once, then the same realized results replay through the online epoch
loop (:func:`repro.neighborhood.online.coordinate_fleet_online`) under
progressively degraded predictions.  The flagship assertions pin the
subsystem's contract:

* the oracle-driven incremental loop recovers >= 80% of the hindsight
  ceiling (cold full replan on realized envelopes every epoch);
* rotation conserves energy *exactly* (fsum-correct, not approximately);
* the per-epoch guard never raises any epoch's peak over independent;
* prediction noise degrades recovery gracefully, never below
  independent;
* epoch 2+ incremental replans cost far less CP traffic than cold
  replans — the sub-linear-in-unchanged-homes claim, measured both at
  the fleet level (deliveries ratio in ``extra_info``, lands in
  ``BENCH_PR8.json``) and in a direct micro-benchmark of
  :func:`~repro.neighborhood.coordination.renegotiate_offsets`.

The artefact this regenerates is the committed golden lock
``benchmarks/results/nbhd-online.txt`` (profile digest included), so a
bits-level regression fails the diff, not just the assertions below.
"""

import pytest

from repro.experiments.ablations import online_uplift

HOMES = 500


@pytest.mark.benchmark(group="online")
def test_online_uplift_smoke(benchmark, record_figure):
    figure = benchmark.pedantic(online_uplift, rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    assert data["n_homes"] == HOMES
    assert data["n_epochs"] >= 2
    # Rotation permutes segments; fsum makes the integral exact, so the
    # drift is zero to the bit, not merely small.
    assert data["oracle_energy_drift_wh"] == 0.0
    # The acceptance bar: committing each epoch's offsets before that
    # epoch's telemetry exists costs the oracle at most 20% of what the
    # same actuator achieves with hindsight and unlimited CP traffic.
    assert data["oracle_recovery"] >= 0.8
    # Graceful degradation: noisy predictions recover less than exact
    # ones, and the per-epoch guard keeps every run at or above the
    # independent baseline (recovery can never go negative).
    recoveries = [entry["recovery"]
                  for label, entry in data["sweep"].items()]
    assert all(recovery >= -1e-9 for recovery in recoveries)
    noisy = [entry["recovery"] for label, entry in data["sweep"].items()
             if label.startswith("oracle+")]
    assert all(recovery <= data["oracle_recovery"] + 1e-9
               for recovery in noisy)
    # Incremental replanning: the diff loop's total CP deliveries stay
    # far below cold per-epoch renegotiation (n^2 per round, every
    # round, every epoch).
    ratio = data["oracle_cp_deliveries"] / data["ceiling_cp_deliveries"]
    assert ratio < 0.2

    benchmark.extra_info["homes"] = data["n_homes"]
    benchmark.extra_info["epochs"] = data["n_epochs"]
    benchmark.extra_info["oracle_recovery"] = round(
        data["oracle_recovery"], 4)
    benchmark.extra_info["replan_deliveries_ratio"] = round(ratio, 6)
    benchmark.extra_info["telemetry_events"] = data["telemetry_events"]
    benchmark.extra_info["digest"] = data["digest"][:16]


@pytest.mark.benchmark(group="online")
@pytest.mark.parametrize("changed", [4, 32])
def test_online_replan_cost(benchmark, changed):
    """Incremental replan cost scales with |changed|, not with n^2.

    Builds one converged 256-home claim plane, perturbs ``changed``
    envelopes, and benchmarks the re-negotiation alone — the exact
    epoch-boundary work of the online loop.  Deliveries are asserted
    (``sweeps * changed * n``: one updated HomeItem to n gateways per
    round, only changed homes holding tokens) so the sub-linear claim
    is a measured contract, not a wall-clock accident.
    """
    import numpy as np

    from repro.neighborhood.coordination import (
        FeederConfig,
        FeederPlane,
        negotiate_offsets,
        renegotiate_offsets,
    )
    from repro.sim.rng import RandomStreams

    n, bins = 256, 16
    streams = RandomStreams(7)
    envelopes = {
        home: tuple(streams.stream(f"bench/env-{home}")
                    .uniform(0.0, 1e3, bins).tolist())
        for home in range(n)}
    config = FeederConfig()
    claims, _stats, _sweeps = negotiate_offsets(
        list(range(n)), envelopes, bins, config)
    moved = list(range(0, 4 * changed, 4))[:changed]
    perturbed = {
        home: tuple((np.asarray(envelopes[home]) * 1.5).tolist())
        for home in moved}

    def replan():
        plane = FeederPlane(list(range(n)), envelopes, bins,
                            claims=dict(claims))
        for home in moved:
            plane.update_envelope(home, perturbed[home])
        return renegotiate_offsets(plane, moved, config)

    new_claims, stats, sweeps = benchmark.pedantic(
        replan, rounds=3, iterations=1)
    assert stats.deliveries == sweeps * changed * n
    assert stats.deliveries < n * n
    # Unchanged homes keep their claims — the diff touched nobody else.
    untouched = set(range(n)) - set(moved)
    assert all(new_claims[home] == claims[home] for home in untouched)

    benchmark.extra_info["n_homes"] = n
    benchmark.extra_info["changed"] = changed
    benchmark.extra_info["deliveries"] = stats.deliveries
    benchmark.extra_info["cold_deliveries_per_sweep"] = n * n
