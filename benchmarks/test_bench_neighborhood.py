"""NBHD-COORD — does cross-home staggering lift the diversity factor?

Runs the feeder-level collaboration plane
(:mod:`repro.neighborhood.coordination`) across fleet mixes and sizes and
asserts the beyond-paper claim: coordination strictly lifts the diversity
factor while conserving energy exactly (it moves load, never sheds it).
Shortened horizon and small fleets keep the bench in the tier-1 budget;
the full-scale artefact regenerates via ``repro regen NBHD-COORD``.
"""

import pytest

from repro.experiments import neighborhood_coordination
from repro.sim.units import MINUTE

HORIZON = 150 * MINUTE
COUNTS = (4, 8)
MIXES = ("suburb", "mixed")


@pytest.mark.benchmark(group="neighborhood")
def test_neighborhood_coordination(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: neighborhood_coordination(n_homes=COUNTS, mixes=MIXES,
                                          seed=1, horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    for cell, row in data.items():
        # Rotation conserves every home's energy; the feeder totals agree
        # to float rounding.
        assert row["energy_drift_pct"] < 1e-6, cell
        # The guard never lets the plane regress the feeder.
        assert row["df_coordinated"] >= row["df_independent"] - 1e-9, cell
        assert row["peak_reduction_pct"] >= -1e-9, cell
    # Staggering finds real headroom in at least one cell per mix.
    for mix in MIXES:
        assert any(row["diversity_uplift"] > 1.005
                   for cell, row in data.items() if cell[0] == mix), mix

    for cell, row in data.items():
        benchmark.extra_info[f"uplift_{cell[0]}_{cell[1]}"] = round(
            row["diversity_uplift"], 3)
