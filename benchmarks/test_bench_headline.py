"""HEADLINE — the abstract's numbers: peak ↓ up to 50%, variation ↓ up to
58%, average load unchanged."""

import pytest

from repro.experiments import headline_numbers

SEEDS = (1, 2, 3, 4, 5)


@pytest.mark.benchmark(group="figures")
def test_headline(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: headline_numbers(seeds=SEEDS, cp_fidelity="round"),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    # Directionally the claims must reproduce decisively:
    assert data["peak_reduction_max_pct"] >= 30.0
    assert data["peak_reduction_mean_pct"] >= 20.0
    assert data["std_reduction_max_pct"] >= 30.0
    assert data["std_reduction_mean_pct"] >= 15.0
    # "keeping average load the same"
    assert data["mean_drift_mean_pct"] <= 8.0

    for key, value in data.items():
        benchmark.extra_info[key] = round(value, 2)
