"""FIG2A — Figure 2(a): total load vs time at the high arrival rate.

Regenerates the paper's 350-minute load traces (with vs without
coordination, 26 x 1 kW devices, Poisson 30 requests/hour) over the
calibrated (``round``) Communication Plane.
"""

import pytest

from repro.experiments import fig2a


@pytest.mark.benchmark(group="figures")
def test_fig2a(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: fig2a(seed=1, cp_fidelity="round"),
        rounds=1, iterations=1)
    record_figure(figure)

    stats = figure.data["stats"]
    with_coordination = stats["with_coordination"]
    without = stats["wo_coordination"]

    # The paper's Figure 2(a) shape: coordination lowers the peak and
    # smooths the trace while leaving the mean essentially unchanged.
    assert with_coordination.peak_kw < without.peak_kw
    assert with_coordination.std_kw < without.std_kw
    assert with_coordination.mean_kw == pytest.approx(without.mean_kw,
                                                      rel=0.10)
    # load moves in (near-)single-device steps under coordination
    assert with_coordination.max_step_kw <= 2.0
    assert without.max_step_kw >= 1.0

    benchmark.extra_info["peak_with_kw"] = with_coordination.peak_kw
    benchmark.extra_info["peak_without_kw"] = without.peak_kw
    benchmark.extra_info["std_with_kw"] = with_coordination.std_kw
    benchmark.extra_info["std_without_kw"] = without.std_kw
