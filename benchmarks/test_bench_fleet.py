"""FLEET — N=500 sharded, coordinated neighborhood smoke.

The fleet-scale acceptance path of PR 5: five hundred heterogeneous
homes behind one feeder, executed through the sharded engine (worker
pre-reduction + batched series transport + exact partial aggregation)
with the feeder collaboration plane on top.  One round — this bench
exists to keep the wall-clock number visible per push (group ``fleet``
in ``BENCH_PR5.json``), not to average it.

The shortened horizon keeps the smoke inside the tier-1 budget; the
acceptance measurement at the full 120-minute window is recorded in
``benchmarks/results/perf-pr5.txt``.
"""

import pytest

from repro.api import (
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ScenarioSpec,
    run,
)
from repro.sim.units import MINUTE

N_HOMES = 500
HORIZON = 60 * MINUTE


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        name=f"fleet-{N_HOMES}-coordinated", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=HORIZON),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1,),
        fleet=FleetPlan(homes=N_HOMES, mix="suburb",
                        coordination="feeder"))


@pytest.mark.benchmark(group="fleet")
def test_fleet_500_coordinated_smoke(benchmark, results_dir):
    result = benchmark.pedantic(lambda: run(_spec()), rounds=1,
                                iterations=1)
    neighborhood = result.neighborhood
    stats = neighborhood.feeder_stats()
    assert stats.n_homes == N_HOMES
    assert stats.diversity_factor >= 1.0 - 1e-9

    comparison = neighborhood.comparison()
    assert comparison is not None
    # The guard never lets the plane regress the feeder; rotation
    # conserves energy exactly.
    assert comparison.peak_reduction_pct >= -1e-9
    assert comparison.energy_drift_pct < 1e-6

    benchmark.extra_info["homes"] = N_HOMES
    benchmark.extra_info["total_devices"] = \
        neighborhood.fleet.total_devices
    benchmark.extra_info["diversity_factor"] = round(
        stats.diversity_factor, 4)
    benchmark.extra_info["diversity_uplift"] = round(
        comparison.diversity_uplift, 4)
    benchmark.extra_info["coordination_applied"] = \
        neighborhood.coordination.applied

    path = results_dir / "fleet-500.txt"
    path.write_text(
        "FLEET-500 smoke (60 min horizon, ideal CP, sharded engine)\n\n"
        + neighborhood.render() + "\n")
    print(f"\n[saved to {path}]")
