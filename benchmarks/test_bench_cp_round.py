"""FIG1 — the Communication Plane: MiniCast rounds every 2 s.

Measures what Figure 1 sketches: one slot-level round shares every DI's
items with every other DI well inside the 2 s period, with >99% delivery,
microsecond sync and a single-digit-mJ energy bill.
"""

import pytest

from repro.experiments import trace_cp
from repro.radio import FloodMedium, flocklab26
from repro.sim import RandomStreams
from repro.st import GlossyConfig, MiniCast, run_flood


@pytest.mark.benchmark(group="cp")
def test_fig1_cp_trace(benchmark, record_figure):
    result = benchmark.pedantic(lambda: trace_cp(rounds=25, seed=1),
                                rounds=1, iterations=1)

    class _Figure:  # adapt CpTraceResult to the record_figure helper
        figure_id = "fig1-cp-trace"
        text = result.text

    record_figure(_Figure)

    # One round must fit far inside the 2 s period (paper Figure 1).
    assert result.mean_duration_ms < 500.0
    # All-to-all sharing is effectively reliable.
    assert result.mean_delivery > 0.99
    # Clock agreement is orders of magnitude below the 15-min slots.
    assert max(result.sync_errors_us) < 100.0
    # Duty-cycled radio: a few percent, not always-on.
    assert result.radio_duty_cycle < 0.25

    benchmark.extra_info["round_ms"] = round(result.mean_duration_ms, 1)
    benchmark.extra_info["delivery"] = round(result.mean_delivery, 4)
    benchmark.extra_info["duty_cycle_pct"] = round(
        100 * result.radio_duty_cycle, 2)


def _medium(seed=1):
    streams = RandomStreams(seed)
    channel = flocklab26().make_channel(rng=streams.stream("channel"))
    return FloodMedium(channel, streams.stream("floods"))


@pytest.mark.benchmark(group="cp")
def test_single_flood_speed(benchmark):
    """Microbench: one slot-level Glossy flood over 26 nodes."""
    medium = _medium()
    nodes = list(range(26))
    result = benchmark(lambda: run_flood(medium, 0, nodes, GlossyConfig()))
    assert len(result.receivers) >= 24


@pytest.mark.benchmark(group="cp")
def test_minicast_round_speed(benchmark):
    """Microbench: one full 26-node MiniCast round (13 floods)."""
    medium = _medium()
    minicast = MiniCast(medium)
    nodes = list(range(26))
    outcome = benchmark(lambda: minicast.run_round(nodes))
    assert outcome.delivery_ratio(nodes) > 0.98
