"""ABL-ST-VS-AT — the introduction's motivation, quantified.

Synchronous-transmission CP vs the traditional asynchronous stack on the
same 26-node topology: radio energy, request-dissemination latency and
behaviour under a synchronized request storm.
"""

import pytest

from repro.experiments import st_vs_at


@pytest.mark.benchmark(group="ablations")
def test_st_vs_at(benchmark, record_figure):
    figure = benchmark.pedantic(lambda: st_vs_at(seed=1),
                                rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    # AT keeps its radio always on; ST duty-cycles rounds.
    assert data["energy_ratio"] > 3.0
    # One ST round moves all 25 requests; AT needs per-report unicasts.
    assert data["st_all_informed_s"] < 0.5
    assert data["st_delivery"] > 0.99
    # A simultaneous request storm collapses CSMA collection.
    assert data["at_storm_delivered"] < data["at_jittered_delivered"]
    assert data["at_storm_delivered"] <= 15

    benchmark.extra_info["energy_ratio"] = round(data["energy_ratio"], 1)
    benchmark.extra_info["at_storm_delivered"] = data["at_storm_delivered"]
    benchmark.extra_info["at_jittered_delivered"] = \
        data["at_jittered_delivered"]
