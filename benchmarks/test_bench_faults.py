"""FAULTS — the injection plane must be free when nothing is injected.

Every hot path in the fleet pipeline now carries fault probes
(telemetry ingest, frame unpack, cache reads, worker attempts).  On a
clean run those probes are one module-global read returning ``None``;
this group pins that cost:

* a clean online coordination pass and the same pass inside an armed
  all-but-never-firing fault scope stay within noise of each other
  (the armed case additionally pays one SHA-256 per probe — the upper
  bound on what any site can cost);
* :func:`repro.faults.get_injector` itself is nanoseconds per call.

The recorded ``extra_info`` ratios are the PR's "<1% disabled-injector
overhead" number; the assertions use looser bounds because shared CI
boxes jitter individual timings far more than the overhead itself.
"""

import time

import pytest

from repro.faults import FaultPlan, fault_scope, get_injector
from repro.neighborhood import (
    FeederConfig,
    ForecastConfig,
    build_fleet,
    coordinate_fleet_online,
    execute_fleet,
)
from repro.sim.units import HOUR

HOMES = 30
HORIZON = 3 * HOUR  # four 45-min CP epochs on the suburb mix

#: Armed but unfirable: enabled (so every probe hashes) at odds no
#: schedule ever realizes — the most expensive clean run possible.
NEVER = FaultPlan(seed=1, telemetry_drop=1e-300, telemetry_delay=1e-300,
                  telemetry_dup=1e-300, frame_loss=1e-300)


def median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


@pytest.mark.benchmark(group="faults")
def test_disabled_injector_overhead(benchmark):
    fleet = build_fleet(HOMES, mix="suburb", seed=1,
                        cp_fidelity="ideal", horizon=HORIZON)
    results = execute_fleet(fleet, until=HORIZON).homes

    def online():
        return coordinate_fleet_online(
            fleet, results, HORIZON, config=FeederConfig(),
            forecast=ForecastConfig(forecaster="persistence"))

    def timed(arm):
        start = time.perf_counter()
        plan = online() if arm is None else None
        if arm is not None:
            with fault_scope(arm):
                plan = online()
        elapsed = time.perf_counter() - start
        assert plan.n_epochs > 1
        return elapsed

    timed(None), timed(NEVER)  # warm caches before measuring
    clean, zero, armed = [], [], []
    for _ in range(5):  # interleaved so load spikes hit all three
        clean.append(timed(None))
        zero.append(timed(FaultPlan(seed=1)))  # disabled: no injector
        armed.append(timed(NEVER))
    disabled_ratio = median(zero) / median(clean)
    armed_ratio = median(armed) / median(clean)

    benchmark.extra_info["median_clean_s"] = round(median(clean), 4)
    benchmark.extra_info["disabled_overhead"] = \
        round(disabled_ratio - 1.0, 4)
    benchmark.extra_info["armed_never_firing_overhead"] = \
        round(armed_ratio - 1.0, 4)
    benchmark.pedantic(online, rounds=3, iterations=1)

    assert disabled_ratio < 1.10  # typically < 1.01; bound is CI noise
    assert armed_ratio < 1.35


@pytest.mark.benchmark(group="faults")
def test_get_injector_is_one_global_read(benchmark):
    def probe():
        total = 0
        for _ in range(10_000):
            if get_injector() is not None:
                total += 1
        return total

    assert benchmark(probe) == 0
