"""MICRO — substrate microbenchmarks.

Throughput of the kernel, the scheduler's planning step, the CSMA medium
and the analysis layer; these bound how far the simulator scales.
"""

import numpy as np
import pytest

from repro.core import CpItem, DeviceStatus, SchedulerConfig, SharedView, \
    plan_admissions
from repro.han.dutycycle import DutyCycleSpec
from repro.han.requests import RequestAnnouncement
from repro.radio import Channel, CsmaMedium, Frame
from repro.sim import Simulator, StepSeries
from repro.sim.rng import RandomStreams

SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


@pytest.mark.benchmark(group="micro")
def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k timer events."""

    def run():
        sim = Simulator()

        def ticker(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.spawn(ticker(sim))
        sim.run()
        return sim.now

    now = benchmark(run)
    assert now == 100.0


@pytest.mark.benchmark(group="micro")
def test_plan_admissions_speed(benchmark):
    """One full planning pass: 26 active devices + 10 pending requests."""
    view = SharedView()
    for device_id in range(26):
        view.merge_item(CpItem(DeviceStatus(
            device_id=device_id, version=1, active=device_id % 2 == 0,
            remaining_cycles=1 if device_id % 2 == 0 else 0,
            assigned_slot=None, power_w=1000.0,
            burst_start=float(device_id) * 60.0
            if device_id % 2 == 0 else None)))
    for i in range(10):
        device_id = 1 + 2 * (i % 13)
        view.pending[100 + i] = RequestAnnouncement(
            request_id=100 + i, device_id=device_id,
            arrival_time=float(i), demand_cycles=1, power_w=1000.0)
    config = SchedulerConfig(spec=SPEC)

    decisions = benchmark(lambda: plan_admissions(view, config, now=0.0))
    assert len(decisions) == 10


@pytest.mark.benchmark(group="micro")
def test_step_series_stats_speed(benchmark):
    """Time-weighted stats over a 10k-point load trace."""
    series = StepSeries()
    rng = RandomStreams(1).stream("series")
    values = rng.integers(0, 15, size=10_000).astype(float) * 1000.0
    for i, v in enumerate(values):
        series.record(float(i * 10), float(v))

    def stats():
        return (series.mean(0.0, 1e5), series.std(0.0, 1e5),
                series.maximum(0.0, 1e5), series.max_step(0.0, 1e5))

    mean, std, peak, step = benchmark(stats)
    assert 0 < mean < 15000
    assert peak <= 14000.0


@pytest.mark.benchmark(group="micro")
def test_csma_medium_throughput(benchmark):
    """Back-to-back frame transmissions through the interference model.

    A single round-robin sender keeps the channel collision-free so the
    bench isolates the medium's bookkeeping cost per frame.
    """
    streams = RandomStreams(5)
    positions = np.column_stack([np.arange(10) * 12.0, np.zeros(10)])
    channel = Channel(positions, rng=streams.stream("chan"))

    def run():
        sim = Simulator()
        medium = CsmaMedium(sim, channel, streams.stream("medium"))
        delivered = []
        for node in range(10):
            medium.register(node, lambda f, r: delivered.append(f))

        def sender(sim):
            for seq in range(200):
                src = seq % 9
                frame = Frame(source=src, destination=src + 1,
                              payload=None, payload_bytes=20, sequence=seq)
                yield from medium.transmit(src, frame)
                yield sim.timeout(0.001)

        sim.spawn(sender(sim))
        sim.run()
        return len(delivered)

    delivered = benchmark(run)
    assert delivered >= 190  # strong adjacent links, no collisions
