"""ABL-SLOTS — sensitivity to the minDCD/maxDCP working point.

The paper fixes 15/30 minutes; this sweep shows the mechanism is not an
artefact of that ratio (more slack -> more smoothing headroom).
"""

import pytest

from repro.experiments import slots_sweep
from repro.sim.units import MINUTE

HORIZON = 180 * MINUTE
SPECS = ((15, 30), (10, 30), (15, 45), (5, 30))


@pytest.mark.benchmark(group="ablations")
def test_slots_sweep(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: slots_sweep(specs=SPECS, seeds=(1, 2), horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    for spec in SPECS:
        assert data[spec]["peak_reduction_pct"] > 0.0, spec
        assert data[spec]["std_reduction_pct"] > 0.0, spec
    # smaller duty fraction (5/30) leaves more staggering headroom than
    # the paper's 15/30 point
    assert data[(5, 30)]["peak_reduction_pct"] >= \
        data[(15, 30)]["peak_reduction_pct"] - 5.0

    for spec in SPECS:
        benchmark.extra_info[f"peak_red_{spec[0]}_{spec[1]}"] = round(
            data[spec]["peak_reduction_pct"], 1)
