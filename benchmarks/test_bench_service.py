"""SERVICE — submit→result latency through the durable job queue.

The PR 6 service-plane numbers for ``BENCH_PR6.json`` (group
``service``):

* **cold** — submit a spec, have a worker lease + execute + publish,
  fetch the result: the full queue round trip including one real
  execution (one round; the execution dominates and is what PR 5
  already tracks);
* **warm** — re-submit the identical spec and fetch: the dedup fast
  path that must answer from the artifact store in milliseconds
  without touching the queue.
"""

import pytest

from repro.api import ControlSpec, ExperimentSpec, ScenarioSpec
from repro.service import ServiceClient, ServiceStore, WorkerDaemon
from repro.sim.units import MINUTE

HORIZON = 45 * MINUTE


def _spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="service-latency", scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(3,), until_s=HORIZON)


@pytest.mark.benchmark(group="service")
def test_cold_submit_to_result(benchmark, tmp_path):
    store = ServiceStore(tmp_path / "store")
    client = ServiceClient(store)
    daemon = WorkerDaemon(store)

    def cold_round_trip():
        job_id = client.submit(_spec())
        report = daemon.step()
        assert report is not None and report.state == "done"
        return client.result(job_id, timeout=0)

    result = benchmark.pedantic(cold_round_trip, rounds=1, iterations=1)
    assert result.provenance.spec_hash == client.submit(_spec())
    benchmark.extra_info["includes_execution"] = True


@pytest.mark.benchmark(group="service")
def test_warm_submit_to_result(benchmark, tmp_path):
    store = ServiceStore(tmp_path / "store")
    client = ServiceClient(store)
    job_id = client.submit(_spec())
    WorkerDaemon(store).step()  # warm the artifact store once

    def warm_round_trip():
        assert client.submit(_spec()) == job_id
        return client.result(job_id, timeout=0)

    result = benchmark(warm_round_trip)
    assert result.provenance.spec_hash == job_id
    # The warm path never queues: the one journal lease is the warm-up.
    leases = [event for event in store.queue().journal_events()
              if event["event"] == "lease"]
    assert len(leases) == 1
    benchmark.extra_info["includes_execution"] = False
