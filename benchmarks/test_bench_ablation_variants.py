"""ABL-VARIANTS — scheduler placement variants + SPOF comparison.

Stagger-with-full-period-latitude is the primary mode; the grid variant
synchronises switching at slot boundaries and the strict-deferral variant
halves the smoothing headroom.  Also regenerates the single-point-of-
failure comparison the introduction argues from.
"""

import pytest

from repro.experiments import scheduler_variants, spof_comparison
from repro.sim.units import MINUTE

HORIZON = 180 * MINUTE


@pytest.mark.benchmark(group="ablations")
def test_scheduler_variants(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: scheduler_variants(seeds=(1, 2), horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    for variant in ("stagger/period", "stagger/strict", "grid"):
        assert data[variant]["peak_reduction_pct"] > 0.0, variant
    # the primary mode smooths at least as well as the grid variant
    assert data["stagger/period"]["std_kw"] <= data["grid"]["std_kw"] + 0.2
    # strict deferral never waits longer than period deferral allows
    assert data["stagger/strict"]["wait_min"] <= \
        data["stagger/period"]["wait_min"] + 1e-6

    for variant, row in data.items():
        if variant == "uncoordinated":
            continue
        benchmark.extra_info[variant.replace("/", "_")] = round(
            row["peak_reduction_pct"], 1)


@pytest.mark.benchmark(group="ablations")
def test_spof(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: spof_comparison(fail_at=60 * MINUTE, seed=3,
                                horizon=240 * MINUTE),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    assert data["centralized"]["admitted_after_failure"] == 0.0
    assert data["coordinated"]["admitted_after_failure"] > 0.95
    benchmark.extra_info["coordinated_admitted_pct"] = round(
        100 * data["coordinated"]["admitted_after_failure"], 1)
