"""ABL-LOSS — robustness of coordination to radio-channel degradation.

Concurrent-flood dissemination stays near-perfect until the topology
approaches partition, so the sweep walks the path-loss exponent across
that cliff.  DIs always see their own requests, so admission never
stalls; coordination quality degrades gracefully instead of collapsing.
"""

import pytest

from repro.experiments import loss_sweep
from repro.sim.units import MINUTE

HORIZON = 180 * MINUTE
EXPONENTS = (3.5, 4.3, 4.4, 4.45)


@pytest.mark.benchmark(group="ablations")
def test_loss_sweep(benchmark, record_figure):
    figure = benchmark.pedantic(
        lambda: loss_sweep(exponents=EXPONENTS, seeds=(1, 2),
                           horizon=HORIZON),
        rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    # The channel genuinely degrades across the sweep...
    assert data[EXPONENTS[-1]]["flood_delivery"] < 0.95
    assert data[EXPONENTS[0]]["flood_delivery"] > 0.99
    # ...yet decentralized self-admission keeps working everywhere.
    for exponent in EXPONENTS:
        assert data[exponent]["admitted_fraction"] > 0.95, exponent
    # Coordination quality degrades gracefully: even at the cliff, the
    # peak stays below the uncoordinated level (~13.6 kW at this rate).
    for exponent in EXPONENTS:
        assert data[exponent]["peak_kw"] <= 13.0

    benchmark.extra_info["delivery_at_default"] = round(
        data[EXPONENTS[0]]["flood_delivery"], 4)
    benchmark.extra_info["delivery_at_cliff"] = round(
        data[EXPONENTS[-1]]["flood_delivery"], 4)
