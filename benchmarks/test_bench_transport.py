"""Per-home result transport at N=200 homes, via the spec API.

The ROADMAP flags per-home pickle transport as the scaling bottleneck
for very large fleets ("fine at N=20, measure at N=500").  This bench is
the measured baseline the shared-memory/batched-transport work will be
judged against: it runs a 200-home neighborhood through
``repro.api.run`` and measures the ``portable()`` pickle path every
worker result crosses a process boundary on — bytes per home, total
payload, serialize/deserialize wall time — and records them (plus the
regenerating spec hash) in ``benchmarks/results/transport-n200.txt``.

A 120-minute horizon at ideal CP fidelity keeps the bench inside the
tier-1 budget; payload sizes scale with requests and series length, so
the recorded spec pins the exact configuration future runs must reuse
for a fair comparison.
"""

import pickle
import time

import numpy as np
import pytest

from repro.api import (
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ScenarioSpec,
    run,
)
from repro.experiments.figures import FigureData
from repro.sim.units import MINUTE

N_HOMES = 200
HORIZON = 120 * MINUTE
JOBS = 4

SPEC = ExperimentSpec(
    name="transport-n200", kind="neighborhood",
    scenario=ScenarioSpec(horizon_s=HORIZON),
    control=ControlSpec(cp_fidelity="ideal"),
    seeds=(1,),
    fleet=FleetPlan(homes=N_HOMES, mix="suburb"))


def measure_transport() -> FigureData:
    """Run the fleet and measure the per-home pickle transport path."""
    t_run = time.perf_counter()
    result = run(SPEC, jobs=JOBS)
    run_s = time.perf_counter() - t_run
    homes = result.neighborhood.homes

    t_ser = time.perf_counter()
    payloads = [pickle.dumps(home.portable(),
                             protocol=pickle.HIGHEST_PROTOCOL)
                for home in homes]
    serialize_s = time.perf_counter() - t_ser
    t_de = time.perf_counter()
    for payload in payloads:
        pickle.loads(payload)
    deserialize_s = time.perf_counter() - t_de

    sizes = np.array([len(payload) for payload in payloads])
    data = {
        "n_homes": len(homes),
        "horizon_min": HORIZON / MINUTE,
        "jobs": JOBS,
        "spec_hash": result.provenance.spec_hash,
        "total_mb": float(sizes.sum()) / 1e6,
        "mean_kb": float(sizes.mean()) / 1e3,
        "p95_kb": float(np.percentile(sizes, 95)) / 1e3,
        "max_kb": float(sizes.max()) / 1e3,
        "serialize_s": serialize_s,
        "deserialize_s": deserialize_s,
        "run_s": run_s,
        "transport_share_pct": 100.0 * (serialize_s + deserialize_s)
        / run_s,
    }
    from repro.analysis.report import format_table
    text = format_table(
        ["metric", "value"],
        [["homes", data["n_homes"]],
         ["horizon", f"{data['horizon_min']:.0f} min (ideal CP)"],
         ["fleet run wall time", f"{run_s:.2f} s ({JOBS} jobs)"],
         ["total portable payload", f"{data['total_mb']:.2f} MB"],
         ["mean per-home payload", f"{data['mean_kb']:.1f} kB"],
         ["p95 per-home payload", f"{data['p95_kb']:.1f} kB"],
         ["max per-home payload", f"{data['max_kb']:.1f} kB"],
         ["pickle serialize (200 homes)", f"{serialize_s * 1e3:.0f} ms"],
         ["pickle deserialize (200 homes)",
          f"{deserialize_s * 1e3:.0f} ms"],
         ["transport share of run", f"{data['transport_share_pct']:.1f}%"],
         ["spec hash", data["spec_hash"][:12]]],
        title=f"Per-home result transport baseline (N={N_HOMES}, "
              "Result.portable pickle path)")
    text += ("\nbaseline for the ROADMAP shared-memory/batched-transport "
             "item; rerun with the same spec for a fair comparison")
    return FigureData(figure_id="transport-n200", text=text, data=data)


@pytest.mark.benchmark(group="transport")
def test_transport_baseline_n200(benchmark, record_figure):
    figure = benchmark.pedantic(measure_transport, rounds=1, iterations=1)
    record_figure(figure)
    data = figure.data

    assert data["n_homes"] == N_HOMES
    # The whole fleet's payload must stay well under a memory-pressure
    # threshold, and every home must actually survive the round trip.
    assert data["total_mb"] < 100.0
    assert data["mean_kb"] > 0.0
    benchmark.extra_info["total_mb"] = round(data["total_mb"], 2)
    benchmark.extra_info["mean_kb"] = round(data["mean_kb"], 1)
    benchmark.extra_info["transport_share_pct"] = round(
        data["transport_share_pct"], 1)
