#!/usr/bin/env python3
"""The FlockLab-style testbed study: protocols first, then the system.

Reproduces the paper's experimental methodology end to end:

1. measure the Communication Plane itself at flood-slot fidelity
   (Figure 1: MiniCast rounds every 2 s — latency, delivery, sync,
   energy);
2. compare it with the traditional asynchronous stack on the same
   26-node topology (the introduction's motivation);
3. run the full 350-minute load-management experiment over the
   calibrated CP and report Figure-2 statistics.

Usage::

    python examples/testbed_scenario.py [--quick]
"""

import sys

from repro.analysis import format_table, percent_reduction
from repro.core import HanConfig, execute_config
from repro.experiments import st_vs_at, trace_cp
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario


def main() -> None:
    quick = "--quick" in sys.argv

    # -- 1. the Communication Plane, slot by slot -------------------------
    trace = trace_cp(rounds=5 if quick else 25, seed=1)
    print(trace.text)
    print()

    # -- 2. ST vs AT on the same testbed ----------------------------------
    comparison = st_vs_at(seed=1, report_minutes=2.0 if quick else 10.0)
    print(comparison.text)
    print()

    # -- 3. the load-management experiment over the calibrated CP ---------
    horizon = 90 * MINUTE if quick else None
    scenario = paper_scenario("high")
    rows = []
    stats = {}
    for policy in ("uncoordinated", "coordinated"):
        result = execute_config(
            HanConfig(scenario=scenario, policy=policy,
                      cp_fidelity="round", seed=1), until=horizon)
        end = horizon if horizon else scenario.horizon
        stats[policy] = result.stats(end=end)
        waits = result.waiting_times()
        mean_wait = sum(waits) / len(waits) / MINUTE if waits else 0.0
        rows.append([policy, stats[policy].peak_kw, stats[policy].mean_kw,
                     stats[policy].std_kw, mean_wait,
                     result.cp_stats.rounds_total])
    print(format_table(
        ["policy", "peak kW", "mean kW", "std kW", "wait min",
         "CP rounds"],
        rows, title="350-minute run over the calibrated CP "
                    "(26-node flocklab26)"))
    print(f"\npeak reduction: "
          f"{percent_reduction(stats['uncoordinated'].peak_kw, stats['coordinated'].peak_kw):.1f}%  "
          f"variation reduction: "
          f"{percent_reduction(stats['uncoordinated'].std_kw, stats['coordinated'].std_kw):.1f}%")


if __name__ == "__main__":
    main()
