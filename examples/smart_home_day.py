#!/usr/bin/env python3
"""A realistic smart home day: catalog appliances, thermal physics, tariffs.

Goes beyond the paper's synthetic 26 x 1 kW fleet:

* Type-2 appliances come from the catalog (ACs, water heater, pool pump,
  fridge) with their real power ratings;
* the duty-cycle constraints are *derived* from a first-order thermal
  model of a hot afternoon (the paper's §II observation that maxDCP
  shrinks as the thermal load grows);
* Type-1 devices (TV, lighting, microwave, hair dryer) add an
  uncontrollable background load;
* requests follow a bursty MMPP (calm/busy) process — evenings are busy;
* an evening-peak time-of-use tariff prices both load profiles.

Usage::

    python examples/smart_home_day.py [--quick]
"""

import sys
from dataclasses import replace

from repro.analysis import format_table, percent_reduction, sparkline
from repro.core import HanConfig, HanSystem
from repro.han import (
    ThermalParams,
    TYPE1_CATALOG,
    derive_duty_spec,
    evening_peak_tariff,
    lookup,
)
from repro.han.appliance import Type1Appliance
from repro.sim.units import HOUR, MINUTE
from repro.workloads import Scenario


def derive_constraints() -> None:
    """Show the thermal derivation of the scheduling constraints."""
    # A well-insulated room cooled by a 1.5 kW(el) AC moving ~3 kW(th).
    room = ThermalParams(capacitance_j_per_k=3.0e6,
                         resistance_k_per_w=0.009,
                         appliance_heat_w=-3000.0)
    rows = []
    for ambient in (30.0, 35.0, 40.0):
        spec = derive_duty_spec(room, target_c=24.0, ambient_c=ambient,
                                min_dcd=15 * MINUTE,
                                max_period_cap=2 * HOUR)
        rows.append([f"{ambient:.0f} C", f"{spec.min_dcd / MINUTE:.0f} min",
                     f"{spec.max_dcp / MINUTE:.0f} min"])
    print(format_table(
        ["ambient", "minDCD", "maxDCP"], rows,
        title="Thermal derivation (paper §II: hotter day -> shorter "
              "maxDCP)"))
    print()


def background_load(system: HanSystem, quick: bool) -> None:
    """Type-1 devices: instant-start, not schedulable, just metered."""
    sim = system.sim
    schedule = [
        ("television", 18.5 * HOUR, 3.0 * HOUR),
        ("lighting", 18.0 * HOUR, 5.0 * HOUR),
        ("microwave", 19.0 * HOUR, 10 * MINUTE),
        ("hair_dryer", 7.5 * HOUR, 8 * MINUTE),
        ("ceiling_fan", 13.0 * HOUR, 6.0 * HOUR),
    ]
    for i, (name, start, duration) in enumerate(schedule):
        entry = TYPE1_CATALOG[name]
        appliance = Type1Appliance(sim, 1000 + i, name, entry.power_w,
                                   meter=system.meter.gauge)

        def run(sim, appliance=appliance, start=start, duration=duration):
            if start > sim.now:
                yield sim.timeout(start - sim.now)
            yield from appliance.run_for(duration)

        sim.spawn(run(sim), name=f"type1-{name}")


def main() -> None:
    quick = "--quick" in sys.argv
    derive_constraints()

    horizon = (6 if quick else 24) * HOUR
    # The schedulable fleet: two ACs, a water heater, a pool pump, two
    # fridges and an EV charger — modelled at the paper's 15/30 spec
    # (the derivation above shows that is the right hot-day ballpark).
    fleet_power = [lookup("air_conditioner").power_w,
                   lookup("air_conditioner").power_w,
                   lookup("water_heater").power_w,
                   lookup("pool_pump").power_w,
                   lookup("fridge").power_w,
                   lookup("fridge").power_w,
                   lookup("ev_charger").power_w]
    scenario = Scenario(name="smart-home-day",
                        n_devices=len(fleet_power),
                        device_power_w=1.0,  # replaced per device below
                        arrival_rate_per_hour=6.0,
                        arrival_kind="mmpp",
                        horizon=horizon)

    tariff = evening_peak_tariff(base=0.12, peak=0.38)
    results = {}
    for policy in ("uncoordinated", "coordinated"):
        config = HanConfig(scenario=scenario, policy=policy,
                           cp_fidelity="ideal", seed=11,
                           topology_name="home")
        system = HanSystem(config)
        for device_id, power in enumerate(fleet_power):
            system.appliances[device_id].power_w = power
        background_load(system, quick)
        results[policy] = system.run(until=horizon)

    rows = []
    for policy, result in results.items():
        stats = result.stats(end=horizon)
        cost = tariff.cost(result.load_w, 0.0, horizon)
        rows.append([policy, stats.peak_kw, stats.mean_kw, stats.std_kw,
                     stats.energy_kwh, f"${cost:.2f}"])
    print(format_table(
        ["policy", "peak kW", "mean kW", "std kW", "kWh", "TOU cost"],
        rows, title=f"One {'(quick) ' if quick else ''}day, catalog fleet "
                    "+ Type-1 background"))

    print()
    for policy, result in results.items():
        _t, values = result.load_w.sample_grid(0.0, horizon, 5 * MINUTE)
        print(f"{policy:>14}: {sparkline(list(values), width=72)}")

    with_stats = results["coordinated"].stats(end=horizon)
    wo_stats = results["uncoordinated"].stats(end=horizon)
    print(f"\npeak reduction {percent_reduction(wo_stats.peak_kw, with_stats.peak_kw):.1f}%, "
          f"variation reduction {percent_reduction(wo_stats.std_kw, with_stats.std_kw):.1f}% "
          "on a heterogeneous fleet with background load")


if __name__ == "__main__":
    main()
