#!/usr/bin/env python3
"""Three architectures, one failure: why decentralized wins.

Runs the same workload under

* **uncoordinated** duty cycling (the paper's baseline),
* a **centralized** scheduler (the classic HAN architecture, here with a
  zero-latency transport — its best case), and
* the paper's **coordinated** decentralized scheme,

then kills one node halfway through: the controller for the centralized
system, an ordinary DI for the decentralized one.

Usage::

    python examples/peak_shaving_comparison.py [--quick]
"""

import sys

from repro.analysis import format_table
from repro.core import HanConfig, HanSystem
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario


def run_with_failure(policy: str, fail_at: float, horizon: float,
                     seed: int = 3):
    config = HanConfig(scenario=paper_scenario("high"), policy=policy,
                       cp_fidelity="ideal" if policy == "centralized"
                       else "round", seed=seed)
    system = HanSystem(config)

    if policy == "centralized":
        def kill(sim):
            yield sim.timeout(fail_at)
            system.controller.fail()
            print(f"  t={sim.now / MINUTE:.0f} min: controller died")
        system.sim.spawn(kill(system.sim))
    elif policy == "coordinated":
        def kill(sim):
            yield sim.timeout(fail_at)
            system.cp.fail_node(0)
            print(f"  t={sim.now / MINUTE:.0f} min: DI 0 died")
        system.sim.spawn(kill(system.sim))

    return system.run(until=horizon)


def main() -> None:
    quick = "--quick" in sys.argv
    horizon = (150 if quick else 350) * MINUTE
    fail_at = horizon / 2

    rows = []
    for policy in ("uncoordinated", "centralized", "coordinated"):
        print(f"running {policy} ...")
        result = run_with_failure(policy, fail_at, horizon)
        stats = result.stats(end=horizon)
        before = [r for r in result.requests if r.arrival_time < fail_at]
        after = [r for r in result.requests
                 if fail_at <= r.arrival_time < horizon - 35 * MINUTE
                 and r.device_id != 0]
        admitted_after = sum(1 for r in after if r.admitted_at is not None)
        rows.append([
            policy, stats.peak_kw, stats.std_kw,
            f"{sum(1 for r in before if r.admitted_at)}/{len(before)}",
            f"{admitted_after}/{len(after)}",
        ])

    print()
    print(format_table(
        ["policy", "peak kW", "std kW", "admitted before failure",
         "admitted after failure"],
        rows,
        title=f"Peak shaving + failure at t={fail_at / MINUTE:.0f} min"))
    print("\nThe centralized architecture stops admitting the moment its "
          "controller dies;\nthe decentralized fleet keeps operating "
          "(only the dead DI's own device is lost).")


if __name__ == "__main__":
    main()
