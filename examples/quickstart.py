#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline comparison in ~20 lines.

Describes the paper's evaluation scenario (26 x 1 kW Type-2 devices,
Poisson requests at 30/hour, minDCD 15 min, maxDCP 30 min, 350 minutes)
as one declarative spec per policy, runs both through the unified
``repro.api.run`` front door and prints the Figure-2 style summary plus
the provenance hash that stamps every exported artefact.

Usage::

    python examples/quickstart.py [--quick]
"""

import sys

from repro.api import ControlSpec, ExperimentSpec, run
from repro.analysis import format_table, percent_reduction, sparkline
from repro.sim.units import MINUTE


def main() -> None:
    quick = "--quick" in sys.argv
    horizon = 120 * MINUTE if quick else None  # None = full 350 min

    results = {}
    for policy in ("uncoordinated", "coordinated"):
        spec = ExperimentSpec(
            name=f"quickstart-{policy}",
            control=ControlSpec(policy=policy, cp_fidelity="round"),
            seeds=(1,), until_s=horizon)
        results[policy] = run(spec)

    scenario = results["coordinated"].runs[0].config.scenario
    end = horizon if horizon else scenario.horizon
    stats = {policy: result.stats()[0]
             for policy, result in results.items()}

    rows = [[policy, s.peak_kw, s.mean_kw, s.std_kw, s.max_step_kw,
             s.energy_kwh]
            for policy, s in stats.items()]
    print(format_table(
        ["policy", "peak kW", "mean kW", "std kW", "max step kW", "kWh"],
        rows, title=f"Paper scenario ({scenario.name}), seed 1"))

    print()
    for policy, result in results.items():
        _t, values = result.runs[0].load_w.sample_grid(0.0, end, MINUTE)
        print(f"{policy:>14}: {sparkline(list(values))}")

    peak_cut = percent_reduction(stats["uncoordinated"].peak_kw,
                                 stats["coordinated"].peak_kw)
    std_cut = percent_reduction(stats["uncoordinated"].std_kw,
                                stats["coordinated"].std_kw)
    print(f"\npeak load reduced by {peak_cut:.1f}% "
          f"(paper: up to 50%), load variation reduced by {std_cut:.1f}% "
          f"(paper: up to 58%)")
    print("spec hashes:",
          ", ".join(f"{p} {r.provenance.short_hash}"
                    for p, r in results.items()))


if __name__ == "__main__":
    main()
