#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline comparison in ~20 lines.

Runs the paper's evaluation scenario (26 x 1 kW Type-2 devices, Poisson
requests at 30/hour, minDCD 15 min, maxDCP 30 min, 350 minutes) once with
the collaborative scheduler and once without, then prints the Figure-2
style summary.

Usage::

    python examples/quickstart.py [--quick]
"""

import sys

from repro import HanConfig, run_experiment
from repro.analysis import format_table, percent_reduction, sparkline
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario


def main() -> None:
    quick = "--quick" in sys.argv
    horizon = 120 * MINUTE if quick else None  # None = full 350 min
    scenario = paper_scenario("high")

    results = {}
    for policy in ("uncoordinated", "coordinated"):
        config = HanConfig(scenario=scenario, policy=policy,
                           cp_fidelity="round", seed=1)
        results[policy] = run_experiment(config, until=horizon)

    end = horizon if horizon else scenario.horizon
    stats = {policy: result.stats(end=end)
             for policy, result in results.items()}

    rows = [[policy, s.peak_kw, s.mean_kw, s.std_kw, s.max_step_kw,
             s.energy_kwh]
            for policy, s in stats.items()]
    print(format_table(
        ["policy", "peak kW", "mean kW", "std kW", "max step kW", "kWh"],
        rows, title=f"Paper scenario ({scenario.name}), seed 1"))

    print()
    for policy, result in results.items():
        _t, values = result.load_w.sample_grid(0.0, end, MINUTE)
        print(f"{policy:>14}: {sparkline(list(values))}")

    peak_cut = percent_reduction(stats["uncoordinated"].peak_kw,
                                 stats["coordinated"].peak_kw)
    std_cut = percent_reduction(stats["uncoordinated"].std_kw,
                                stats["coordinated"].std_kw)
    print(f"\npeak load reduced by {peak_cut:.1f}% "
          f"(paper: up to 50%), load variation reduced by {std_cut:.1f}% "
          f"(paper: up to 58%)")


if __name__ == "__main__":
    main()
