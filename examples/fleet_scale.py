#!/usr/bin/env python3
"""Fleet scale: a 500-home sharded, coordinated neighborhood, end to end.

Builds the neighborhood declaratively (one ``ExperimentSpec``), runs it
through the fleet-scale execution engine — the fleet is lowered into
per-shard sub-specs, each worker runs a whole shard and pre-reduces it
locally, per-home series come back as one batched (shared-memory when
available) frame per shard — negotiates cross-home phase offsets on the
feeder collaboration plane, and prints the feeder report plus the
execution plan that produced it.

Results are bit-identical for every ``(shard_size, jobs, transport)``
combination; sharding only changes how fast the answer arrives.

Usage::

    python examples/fleet_scale.py [--quick]

``--quick`` (what CI's docs job runs) scales the fleet down to 80 homes
and a 30-minute window; the default is the full 500-home, 2-hour run.
"""

import sys
import time

from repro.api import ControlSpec, ExperimentSpec, FleetPlan, \
    ScenarioSpec, run
from repro.api.compile import compile_shards
from repro.sim.units import MINUTE


def main() -> None:
    quick = "--quick" in sys.argv
    homes = 80 if quick else 500
    horizon = (30 if quick else 120) * MINUTE

    spec = ExperimentSpec(
        name=f"fleet-scale-{homes}", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=horizon),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1,),
        fleet=FleetPlan(homes=homes, mix="suburb",
                        coordination="feeder"))

    shards = compile_shards(spec)
    plan = "per-home fan-out" if shards is None else \
        f"{len(shards)} shards x ~{shards[0].fleet.n_homes} homes"
    print(f"executing {homes} homes ({plan}) ...")

    started = time.perf_counter()
    result = run(spec)
    elapsed = time.perf_counter() - started

    neighborhood = result.neighborhood
    stats = neighborhood.feeder_stats()
    comparison = neighborhood.comparison()
    print(f"\nwall time: {elapsed:.1f} s "
          f"({neighborhood.fleet.total_devices} devices, "
          f"{neighborhood.total_requests()} requests)")
    print(f"coincident peak: {stats.coincident_peak_kw:.1f} kW, "
          f"diversity factor {stats.diversity_factor:.3f}")
    if comparison is not None:
        print(f"coordination uplift: {comparison.diversity_uplift:.3f}x "
              f"diversity, {comparison.peak_reduction_pct:.1f}% peak "
              f"reduction, {comparison.energy_drift_pct:.2e}% energy "
              f"drift")
    print(f"provenance: spec {result.provenance.short_hash} "
          f"(repro {result.provenance.code_version})")


if __name__ == "__main__":
    main()
