"""FloodMedium (ST reception model) and CsmaMedium (AT continuous medium)."""

import numpy as np
import pytest

from repro.radio import Channel, CsmaMedium, FloodMedium, Frame
from repro.radio.packet import BROADCAST
from repro.sim import RandomStreams, Simulator


def line_channel(distances, **kwargs):
    xs = np.concatenate([[0.0], np.cumsum(distances)])
    positions = np.column_stack([xs, np.zeros_like(xs)])
    return Channel(positions, **kwargs)


@pytest.fixture
def streams():
    return RandomStreams(9)


# ---------------------------------------------------------------------------
# FloodMedium
# ---------------------------------------------------------------------------

def test_flood_reception_strong_link(streams):
    channel = line_channel([10.0])
    medium = FloodMedium(channel, streams.stream("f"))
    assert medium.reception_probability(1, [0], 40) > 0.999


def test_flood_reception_out_of_range(streams):
    channel = line_channel([500.0])
    medium = FloodMedium(channel, streams.stream("f"))
    assert medium.reception_probability(1, [0], 40) == 0.0


def test_flood_no_senders_no_reception(streams):
    channel = line_channel([10.0])
    medium = FloodMedium(channel, streams.stream("f"))
    assert medium.reception_probability(1, [], 40) == 0.0


def test_synchronized_senders_combine_power(streams):
    """Two synchronized senders must not be worse than the best alone
    (modulo the CI derating factor)."""
    channel = line_channel([35.0, 10.0, 10.0])  # receivers around node 0
    medium = FloodMedium(channel, streams.stream("f"))
    single = medium.reception_probability(0, [1], 40)
    double = medium.reception_probability(0, [1, 2], 40)
    derating = channel.config.ci_derating
    assert double >= single * derating - 1e-9


def test_ci_derating_applies(streams):
    channel = line_channel([5.0, 5.0, 5.0])
    medium = FloodMedium(channel, streams.stream("f"))
    # At saturation PRR=1, so probability equals the derating product.
    three = medium.reception_probability(0, [1, 2, 3], 40)
    assert three == pytest.approx(channel.config.ci_derating ** 2)


def test_flood_slot_returns_receivers(streams):
    channel = line_channel([10.0, 10.0])
    medium = FloodMedium(channel, streams.stream("f"))
    received = medium.flood_slot([0], [1, 2], 40)
    assert 1 in received  # 10 m: essentially certain


# ---------------------------------------------------------------------------
# CsmaMedium
# ---------------------------------------------------------------------------

def deliver_one(sim, medium, src, frame):
    def proc(sim):
        yield from medium.transmit(src, frame)
    sim.spawn(proc(sim))


def test_csma_unicast_delivery(streams):
    channel = line_channel([15.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(1, lambda frame, rssi: got.append((frame.payload, rssi)))
    frame = Frame(source=0, destination=1, payload="hello", payload_bytes=10)
    deliver_one(sim, medium, 0, frame)
    sim.run()
    assert len(got) == 1
    assert got[0][0] == "hello"
    assert got[0][1] == channel.rx_power_dbm(0, 1)


def test_csma_address_filtering(streams):
    channel = line_channel([15.0, 15.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(1, lambda f, r: got.append(1))
    medium.register(2, lambda f, r: got.append(2))
    frame = Frame(source=0, destination=2, payload=None, payload_bytes=4)
    deliver_one(sim, medium, 0, frame)
    sim.run()
    assert got == [2]


def test_csma_broadcast_reaches_neighbours(streams):
    channel = line_channel([15.0, 15.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    for node in (1, 2):
        medium.register(node, lambda f, r, n=node: got.append(n))
    frame = Frame(source=0, destination=BROADCAST, payload=None,
                  payload_bytes=4)
    deliver_one(sim, medium, 0, frame)
    sim.run()
    assert sorted(got) == [1, 2]


def test_csma_collision_destroys_both(streams):
    """Two equidistant simultaneous senders jam each other at the middle."""
    # receiver 0 in the middle, senders 1 and 2 at equal distance
    positions = np.array([[0.0, 0.0], [-20.0, 0.0], [20.0, 0.0]])
    channel = Channel(positions)
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(0, lambda f, r: got.append(f.source))
    f1 = Frame(source=1, destination=0, payload=None, payload_bytes=20)
    f2 = Frame(source=2, destination=0, payload=None, payload_bytes=20)
    deliver_one(sim, medium, 1, f1)
    deliver_one(sim, medium, 2, f2)
    sim.run()
    assert got == []  # SINR ~ 0 dB for both: neither decodes
    assert medium.frames_lost_interference >= 1


def test_csma_capture_strong_wins(streams):
    """A much closer sender survives interference from a distant one."""
    positions = np.array([[0.0, 0.0], [5.0, 0.0], [60.0, 0.0]])
    channel = Channel(positions)
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(0, lambda f, r: got.append(f.source))
    near = Frame(source=1, destination=0, payload=None, payload_bytes=20)
    far = Frame(source=2, destination=0, payload=None, payload_bytes=20)
    deliver_one(sim, medium, 1, near)
    deliver_one(sim, medium, 2, far)
    sim.run()
    assert got == [1]


def test_half_duplex_no_reception_while_transmitting(streams):
    channel = line_channel([15.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(0, lambda f, r: got.append(f.source))
    medium.register(1, lambda f, r: got.append(f.source))
    # Node 1 transmits a long frame; node 0 sends to node 1 meanwhile.
    long_frame = Frame(source=1, destination=0, payload=None,
                       payload_bytes=100)
    short_frame = Frame(source=0, destination=1, payload=None,
                        payload_bytes=4)

    def overlap(sim):
        deliver_one(sim, medium, 1, long_frame)
        yield sim.timeout(0.0005)
        deliver_one(sim, medium, 0, short_frame)

    sim.spawn(overlap(sim))
    sim.run()
    assert 0 not in got  # node 1 was transmitting: cannot hear node 0


def test_channel_busy_during_transmission(streams):
    # 8 m: inside the CCA carrier-sense range (-77 dBm threshold).
    channel = line_channel([8.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    observations = []

    def observer(sim):
        yield sim.timeout(0.0001)
        observations.append(medium.channel_busy(1))

    frame = Frame(source=0, destination=1, payload=None, payload_bytes=100)
    deliver_one(sim, medium, 0, frame)
    sim.spawn(observer(sim))
    sim.run()
    assert observations == [True]
    assert not medium.channel_busy(1)  # idle after the run


def test_unregistered_node_receives_nothing(streams):
    channel = line_channel([15.0])
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("m"))
    got = []
    medium.register(1, lambda f, r: got.append(f))
    medium.unregister(1)
    frame = Frame(source=0, destination=1, payload=None, payload_bytes=4)
    deliver_one(sim, medium, 0, frame)
    sim.run()
    assert got == []
