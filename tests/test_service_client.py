"""The front door: submit/status/result dedup semantics + HTTP face.

Locks the acceptance criteria of the client layer: concurrent identical
submissions share one execution, warm re-submits answer from the
artifact store without touching the queue, and the ``executor`` plug of
:func:`repro.api.run.run` routes through the service.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.run import run
from repro.api.spec import ControlSpec, ExperimentSpec, ScenarioSpec
from repro.api.validate import SpecError
from repro.service import ServiceClient, ServiceError, ServiceStore, \
    WorkerDaemon
from repro.service.queue import JobQueue
from repro.service.server import make_server
from repro.sim.units import MINUTE

from tests.test_service_worker import result_digest, tiny_spec


@pytest.fixture
def store(tmp_path):
    return ServiceStore(tmp_path / "store")


@pytest.fixture
def client(store):
    return ServiceClient(store)


def test_submit_rejects_invalid_specs(client):
    bad = ExperimentSpec(
        name="bad", scenario=ScenarioSpec(preset="paper-low",
                                          n_devices=0),
        control=ControlSpec(), seeds=(1,))
    with pytest.raises(SpecError):
        client.submit(bad)
    assert client.queue.jobs() == []  # nothing enqueued


def test_status_and_result_of_unknown_job_raise(client):
    with pytest.raises(ServiceError, match="unknown job"):
        client.status("f" * 64)
    with pytest.raises(ServiceError, match="unknown job"):
        client.result("f" * 64, timeout=0)


def test_result_timeout_names_the_state(client):
    job_id = client.submit(tiny_spec())
    with pytest.raises(ServiceError, match="pending"):
        client.result(job_id, timeout=0)


def test_submit_execute_fetch_roundtrip(store, client):
    job_id = client.submit(tiny_spec())
    assert client.status(job_id).state == "pending"
    WorkerDaemon(store).step()
    status = client.status(job_id)
    assert status.state == "done" and status.cached
    fetched = client.result(job_id)
    assert result_digest(fetched) == result_digest(run(tiny_spec()))


def test_warm_resubmit_never_touches_the_queue(store, client, monkeypatch):
    job_id = client.submit(tiny_spec())
    WorkerDaemon(store).step()

    def explode(self, spec, now=None):
        raise AssertionError("warm submit must not reach the queue")

    monkeypatch.setattr(JobQueue, "submit", explode)
    assert client.submit(tiny_spec()) == job_id
    assert client.result(job_id, timeout=0) is not None


def test_resubmit_after_artifact_loss_requeues_for_execution(store, client):
    """A ``done`` job whose artifact vanished must execute again.

    The artifact can disappear while the job record stays ``done`` —
    LRU eviction, or a code-version bump since it was published (the
    store keys artifacts ``(spec_hash, code_version)``).  A re-submit
    must send the job through a worker again; before the requeue hook
    this deadlocked ``result()``: the record said done, the artifact
    never appeared.
    """
    import repro
    job_id = client.submit(tiny_spec())
    WorkerDaemon(store).step()
    baseline = result_digest(client.result(job_id, timeout=0))
    cache = store.cache()
    cache._object_path(cache.key_of(job_id, repro.__version__)).unlink()
    assert client.submit(tiny_spec()) == job_id
    record = client.queue.job(job_id)
    assert record.state == "pending" and record.attempts == 0
    WorkerDaemon(store).step()
    assert result_digest(client.result(job_id, timeout=0)) == baseline


def test_concurrent_identical_submissions_share_one_execution(store):
    spec = tiny_spec(name="raced")
    barrier = threading.Barrier(6)
    ids = []

    def submitter():
        barrier.wait()
        ids.append(ServiceClient(store).submit(spec))

    threads = [threading.Thread(target=submitter) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(ids)) == 1
    # Two workers drain the queue: exactly one lease, one execution.
    WorkerDaemon(store).run_forever(idle_exit_s=0.1, poll_s=0.01)
    WorkerDaemon(store).run_forever(idle_exit_s=0.1, poll_s=0.01)
    queue = store.queue()
    leases = [e for e in queue.journal_events() if e["event"] == "lease"]
    assert len(leases) == 1
    digests = {result_digest(ServiceClient(store).result(ids[0]))
               for _ in range(2)}
    assert len(digests) == 1


def test_failed_job_result_raises_with_error(store, client, monkeypatch):
    import repro.service.worker as worker_module
    job_id = client.submit(tiny_spec())
    monkeypatch.setattr(
        worker_module, "execute_job",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("kaboom")))
    daemon = WorkerDaemon(store, max_attempts=1)
    daemon.step()
    with pytest.raises(ServiceError, match="kaboom"):
        client.result(job_id, timeout=0)


def test_run_executor_service_routes_through_store(store, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_STORE", str(store.root))
    spec = tiny_spec(name="via-executor")
    # Warm the store so executor="service" answers without a daemon.
    job_id = ServiceClient(store).submit(spec)
    WorkerDaemon(store).step()
    via_service = run(spec, executor="service")
    assert via_service.provenance.spec_hash == job_id
    assert result_digest(via_service) == result_digest(run(spec))
    # Any object with run() plugs in directly.
    assert result_digest(run(spec, executor=ServiceClient(store))) == \
        result_digest(run(spec))
    with pytest.raises(TypeError, match="executor"):
        run(spec, executor="teleport")


# -- the HTTP face --------------------------------------------------------

@pytest.fixture
def http(store):
    server = make_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def post_json(url, body):
    request = urllib.request.Request(
        url, data=body.encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def test_http_health_and_unknown_paths(http):
    code, body = get_json(f"{http}/v1/health")
    assert code == 200 and body["ok"]
    assert body["queue"]["pending"] == 0
    with pytest.raises(urllib.error.HTTPError) as caught:
        get_json(f"{http}/v1/nope")
    assert caught.value.code == 404


def test_http_submit_poll_fetch(store, http):
    spec = tiny_spec(name="over-http")
    code, body = post_json(f"{http}/v1/jobs", spec.to_json())
    assert code == 200 and body["state"] == "pending"
    job_id = body["job_id"]
    # Result before any worker ran: 202, poll again.
    request = urllib.request.urlopen(f"{http}/v1/jobs/{job_id}/result")
    assert request.status == 202
    request.close()
    WorkerDaemon(store).step()
    code, body = get_json(f"{http}/v1/jobs/{job_id}")
    assert code == 200 and body["state"] == "done" and body["cached"]
    code, body = get_json(f"{http}/v1/jobs/{job_id}/result")
    assert code == 200
    assert body["spec_hash"] == job_id
    assert "peak" in body["render"]
    # Idempotent re-submit over HTTP: same id, already served hot.
    code, body = post_json(f"{http}/v1/jobs", spec.to_json())
    assert body["job_id"] == job_id and body["cached"]


def test_http_rejects_garbage_and_invalid_specs(http):
    with pytest.raises(urllib.error.HTTPError) as caught:
        post_json(f"{http}/v1/jobs", "{not json")
    assert caught.value.code == 400
    bad = ExperimentSpec(
        name="bad", scenario=ScenarioSpec(preset="paper-low",
                                          n_devices=0),
        control=ControlSpec(), seeds=(1,))
    with pytest.raises(urllib.error.HTTPError) as caught:
        post_json(f"{http}/v1/jobs", bad.to_json())
    assert caught.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as caught:
        get_json(f"{http}/v1/jobs/{'e' * 64}")
    assert caught.value.code == 404
