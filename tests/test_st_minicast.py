"""MiniCast all-to-all rounds and the many-to-one variant."""

import pytest

from repro.radio import EnergyMeter, FloodMedium, flocklab26
from repro.sim import RandomStreams
from repro.st import ManyToOne, MiniCast, MiniCastConfig


@pytest.fixture
def medium():
    streams = RandomStreams(2)
    channel = flocklab26().make_channel(rng=streams.stream("channel"))
    return FloodMedium(channel, streams.stream("floods"))


def test_round_all_to_all_delivery(medium):
    minicast = MiniCast(medium)
    outcome = minicast.run_round(range(26))
    assert outcome.delivery_ratio(list(range(26))) > 0.99


def test_round_reached_semantics(medium):
    minicast = MiniCast(medium)
    outcome = minicast.run_round(range(26))
    # every node trivially "reaches" itself
    assert outcome.reached(5, 5)
    # high-probability pair on this topology
    assert outcome.reached(0, 1)


def test_aggregation_reduces_flood_count(medium):
    one = MiniCast(medium, MiniCastConfig(aggregation=1))
    two = MiniCast(medium, MiniCastConfig(aggregation=2))
    floods_one = len(one.run_round(range(26)).floods)
    floods_two = len(two.run_round(range(26)).floods)
    assert floods_one == 26
    assert floods_two == 13


def test_group_members_share_items(medium):
    """With aggregation 2, a group member's item rides its peer's flood."""
    minicast = MiniCast(medium, MiniCastConfig(aggregation=2))
    outcome = minicast.run_round([0, 1])
    assert outcome.reached(1, 0)  # item of node 1 in node 0's flood group


def test_round_duration_within_period(medium):
    """A 26-node round must fit comfortably inside the 2 s MiniCast period."""
    minicast = MiniCast(medium)
    outcome = minicast.run_round(range(26))
    assert 0.0 < outcome.duration < 1.0


def test_round_duration_estimate_upper_bounds_actual(medium):
    minicast = MiniCast(medium)
    outcome = minicast.run_round(range(26))
    assert minicast.round_duration(26) >= outcome.duration


def test_round_charges_energy(medium):
    minicast = MiniCast(medium)
    meters = {i: EnergyMeter() for i in range(26)}
    outcome = minicast.run_round(range(26), energy=meters)
    for meter in meters.values():
        assert meter.radio_on_time > 0.0
        # nobody is on longer than the round itself
        assert meter.radio_on_time <= outcome.duration + 1e-9


def test_delivery_ratio_single_node(medium):
    minicast = MiniCast(medium)
    outcome = minicast.run_round([0])
    assert outcome.delivery_ratio([0]) == 1.0


def test_many_to_one_collects_everything(medium):
    protocol = ManyToOne(medium)
    outcome = protocol.run_round(range(26), sink=12)
    assert outcome.collected == set(range(26)) - {12}
    assert outcome.informed == set(range(26))


def test_many_to_one_requires_sink_participation(medium):
    protocol = ManyToOne(medium)
    with pytest.raises(ValueError):
        protocol.run_round(range(5), sink=99)
