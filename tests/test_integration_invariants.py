"""Whole-system invariants over full runs.

These are the properties the paper's design promises; they must hold for
every policy, fidelity and seed — not just on average.
"""

import pytest

from repro.core import HanConfig, HanSystem, execute_config
from repro.sim.units import MINUTE
from repro.workloads import Scenario, paper_scenario

HORIZON = 120 * MINUTE


def run(policy, seed=1, fidelity="ideal", scenario=None, **kwargs):
    scenario = scenario or paper_scenario("high")
    config = HanConfig(scenario=scenario, policy=policy,
                       cp_fidelity=fidelity, seed=seed, **kwargs)
    system = HanSystem(config)
    result = system.run(until=HORIZON)
    return system, result


@pytest.mark.parametrize("policy", ["coordinated", "uncoordinated",
                                    "centralized"])
def test_min_dcd_always_respected(policy):
    """No burst is ever shorter than minDCD (hardware constraint)."""
    system, _ = run(policy)
    spec = system.spec
    for appliance in system.appliances.values():
        for record in appliance.history:
            if record.off_at is None:
                continue  # burst still open at horizon
            assert record.duration >= spec.min_dcd - 1e-6


@pytest.mark.parametrize("policy", ["coordinated", "uncoordinated",
                                    "centralized"])
def test_device_bursts_never_overlap(policy):
    """One device runs at most one burst at a time (gap >= minDCD)."""
    system, _ = run(policy)
    spec = system.spec
    for appliance in system.appliances.values():
        ons = [r.on_at for r in appliance.history]
        for earlier, later in zip(ons, ons[1:]):
            assert later - earlier >= spec.min_dcd - 1e-6


def test_multi_cycle_recurrence_is_exactly_one_period():
    """Within one active streak, bursts recur exactly every maxDCP."""
    from dataclasses import replace
    scenario = replace(paper_scenario("low"), demand_cycles=3)
    system, _ = run("coordinated", scenario=scenario)
    spec = system.spec
    for appliance in system.appliances.values():
        ons = [r.on_at for r in appliance.history]
        for earlier, later in zip(ons, ons[1:]):
            gap = later - earlier
            # either the exact recurrence or a later, separate admission
            assert gap >= spec.max_dcp - 1e-6
            if gap < 2 * spec.max_dcp:
                assert gap == pytest.approx(spec.max_dcp)


def test_first_burst_within_max_dcp_of_arrival():
    """The liveness guarantee, end to end (admission adds <= one round).

    Applies to requests that *activate* a device; a request queued behind
    an already-active device is served after the earlier demand (the
    window then applies to the device, which keeps executing every
    period).
    """
    _, result = run("coordinated")
    scenario = result.config.scenario
    for request in result.requests:
        if request.first_burst_at is None or request.extended_existing:
            continue
        wait = request.first_burst_at - request.arrival_time
        assert wait <= scenario.max_dcp + 2.0 + 1e-6


def test_energy_parity_between_policies():
    """Coordination defers load, it must not change the average (paper)."""
    scenario = paper_scenario("high")
    results = {}
    for policy in ("coordinated", "uncoordinated"):
        config = HanConfig(scenario=scenario, policy=policy,
                           cp_fidelity="ideal", seed=1)
        results[policy] = HanSystem(config).run()  # full 350 min
    means = {policy: r.stats().mean_kw for policy, r in results.items()}
    assert means["coordinated"] == pytest.approx(means["uncoordinated"],
                                                 rel=0.08)


def test_metered_energy_matches_appliance_energy():
    system, result = run("coordinated")
    metered = result.load_w.integral(0.0, HORIZON)
    summed = sum(a.energy_joules() for a in system.appliances.values())
    assert metered == pytest.approx(summed, rel=1e-6)


def test_coordinated_load_steps_are_single_device():
    """The "small steps" property on the paper's own workload."""
    _, result = run("coordinated")
    power = result.config.scenario.device_power_w
    assert result.load_w.max_step(0.0, HORIZON) <= power + 1e-6


def test_uncoordinated_batch_steps_stack():
    """Batch arrivals: uncoordinated stacks the whole batch at one instant;
    coordination admits one by one.  New admissions never start
    coincidentally; only recurrence chains of *extended* demand may align,
    so the coordinated step stays far below the batch size."""
    scenario = Scenario(name="batch", arrival_kind="batch", batch_size=5,
                        arrival_rate_per_hour=6.0)
    _, uncoordinated = run("uncoordinated", scenario=scenario)
    _, coordinated = run("coordinated", scenario=scenario)
    power = scenario.device_power_w
    full_horizon = scenario.horizon
    assert uncoordinated.load_w.max_step(0.0, HORIZON) >= 3 * power
    assert coordinated.load_w.max_step(0.0, HORIZON) <= 2 * power + 1e-6


def test_load_never_negative_nor_above_fleet():
    for policy in ("coordinated", "uncoordinated"):
        system, result = run(policy)
        n = result.config.scenario.n_devices
        power = result.config.scenario.device_power_w
        values = [v for _t, v in result.load_w]
        assert all(0.0 <= v <= n * power for v in values)


def test_completed_requests_have_full_history():
    _, result = run("coordinated")
    for request in result.requests:
        if request.completed_at is None:
            continue
        assert request.admitted_at is not None
        assert request.first_burst_at is not None
        assert request.arrival_time <= request.admitted_at \
            <= request.first_burst_at < request.completed_at


def test_round_fidelity_preserves_invariants():
    system, result = run("coordinated", fidelity="round",
                         calibration_rounds=3)
    spec = system.spec
    for appliance in system.appliances.values():
        for record in appliance.history:
            if record.off_at is not None:
                assert record.duration >= spec.min_dcd - 1e-6
    assert result.load_w.max_step(0.0, HORIZON) <= \
        result.config.scenario.device_power_w + 1e-6
