"""Experiment harness: figures, CP trace, ablations (small configs)."""

import pytest

from repro.experiments import (
    compare_policies,
    cp_period_sweep,
    fig2a,
    fig2b,
    fig2c,
    headline_numbers,
    loss_sweep,
    scale_sweep,
    scheduler_variants,
    slots_sweep,
    spof_comparison,
    st_vs_at,
    sweep_rates,
    trace_cp,
)
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario

SHORT = 90 * MINUTE
SEEDS = (1,)


def test_compare_policies_structure():
    outcomes = compare_policies(paper_scenario("low"), seeds=SEEDS,
                                cp_fidelity="ideal", horizon=SHORT)
    assert set(outcomes) == {"coordinated", "uncoordinated"}
    for outcome in outcomes.values():
        assert len(outcome.results) == 1
        mean, std = outcome.metric("peak_kw")
        assert mean >= 0.0 and std == 0.0  # single seed


def test_sweep_rates_keys():
    table = sweep_rates(paper_scenario("low"), rates=[4.0, 18.0],
                        seeds=SEEDS, cp_fidelity="ideal", horizon=SHORT)
    assert set(table) == {4.0, 18.0}


def test_fig2a_structure():
    figure = fig2a(seed=1, cp_fidelity="ideal", horizon=SHORT)
    assert figure.figure_id == "fig2a"
    assert "Figure 2(a)" in figure.text
    assert "with_coordination" in figure.text
    stats = figure.data["stats"]
    assert stats["with_coordination"].peak_kw <= \
        stats["wo_coordination"].peak_kw + 1e-9


def test_fig2b_reduction_positive():
    figure = fig2b(seeds=SEEDS, cp_fidelity="ideal", rates=[18.0, 30.0],
                   horizon=SHORT)
    assert figure.data["best_reduction_pct"] > 0.0
    assert "peak" in figure.text


def test_fig2c_mean_preserved():
    figure = fig2c(seeds=SEEDS, cp_fidelity="ideal", rates=[30.0],
                   horizon=SHORT)
    entry = figure.data["rates"][30.0]
    with_mean = entry["with"][0]
    wo_mean = entry["without"][0]
    assert with_mean == pytest.approx(wo_mean, rel=0.15)


def test_headline_numbers_fields():
    figure = headline_numbers(seeds=SEEDS, cp_fidelity="ideal")
    for key in ("peak_reduction_max_pct", "std_reduction_max_pct",
                "mean_drift_mean_pct"):
        assert key in figure.data
    assert figure.data["peak_reduction_max_pct"] > 0.0


def test_trace_cp_measurements():
    result = trace_cp(rounds=5, seed=1)
    assert result.mean_delivery > 0.99
    assert 0.0 < result.mean_duration_ms < 2000.0
    assert result.energy_per_round_mj > 0.0
    assert 0.0 < result.radio_duty_cycle < 0.5
    assert result.sync_errors_us and max(result.sync_errors_us) < 100.0


def test_cp_period_sweep_latency_grows():
    figure = cp_period_sweep(periods=(2.0, 60.0), seeds=SEEDS,
                             horizon=SHORT)
    assert figure.data[60.0]["admission_latency_s"] > \
        figure.data[2.0]["admission_latency_s"]


def test_loss_sweep_delivery_degrades():
    figure = loss_sweep(exponents=(3.5, 4.45), seeds=SEEDS, horizon=SHORT)
    assert figure.data[4.45]["flood_delivery"] < \
        figure.data[3.5]["flood_delivery"] + 1e-9
    # even a near-partitioned channel must not break self-admission
    assert figure.data[4.45]["admitted_fraction"] > 0.8


def test_scale_sweep_structure():
    figure = scale_sweep(device_counts=(10, 26), seeds=SEEDS,
                         horizon=SHORT)
    assert set(figure.data) == {10, 26}
    for row in figure.data.values():
        assert row["peak_with"] <= row["peak_wo"] + 1e-9


def test_slots_sweep_structure():
    figure = slots_sweep(specs=((15, 30), (10, 30)), seeds=SEEDS,
                         horizon=SHORT)
    assert (15, 30) in figure.data and (10, 30) in figure.data


def test_scheduler_variants_orders_stagger_first():
    figure = scheduler_variants(seeds=SEEDS, horizon=SHORT)
    assert "stagger/period" in figure.data
    assert "grid" in figure.data
    assert figure.data["stagger/period"]["peak_kw"] > 0


def test_st_vs_at_story():
    figure = st_vs_at(seed=1, report_minutes=5.0)
    data = figure.data
    assert data["energy_ratio"] > 3.0          # AT burns far more radio
    assert data["st_delivery"] > 0.99
    assert data["at_storm_delivered"] <= data["at_jittered_delivered"]


def test_spof_centralized_dies_coordinated_survives():
    figure = spof_comparison(fail_at=30 * MINUTE, seed=3,
                             horizon=150 * MINUTE)
    central = figure.data["centralized"]
    coordinated = figure.data["coordinated"]
    # controller death blocks every future admission
    assert central["admitted_after_failure"] == 0.0
    assert central["completion_after_failure"] == 0.0
    # losing one DI leaves the rest of the fleet fully operational
    assert coordinated["admitted_after_failure"] > 0.95
    assert coordinated["completion_after_failure"] > 0.7
