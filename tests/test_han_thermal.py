"""RC thermal models and duty-spec derivation."""

import pytest

from repro.han import ThermalNode, ThermalParams, derive_duty_spec, \
    required_duty_fraction


ROOM = ThermalParams(capacitance_j_per_k=2.0e6, resistance_k_per_w=0.01,
                     appliance_heat_w=2000.0)


def test_params_validation():
    with pytest.raises(ValueError):
        ThermalParams(0.0, 0.01, 100.0)
    with pytest.raises(ValueError):
        ThermalParams(1e6, -1.0, 100.0)


def test_time_constant():
    assert ROOM.time_constant == pytest.approx(20_000.0)


def test_off_node_decays_to_ambient():
    node = ThermalNode(ROOM, initial_temp_c=30.0, ambient_c=10.0)
    node.advance(10 * ROOM.time_constant, appliance_on=False)
    assert node.temperature_c == pytest.approx(10.0, abs=0.01)


def test_on_node_approaches_heated_steady_state():
    node = ThermalNode(ROOM, initial_temp_c=10.0, ambient_c=10.0)
    node.advance(10 * ROOM.time_constant, appliance_on=True)
    # steady state = ambient + Q*R = 10 + 2000*0.01 = 30
    assert node.temperature_c == pytest.approx(30.0, abs=0.01)


def test_advance_is_step_size_independent():
    one_shot = ThermalNode(ROOM, 15.0, ambient_c=5.0)
    one_shot.advance(5000.0, appliance_on=True)
    stepped = ThermalNode(ROOM, 15.0, ambient_c=5.0)
    for i in range(1, 51):
        stepped.advance(i * 100.0, appliance_on=True)
    assert stepped.temperature_c == pytest.approx(one_shot.temperature_c)


def test_time_cannot_go_backwards():
    node = ThermalNode(ROOM, 15.0, ambient_c=5.0)
    node.advance(100.0, appliance_on=False)
    with pytest.raises(ValueError):
        node.advance(50.0, appliance_on=False)


def test_ambient_profile_callable():
    node = ThermalNode(ROOM, 10.0, ambient_c=lambda t: 10.0 + t / 1000.0)
    node.advance(10 * ROOM.time_constant, appliance_on=False)
    assert node.temperature_c > 10.0


def test_required_duty_fraction_balance():
    # hold 20 C above ambient: needs (20/0.01) = 2000 W = full duty
    assert required_duty_fraction(ROOM, 30.0, 10.0) == pytest.approx(1.0)
    # hold 10 C above ambient: half duty
    assert required_duty_fraction(ROOM, 20.0, 10.0) == pytest.approx(0.5)
    # target below ambient for a heater: zero duty
    assert required_duty_fraction(ROOM, 5.0, 10.0) == 0.0


def test_derive_duty_spec_hotter_day_shorter_period():
    """The paper's example: harder thermal load -> smaller maxDCP."""
    cooler = ThermalParams(2.0e6, 0.01, appliance_heat_w=-2000.0)
    mild = derive_duty_spec(cooler, target_c=25.0, ambient_c=35.0,
                            min_dcd=900.0)
    hot = derive_duty_spec(cooler, target_c=25.0, ambient_c=45.0,
                           min_dcd=900.0)
    assert hot.max_dcp < mild.max_dcp
    assert hot.min_dcd == mild.min_dcd == 900.0


def test_derive_duty_spec_no_load_caps_period():
    spec = derive_duty_spec(ROOM, target_c=5.0, ambient_c=10.0,
                            min_dcd=900.0, max_period_cap=7200.0)
    assert spec.max_dcp == 7200.0


def test_derive_duty_spec_overload_clamps_to_min():
    # demands more than the appliance can deliver: duty -> 1, period = minDCD
    spec = derive_duty_spec(ROOM, target_c=40.0, ambient_c=10.0,
                            min_dcd=900.0)
    assert spec.max_dcp == pytest.approx(900.0)


def test_zero_heat_appliance_rejected():
    params = ThermalParams(1e6, 0.01, appliance_heat_w=0.0)
    with pytest.raises(ValueError):
        required_duty_fraction(params, 20.0, 10.0)
