"""Deterministic named RNG streams."""

import numpy as np
import pytest

from repro.sim import RandomStreams, exponential_interarrival


def test_same_seed_same_stream():
    a = RandomStreams(42).stream("x").random(10)
    b = RandomStreams(42).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    streams = RandomStreams(42)
    a = streams.stream("x").random(10)
    b = streams.stream("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random(10)
    b = RandomStreams(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    forward = RandomStreams(7)
    first = forward.stream("a").random(5)
    forward.stream("b").random(5)

    backward = RandomStreams(7)
    backward.stream("b").random(5)
    second = backward.stream("a").random(5)
    assert np.array_equal(first, second)


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("s") is streams.stream("s")


def test_getitem_alias():
    streams = RandomStreams(0)
    assert streams["s"] is streams.stream("s")


def test_child_scoping_isolates():
    streams = RandomStreams(3)
    scoped = streams.child("node-1")
    direct = streams.stream("node-1/phase")
    via_child = scoped.stream("phase")
    assert direct is via_child


def test_nested_child_scopes():
    streams = RandomStreams(3)
    nested = streams.child("a").child("b")
    assert nested.stream("x") is streams.stream("a/b/x")


def test_names_lists_created_streams():
    streams = RandomStreams(0)
    streams.stream("beta")
    streams.stream("alpha")
    assert list(streams.names()) == ["alpha", "beta"]


def test_exponential_interarrival_positive():
    rng = RandomStreams(5).stream("exp")
    gaps = [exponential_interarrival(rng, 2.0) for _ in range(100)]
    assert all(g > 0 for g in gaps)
    # mean should be near 1/rate = 0.5
    assert 0.3 < np.mean(gaps) < 0.8


def test_exponential_interarrival_rejects_bad_rate():
    rng = RandomStreams(5).stream("exp")
    with pytest.raises(ValueError):
        exponential_interarrival(rng, 0.0)
