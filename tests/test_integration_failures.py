"""Failure injection at the system level.

The decentralized design's selling point is that losing nodes degrades the
system proportionally, never totally; these tests crash DIs mid-run and
check the survivors keep every invariant.
"""

import pytest

from repro.core import HanConfig, HanSystem
from repro.sim.units import MINUTE
from repro.workloads import paper_scenario

HORIZON = 150 * MINUTE


def build(policy="coordinated", fidelity="round", seed=5):
    config = HanConfig(scenario=paper_scenario("high"), policy=policy,
                       cp_fidelity=fidelity, seed=seed,
                       calibration_rounds=3)
    return HanSystem(config)


def crash_at(system, node, when):
    def killer(sim):
        yield sim.timeout(when)
        system.cp.fail_node(node)

    system.sim.spawn(killer(system.sim))


def recover_at(system, node, when):
    def medic(sim):
        yield sim.timeout(when)
        system.cp.recover_node(node)

    system.sim.spawn(medic(system.sim))


def test_survivors_keep_admitting_after_di_crash():
    system = build()
    crash_at(system, node=3, when=40 * MINUTE)
    result = system.run(until=HORIZON)
    late = [r for r in result.requests
            if r.arrival_time >= 40 * MINUTE and r.device_id != 3
            and r.arrival_time < HORIZON - 35 * MINUTE]
    assert late, "workload must produce post-crash requests"
    assert all(r.admitted_at is not None for r in late)


def test_crashed_di_requests_stay_pending():
    system = build()
    crash_at(system, node=3, when=10 * MINUTE)
    result = system.run(until=HORIZON)
    dead_requests = [r for r in result.requests
                     if r.device_id == 3
                     and r.arrival_time > 10 * MINUTE + 2.0]
    for request in dead_requests:
        assert request.admitted_at is None


def test_invariants_hold_with_crashes():
    system = build()
    for node, when in ((1, 30 * MINUTE), (7, 60 * MINUTE),
                       (20, 90 * MINUTE)):
        crash_at(system, node, when)
    result = system.run(until=HORIZON)
    spec = system.spec
    for appliance in system.appliances.values():
        for record in appliance.history:
            if record.off_at is not None:
                assert record.duration >= spec.min_dcd - 1e-6
    # survivors' load still moves in small steps
    assert result.load_w.max_step(0.0, HORIZON) <= \
        2 * result.config.scenario.device_power_w + 1e-6


def test_recovered_di_rejoins_coordination():
    system = build()
    crash_at(system, node=3, when=20 * MINUTE)
    recover_at(system, node=3, when=50 * MINUTE)
    result = system.run(until=HORIZON)
    revived = [r for r in result.requests
               if r.device_id == 3
               and 50 * MINUTE + 2.0 < r.arrival_time
               < HORIZON - 35 * MINUTE]
    for request in revived:
        assert request.admitted_at is not None


def test_majority_crash_leaves_minority_functional():
    system = build(seed=9)
    for node in range(13):
        system.cp.fail_node(node)
    result = system.run(until=HORIZON)
    surviving = [r for r in result.requests
                 if r.device_id >= 13
                 and r.arrival_time < HORIZON - 35 * MINUTE]
    assert surviving
    admitted = sum(1 for r in surviving if r.admitted_at is not None)
    assert admitted == len(surviving)


def test_ideal_cp_crash_handling_matches():
    """Failure semantics must not depend on the CP fidelity."""
    outcomes = {}
    for fidelity in ("ideal", "round"):
        system = build(fidelity=fidelity)
        crash_at(system, node=3, when=40 * MINUTE)
        result = system.run(until=HORIZON)
        outcomes[fidelity] = sum(
            1 for r in result.requests if r.admitted_at is not None)
    assert outcomes["ideal"] == outcomes["round"]
