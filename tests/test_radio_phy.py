"""802.15.4 PHY timing and frame model."""

import pytest

from repro.radio import Frame, RadioConfig, frame_airtime
from repro.radio import phy
from repro.radio.packet import BROADCAST


def test_byte_airtime_is_32us():
    assert phy.BYTE_AIRTIME == pytest.approx(32e-6)


def test_frame_airtime_includes_headers():
    # 10-byte PSDU: 5 sync + 1 len + 10 = 16 bytes at 32 us
    assert frame_airtime(10) == pytest.approx(16 * 32e-6)


def test_frame_airtime_max_frame():
    assert frame_airtime(127) == pytest.approx((5 + 1 + 127) * 32e-6)


def test_frame_airtime_rejects_out_of_range():
    with pytest.raises(ValueError):
        frame_airtime(0)
    with pytest.raises(ValueError):
        frame_airtime(128)


def test_ack_airtime():
    assert phy.ack_airtime() == frame_airtime(phy.ACK_PSDU_BYTES)


def test_frame_psdu_accounting():
    frame = Frame(source=1, destination=2, payload="x", payload_bytes=20)
    # 9 MAC header + 20 payload + 2 CRC
    assert frame.psdu_bytes == 31
    assert frame.airtime == pytest.approx(frame_airtime(31))


def test_frame_too_large_rejected():
    with pytest.raises(ValueError):
        Frame(source=1, destination=2, payload=None, payload_bytes=120)


def test_broadcast_flag():
    assert Frame(source=1, destination=BROADCAST, payload=None,
                 payload_bytes=1).is_broadcast
    assert not Frame(source=1, destination=7, payload=None,
                     payload_bytes=1).is_broadcast


def test_frame_ids_unique():
    a = Frame(source=1, destination=2, payload=None, payload_bytes=1)
    b = Frame(source=1, destination=2, payload=None, payload_bytes=1)
    assert a.frame_id != b.frame_id


def test_radio_config_defaults_sane():
    config = RadioConfig()
    assert config.noise_floor_dbm < config.sensitivity_dbm \
        < config.cca_threshold_dbm < config.tx_power_dbm
    assert 0.0 < config.ci_derating <= 1.0
