"""The declarative spec layer: round trips, validation, hashing."""

import json

import pytest

from repro.api import (
    ArtefactSpec,
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    canonical_json,
    compile_config,
    compile_fleet,
    compile_scenario,
    spec_from_config,
    spec_from_scenario,
    spec_hash,
    validate,
)
from repro.core.system import HanConfig
from repro.workloads.scenarios import (
    SCENARIO_PRESETS,
    Scenario,
    paper_scenario,
)


def sample_specs() -> list[ExperimentSpec]:
    return [
        ExperimentSpec(name="single"),
        ExperimentSpec(name="sweep", kind="sweep", seeds=(1, 2),
                       sweep=SweepSpec(rates=(4.0, 30.0))),
        ExperimentSpec(name="nbhd", kind="neighborhood",
                       fleet=FleetPlan(homes=3, mix="mixed",
                                       coordination="feeder")),
        ExperimentSpec(name="artefact", kind="artefact",
                       artefact=ArtefactSpec(kind="fig2b",
                                             params={"seeds": [1, 2]})),
        ExperimentSpec(
            name="custom", kind="single",
            scenario=ScenarioSpec(preset=None, name="weird",
                                  n_devices=7, device_power_w=1234.5,
                                  arrival="batch", batch_size=4),
            control=ControlSpec(policy="centralized", cp_fidelity="ideal",
                                topology="grid", path_loss_exponent=4.1),
            seeds=(9,), until_s=600.0),
    ]


@pytest.mark.parametrize("spec", sample_specs(),
                         ids=lambda s: s.name)
def test_json_round_trip_lossless(spec):
    loaded = ExperimentSpec.from_json(spec.to_json())
    assert loaded == spec
    assert canonical_json(loaded) == canonical_json(spec)
    assert spec_hash(loaded) == spec_hash(spec)


def test_canonical_json_is_key_sorted_and_dense():
    text = canonical_json(ExperimentSpec(name="x"))
    data = json.loads(text)
    assert list(data) == sorted(data)
    assert ": " not in text and ", " not in text


def test_hash_changes_with_content():
    a = ExperimentSpec(name="x", seeds=(1,))
    b = ExperimentSpec(name="x", seeds=(2,))
    assert spec_hash(a) != spec_hash(b)
    assert spec_hash(a) == spec_hash(ExperimentSpec(name="x", seeds=(1,)))


def test_hash_is_stable_over_json_numeric_types():
    """1800 and 1800.0 describe the same experiment — same hash."""
    ints = ExperimentSpec.from_json(
        '{"name": "x", "kind": "sweep", "until_s": 1800, '
        '"control": {"cp_period": 2}, '
        '"sweep": {"rates": [4, 18]}}')
    floats = ExperimentSpec.from_json(
        '{"name": "x", "kind": "sweep", "until_s": 1800.0, '
        '"control": {"cp_period": 2.0}, '
        '"sweep": {"rates": [4.0, 18.0]}}')
    assert ints == floats
    assert canonical_json(ints) == canonical_json(floats)
    assert spec_hash(ints) == spec_hash(floats)
    # loaded objects are identical, not merely equal-hashing: every
    # numeric landed as float
    assert ints.until_s == 1800.0 and isinstance(ints.until_s, float)
    assert all(isinstance(rate, float) for rate in ints.sweep.rates)
    assert isinstance(ints.control.cp_period, float)


def test_scenario_spec_round_trip_exact():
    for maker in SCENARIO_PRESETS.values():
        scenario = maker()
        assert compile_scenario(spec_from_scenario(scenario)) == scenario


def test_config_round_trip_exact():
    config = HanConfig(scenario=paper_scenario("low").with_rate(7.5),
                       policy="centralized", cp_fidelity="ideal",
                       cp_period=4.0, seed=17, topology_name="line",
                       refresh_every=9, calibration_rounds=3,
                       shadowing_sigma_db=1.5, path_loss_exponent=4.2,
                       ci_derating=0.5, aggregation=3, controller_id=2)
    spec = spec_from_config(config, until=123.0)
    assert spec.until_s == 123.0
    # through JSON and back, then compiled: the identical HanConfig
    loaded = ExperimentSpec.from_json(spec.to_json())
    assert compile_config(loaded, seed=17) == config


def test_preset_compiles_to_preset_scenario():
    spec = ScenarioSpec(preset="family", rate_per_hour=99.0)
    scenario = compile_scenario(spec)
    assert scenario.arrival_rate_per_hour == 99.0
    assert scenario.n_devices == SCENARIO_PRESETS["family"]().n_devices


def test_presetless_scenario_uses_defaults():
    scenario = compile_scenario(ScenarioSpec(preset=None, name="bare"))
    assert scenario == Scenario(name="bare")


def test_compile_fleet_matches_build_fleet():
    from repro.neighborhood import build_fleet
    spec = ExperimentSpec(name="n", kind="neighborhood", seeds=(5,),
                          control=ControlSpec(cp_fidelity="ideal"),
                          fleet=FleetPlan(homes=4, mix="apartments"))
    assert compile_fleet(spec) == build_fleet(
        4, mix="apartments", seed=5, cp_fidelity="ideal")


@pytest.mark.parametrize("document, path_fragment", [
    ('{"kind": "single"}', "name"),
    ('{"name": "x", "kind": "sideways"}', "kind"),
    ('{"name": "x", "seedz": [1]}', "seedz"),
    ('{"name": "x", "seeds": []}', "seeds"),
    ('{"name": "x", "seeds": [1.5]}', "seeds[0]"),
    ('{"name": "x", "schema_version": 99}', "schema_version"),
    ('{"name": "x", "scenario": {"preset": "paper-hi"}}',
     "scenario.preset"),
    ('{"name": "x", "scenario": {"n_devices": 0}}', "scenario.n_devices"),
    ('{"name": "x", "scenario": {"arrival": "fractal"}}',
     "scenario.arrival"),
    ('{"name": "x", "control": {"policy": "anarchic"}}', "control.policy"),
    ('{"name": "x", "control": {"cp_fidelity": "perfect"}}',
     "control.cp_fidelity"),
    ('{"name": "x", "control": {"topology": "torus"}}',
     "control.topology"),
    ('{"name": "x", "kind": "neighborhood"}', "fleet"),
    ('{"name": "x", "kind": "neighborhood", "fleet": {"mix": "famly"}}',
     "fleet.mix"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"coordination": "psychic"}}', "fleet.coordination"),
    ('{"name": "x", "kind": "sweep", "sweep": {"rates": [-1.0]}}',
     "sweep.rates[0]"),
    ('{"name": "x", "kind": "sweep", "sweep": {"policies": []}}',
     "sweep.policies"),
    ('{"name": "x", "kind": "artefact", "artefact": {"kind": "fig9"}}',
     "artefact.kind"),
    ('{"name": "x", "kind": "artefact", '
     '"artefact": {"kind": "fig2a", "params": {"sed": 1}}}',
     "artefact.params.sed"),
    ('{"name": "x", "fleet": {"homes": 2}}', "fleet"),
    ('{"name": "x", "until_s": "soon"}', "until_s"),
    ('{"name": "x", "scenario": {"horizon_s": 1e999}}',
     "scenario.horizon_s"),
    ('{"name": "x", "scenario": {"rate_per_hour": NaN}}',
     "scenario.rate_per_hour"),
    ('{"name": "x", "until_s": -1e999}', "until_s"),
    ('{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
     '"scenario": {"n_devices": 40}}', "scenario.n_devices"),
    ('{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
     '"scenario": {"rate_per_hour": 9.0}}', "scenario.rate_per_hour"),
    ('{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
     '"seeds": [1, 2]}', "seeds"),
    ('{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
     '"scenario": {"preset": "stress"}}', "scenario.preset"),
    ('{"name": "x", "kind": "sweep", "sweep": {"rates": [4.0]}, '
     '"control": {"policy": "centralized"}}', "control.policy"),
    ('{"name": "x", "kind": "sweep", "sweep": {"rates": [4.0]}, '
     '"scenario": {"rate_per_hour": 7.0}}', "scenario.rate_per_hour"),
    ('{"name": "x", "kind": "artefact", '
     '"artefact": {"kind": "headline"}, "seeds": [9]}', "seeds"),
    ('{"name": "x", "kind": "artefact", '
     '"artefact": {"kind": "headline"}, "until_s": 60.0}', "until_s"),
    ('{"name": "x", "kind": "artefact", '
     '"artefact": {"kind": "headline"}, '
     '"control": {"policy": "uncoordinated"}}', "control.policy"),
    ('{"name": "x", "kind": "artefact", '
     '"artefact": {"kind": "headline"}, '
     '"scenario": {"preset": "stress"}}', "scenario.preset"),
])
def test_validation_error_paths(document, path_fragment):
    with pytest.raises(SpecError) as caught:
        ExperimentSpec.from_json(document)
    assert str(caught.value).startswith(path_fragment), str(caught.value)


def test_invalid_json_is_a_spec_error():
    with pytest.raises(SpecError, match="invalid JSON"):
        ExperimentSpec.from_json("{nope")


def test_suggestions_name_close_matches():
    with pytest.raises(SpecError, match="did you mean 'seeds'"):
        ExperimentSpec.from_json('{"name": "x", "seedz": [1]}')


def test_neighborhood_scenario_allows_horizon_only():
    ExperimentSpec.from_json(
        '{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
        '"scenario": {"horizon_s": 1800.0}}')


def test_validate_checks_constructed_trees():
    spec = ExperimentSpec(name="x", kind="neighborhood",
                          fleet=FleetPlan(mix="nowhere"))
    with pytest.raises(SpecError, match="fleet.mix"):
        validate(spec)


def test_specs_are_hashable_including_artefact_kinds():
    """Specs must work in sets/dict keys (result caches key on them)."""
    from repro.experiments.registry import all_experiments
    distinct = {experiment.spec for experiment in all_experiments()}
    assert len(distinct) == len(all_experiments())
    assert len({spec if spec.artefact is None else spec.artefact
                for spec in sample_specs()}) == len(sample_specs())


def test_with_artefact_params_merges():
    spec = ExperimentSpec(name="x", kind="artefact",
                          artefact=ArtefactSpec(kind="fig2a",
                                                params={"seed": 2}))
    merged = spec.with_artefact_params(horizon=60.0)
    assert merged.artefact.params == {"seed": 2, "horizon": 60.0}
    assert spec.artefact.params == {"seed": 2}


# -- PR 8: the forecast section ---------------------------------------------


def online_spec(**forecast_overrides):
    from repro.api import ForecastPlan
    return ExperimentSpec(
        name="online", kind="neighborhood",
        fleet=FleetPlan(homes=4, coordination="online"),
        forecast=ForecastPlan(**forecast_overrides))


def test_forecast_round_trip_lossless():
    spec = online_spec(forecaster="ewma", noise=0.25, noise_seed=7,
                       ewma_alpha=0.3, season_epochs=2)
    loaded = ExperimentSpec.from_json(spec.to_json())
    assert loaded == spec
    assert loaded.forecast.noise == 0.25
    assert spec_hash(loaded) == spec_hash(spec)
    validate(spec)  # hand-built tree passes the same checks as JSON


def test_forecast_absent_keeps_pre_online_hashes():
    """Specs without a forecast section serialize exactly as before
    the section existed — no key, same canonical bytes, same hash."""
    spec = ExperimentSpec(name="nbhd", kind="neighborhood",
                          fleet=FleetPlan(homes=3))
    assert "forecast" not in json.loads(canonical_json(spec))
    assert spec.forecast is None
    assert ExperimentSpec.from_json(spec.to_json()) == spec


def test_forecast_numeric_types_hash_stably():
    ints = ExperimentSpec.from_json(
        '{"name": "x", "kind": "neighborhood", '
        '"fleet": {"homes": 2, "coordination": "online"}, '
        '"forecast": {"noise": 0, "ewma_alpha": 1}}')
    floats = ExperimentSpec.from_json(
        '{"name": "x", "kind": "neighborhood", '
        '"fleet": {"homes": 2, "coordination": "online"}, '
        '"forecast": {"noise": 0.0, "ewma_alpha": 1.0}}')
    assert ints == floats
    assert spec_hash(ints) == spec_hash(floats)
    assert isinstance(ints.forecast.noise, float)


@pytest.mark.parametrize("document,path_fragment", [
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "online"}, '
     '"forecast": {"forecaster": "orcale"}}', "forecast.forecaster"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "online"}, '
     '"forecast": {"noise": -0.1}}', "forecast.noise"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "online"}, '
     '"forecast": {"ewma_alpha": 1.5}}', "forecast.ewma_alpha"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "online"}, '
     '"forecast": {"season_epochs": 0}}', "forecast.season_epochs"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "online"}, '
     '"forecast": {"horizon": 3}}', "forecast"),
    # Dead configuration: forecast on anything but an online
    # neighborhood spec is rejected, never silently hashed.
    ('{"name": "x", "kind": "neighborhood", "fleet": {"homes": 2}, '
     '"forecast": {}}', "forecast"),
    ('{"name": "x", "forecast": {"forecaster": "oracle"}}', "forecast"),
    ('{"name": "x", "kind": "neighborhood", '
     '"fleet": {"homes": 2, "coordination": "feeder"}, '
     '"forecast": {}}', "forecast"),
])
def test_forecast_validation_error_paths(document, path_fragment):
    with pytest.raises(SpecError) as caught:
        ExperimentSpec.from_json(document)
    assert str(caught.value).startswith(path_fragment), str(caught.value)


def test_forecaster_suggestion_names_close_match():
    with pytest.raises(SpecError, match="did you mean 'oracle'"):
        ExperimentSpec.from_json(
            '{"name": "x", "kind": "neighborhood", '
            '"fleet": {"homes": 2, "coordination": "online"}, '
            '"forecast": {"forecaster": "orcale"}}')
