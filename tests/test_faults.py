"""The fault plane's contracts: seeding, activation, spec wiring, retry.

Unit-level locks for :mod:`repro.faults` and
:mod:`repro.service.retry` — the integration invariants (bit-identical
schedules across executors, energy exactness, exactly-once completion)
live in ``tests/test_fault_matrix.py``.
"""

import pytest

from repro.api.spec import ExperimentSpec, FleetPlan, ForecastPlan
from repro.api.validate import SpecError, validate
from repro.faults import (
    RATE_FIELDS,
    SITES,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    fault_scope,
    get_injector,
    last_injector,
)
from repro.service.retry import RetryPolicy


def plan(**rates):
    return FaultPlan(seed=rates.pop("seed", 3), **rates)


# -- the seeding contract ---------------------------------------------------


def test_decisions_are_pure_in_seed_site_key():
    first = FaultInjector(plan(telemetry_drop=0.5))
    second = FaultInjector(plan(telemetry_drop=0.5))
    keys = [f"e{epoch}:{home}" for epoch in range(6) for home in range(8)]
    forward = [first.fire("telemetry.drop", key) for key in keys]
    backward = [second.fire("telemetry.drop", key)
                for key in reversed(keys)]
    assert forward == list(reversed(backward))  # call-order free
    assert any(forward) and not all(forward)


def test_distinct_seeds_give_distinct_schedules():
    keys = [f"e{epoch}:{home}" for epoch in range(10)
            for home in range(10)]

    def fired(seed):
        injector = FaultInjector(FaultPlan(seed=seed, telemetry_drop=0.3))
        return [injector.fire("telemetry.drop", key) for key in keys]

    assert fired(1) != fired(2)
    assert fired(1) == fired(1)


def test_rate_bounds_never_and_always():
    injector = FaultInjector(plan(telemetry_drop=1.0))
    assert all(injector.fire("telemetry.drop", f"k{i}")
               for i in range(50))
    zero = FaultInjector(plan(telemetry_dup=1.0))  # drop stays 0.0
    assert not any(zero.fire("telemetry.drop", f"k{i}")
                   for i in range(50))


def test_sites_are_independent_streams():
    injector = FaultInjector(plan(telemetry_drop=0.5, telemetry_dup=0.5))
    keys = [f"e0:{home}" for home in range(64)]
    drops = [injector.fire("telemetry.drop", key) for key in keys]
    dups = [injector.fire("telemetry.dup", key) for key in keys]
    assert drops != dups  # same keys, decorrelated decisions


def test_unknown_site_is_a_loud_error():
    injector = FaultInjector(plan(telemetry_drop=0.5))
    with pytest.raises(KeyError, match="unknown injection site"):
        injector.fire("telemetry.typo", "k")


def test_delay_epochs_bounded_and_deterministic():
    injector = FaultInjector(plan(telemetry_delay=1.0,
                                  max_delay_epochs=3))
    extents = {injector.delay_epochs(f"e0:{home}") for home in range(64)}
    assert extents <= {1, 2, 3} and len(extents) > 1
    again = FaultInjector(plan(telemetry_delay=1.0, max_delay_epochs=3))
    assert [injector.delay_epochs(f"e0:{h}") for h in range(10)] \
        == [again.delay_epochs(f"e0:{h}") for h in range(10)]


def test_occurrence_counts_per_site_key_pair():
    injector = FaultInjector(plan(cache_corrupt=0.5))
    assert injector.occurrence("cache.corrupt", "d1") == 0
    assert injector.occurrence("cache.corrupt", "d1") == 1
    assert injector.occurrence("cache.corrupt", "d2") == 0


def test_schedule_is_sorted_deduped_and_prefix_filterable():
    injector = FaultInjector(plan(telemetry_drop=1.0, worker_crash=1.0))
    injector.fire("worker.crash", "j:a0")
    injector.fire("telemetry.drop", "e1:4")
    injector.fire("telemetry.drop", "e0:2")
    injector.fire("telemetry.drop", "e0:2")  # re-probe records once
    assert injector.schedule() == (
        ("telemetry.drop", "e0:2"), ("telemetry.drop", "e1:4"),
        ("worker.crash", "j:a0"))
    assert injector.schedule("telemetry.") == (
        ("telemetry.drop", "e0:2"), ("telemetry.drop", "e1:4"))
    assert injector.schedule_digest() != injector.schedule_digest(
        "telemetry.")


def test_injected_fault_names_site_and_key():
    fault = InjectedFault("worker.crash", "job:a1")
    assert fault.site == "worker.crash" and fault.key == "job:a1"
    assert "worker.crash" in str(fault)


# -- plan -------------------------------------------------------------------


def test_plan_enabled_iff_any_rate_positive():
    assert not FaultPlan().enabled
    assert not FaultPlan(seed=9, max_delay_epochs=5).enabled
    for name in RATE_FIELDS:
        assert FaultPlan(**{name: 0.1}).enabled


def test_every_site_maps_to_a_rate_field():
    assert sorted(SITES.values()) == sorted(RATE_FIELDS)
    enabled = FaultPlan(**{field: 0.25 for field in RATE_FIELDS})
    for site in SITES:
        assert enabled.rate_of(site) == 0.25


# -- activation scope -------------------------------------------------------


def test_scope_installs_and_restores():
    assert get_injector() is None
    with fault_scope(plan(telemetry_drop=0.5)) as injector:
        assert injector is not None
        assert get_injector() is injector
    assert get_injector() is None
    assert last_injector() is injector  # survives for inspection


def test_disabled_plans_activate_nothing():
    with fault_scope(None) as injector:
        assert injector is None and get_injector() is None
    with fault_scope(FaultPlan()) as injector:
        assert injector is None and get_injector() is None


def test_reentrant_scope_shares_one_injector():
    shared = plan(telemetry_drop=0.5)
    with fault_scope(shared) as outer:
        outer.occurrence("cache.corrupt", "d")
        with fault_scope(shared) as inner:
            assert inner is outer
            # Shared occurrence counters: the inner scope continues the
            # outer's sequence instead of restarting it.
            assert inner.occurrence("cache.corrupt", "d") == 1
        assert get_injector() is outer  # inner exit didn't deactivate


def test_nested_different_plan_restores_the_outer():
    with fault_scope(plan(telemetry_drop=0.5)) as outer:
        with fault_scope(plan(seed=99, worker_crash=0.5)) as inner:
            assert inner is not outer
            assert get_injector() is inner
        assert get_injector() is outer
    assert get_injector() is None


# -- spec + validation wiring -----------------------------------------------


def faulted_spec(**rates):
    return ExperimentSpec(
        name="faulted", kind="neighborhood", seeds=(1,),
        fleet=FleetPlan(homes=4, coordination="online"),
        forecast=ForecastPlan(forecaster="persistence"),
        faults=plan(**rates))


def test_fault_plan_rides_the_spec_json_round_trip():
    spec = faulted_spec(telemetry_drop=0.25, max_delay_epochs=4)
    assert ExperimentSpec.from_json(spec.to_json()) == spec
    # Int-written rates coerce to float like every other float field.
    data = spec.to_dict()
    data["faults"]["telemetry_drop"] = 1
    assert ExperimentSpec.from_dict(data).faults.telemetry_drop == 1.0


def test_specs_without_faults_keep_their_canonical_json():
    bare = ExperimentSpec(name="plain", kind="neighborhood", seeds=(1,),
                          fleet=FleetPlan(homes=4))
    assert "faults" not in bare.to_dict()  # pre-existing hashes stable


def test_validator_rejects_out_of_range_rates():
    spec = faulted_spec(telemetry_drop=0.5)
    data = spec.to_dict()
    data["faults"]["telemetry_drop"] = 1.5
    with pytest.raises(SpecError, match="faults.telemetry_drop"):
        ExperimentSpec.from_dict(data)
    data["faults"]["telemetry_drop"] = -0.1
    with pytest.raises(SpecError, match="faults.telemetry_drop"):
        ExperimentSpec.from_dict(data)
    data["faults"]["telemetry_drop"] = 0.5
    data["faults"]["surprise"] = 1
    with pytest.raises(SpecError, match="faults.surprise"):
        ExperimentSpec.from_dict(data)


def test_validator_rejects_faults_on_kinds_without_sites():
    single = ExperimentSpec(name="s", kind="single",
                            faults=plan(worker_crash=0.5))
    with pytest.raises(SpecError, match="only valid for kinds"):
        validate(single)


def test_validator_rejects_telemetry_rates_off_the_online_plane():
    offline = ExperimentSpec(
        name="off", kind="neighborhood", seeds=(1,),
        fleet=FleetPlan(homes=4),  # coordination: independent
        faults=plan(telemetry_drop=0.5))
    with pytest.raises(SpecError, match="online"):
        validate(offline)
    # Non-telemetry sites are fine on any fleet shape.
    validate(ExperimentSpec(
        name="ok", kind="neighborhood", seeds=(1,),
        fleet=FleetPlan(homes=4), faults=plan(frame_loss=0.5)))


# -- retry policy -----------------------------------------------------------


def test_retry_intervals_grow_exponentially_to_the_cap():
    policy = RetryPolicy(initial_s=0.1, factor=2.0, max_s=1.0,
                         jitter=0.0)
    assert [policy.interval(n) for n in range(5)] \
        == [0.1, 0.2, 0.4, 0.8, 1.0]


def test_retry_jitter_is_bounded_deterministic_and_key_spread():
    policy = RetryPolicy(initial_s=0.1, factor=2.0, max_s=5.0,
                         jitter=0.25)
    for attempt in range(8):
        base = min(0.1 * 2.0 ** attempt, 5.0)
        value = policy.interval(attempt, key="job-a")
        assert base * 0.75 <= value <= base * 1.25
        assert value == policy.interval(attempt, key="job-a")
    # Distinct keys decorrelate (thundering-herd avoidance).
    assert policy.interval(3, key="job-a") != policy.interval(
        3, key="job-b")


def test_retry_policy_validates_its_shape():
    with pytest.raises(ValueError, match="initial_s"):
        RetryPolicy(initial_s=0.0)
    with pytest.raises(ValueError, match="factor"):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError, match="max_s"):
        RetryPolicy(initial_s=1.0, max_s=0.5)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.0)
