"""Glossy flood primitive."""

import numpy as np
import pytest

from repro.radio import FloodMedium, flocklab26, linear_layout
from repro.sim import RandomStreams
from repro.st import GlossyConfig, run_flood


def make_medium(topo, seed=1, **channel_kwargs):
    streams = RandomStreams(seed)
    channel = topo.make_channel(rng=streams.stream("channel"),
                                **channel_kwargs)
    return FloodMedium(channel, streams.stream("floods"))


def test_flood_reaches_whole_testbed():
    medium = make_medium(flocklab26())
    result = run_flood(medium, 0, range(26))
    assert result.receivers == set(range(1, 26))


def test_flood_hop_counts_grow_with_distance():
    topo = linear_layout(5, spacing=30.0)
    medium = make_medium(topo, shadowing_sigma_db=0.0)
    result = run_flood(medium, 0, range(5))
    hops = [result.hop_count(n) for n in range(5)]
    assert hops[0] == 0
    assert all(hops[i] is not None for i in range(5))
    # strictly farther nodes cannot have smaller hop counts
    assert hops[1] <= hops[2] <= hops[3] <= hops[4]


def test_flood_initiator_not_in_receivers():
    medium = make_medium(flocklab26())
    result = run_flood(medium, 3, range(26))
    assert 3 not in result.receivers
    assert result.hop_count(3) == 0


def test_flood_latency_positive_and_bounded():
    medium = make_medium(flocklab26())
    config = GlossyConfig()
    result = run_flood(medium, 0, range(26), config)
    for node in result.receivers:
        latency = result.latency(node, config)
        assert 0 < latency <= config.max_slots * config.slot_length
    assert result.latency(0, config) == 0.0


def test_flood_unreached_node_has_no_latency():
    topo = linear_layout(3, spacing=300.0)  # out of range
    medium = make_medium(topo)
    config = GlossyConfig()
    result = run_flood(medium, 0, range(3), config)
    assert result.hop_count(2) is None
    assert result.latency(2, config) is None


def test_flood_respects_participant_subset():
    medium = make_medium(flocklab26())
    participants = [0, 1, 2, 3]
    result = run_flood(medium, 0, participants)
    assert result.receivers <= set(participants)


def test_flood_requires_initiator_among_participants():
    medium = make_medium(flocklab26())
    with pytest.raises(ValueError):
        run_flood(medium, 10, [0, 1, 2])


def test_flood_tx_budget_respected():
    medium = make_medium(flocklab26())
    config = GlossyConfig(n_tx=2)
    result = run_flood(medium, 0, range(26), config)
    assert all(count <= 2 for count in result.tx_counts.values())
    assert result.tx_counts[0] >= 1


def test_flood_duration_matches_slots():
    medium = make_medium(flocklab26())
    config = GlossyConfig()
    result = run_flood(medium, 0, range(26), config)
    assert result.duration == pytest.approx(
        result.slots_used * config.slot_length)
    assert result.slots_used <= config.max_slots


def test_more_ntx_no_worse_coverage():
    """Averaged over floods, more retransmissions cannot hurt coverage."""
    topo = flocklab26()
    coverage = {}
    for n_tx in (1, 3):
        total = 0
        medium = make_medium(topo, seed=5, shadowing_sigma_db=8.0)
        for _ in range(20):
            result = run_flood(medium, 0, range(26),
                               GlossyConfig(n_tx=n_tx))
            total += len(result.receivers)
        coverage[n_tx] = total
    assert coverage[3] >= coverage[1]


def test_glossy_config_slot_length():
    config = GlossyConfig(payload_bytes=16, header_bytes=4)
    # PSDU = 9 + 4 + 16 + 2 = 31 bytes; airtime (5+1+31)*32us = 1.184 ms
    assert config.psdu_bytes == 31
    assert config.slot_length == pytest.approx(1.184e-3 + 200e-6)


def test_dead_relays_hurt_line_topologies():
    """Without the middle node, a 2-hop line flood cannot cross."""
    topo = linear_layout(3, spacing=30.0)
    medium = make_medium(topo, shadowing_sigma_db=0.0)
    full = run_flood(medium, 0, [0, 1, 2])
    assert 2 in full.receivers
    amputated = run_flood(medium, 0, [0, 2])
    assert 2 not in amputated.receivers
