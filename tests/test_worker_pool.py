"""The persistent worker pool: reuse, lifecycle, and determinism locks.

Extends the existing 1-vs-N bit-identity locks (``tests/test_api_run.py``,
``tests/test_neighborhood.py``) to the persistent pool of
:mod:`repro.experiments.pool`: a *reused* pool — the same warm workers
serving several consecutive batches — must stay bit-identical to fresh
``jobs=1`` execution across the sweep, registry and neighborhood paths.
"""

import pytest

from repro.api import (
    ControlSpec,
    ExperimentSpec,
    FleetPlan,
    ScenarioSpec,
    SweepSpec,
    run,
)
from repro.experiments.pool import (
    WorkerPool,
    dispatch_chunksize,
    shared_pool,
    shutdown_pools,
)
from repro.experiments.runner import ParallelRunner, run_registry
from repro.sim.units import MINUTE

SHORT = 45 * MINUTE


def assert_same_run(a, b):
    assert list(a.load_w) == list(b.load_w)
    assert a.stats() == b.stats()
    assert [r.completed_at for r in a.requests] == \
        [r.completed_at for r in b.requests]
    assert a.bursts == b.bursts


def sweep_spec():
    return ExperimentSpec(
        name="pool-sweep", kind="sweep",
        scenario=ScenarioSpec(preset="paper-low"),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1, 2), until_s=SHORT,
        sweep=SweepSpec(rates=(4.0, 18.0)))


def nbhd_spec():
    return ExperimentSpec(
        name="pool-nbhd", kind="neighborhood",
        scenario=ScenarioSpec(horizon_s=SHORT),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(1,), fleet=FleetPlan(homes=3, mix="mixed"))


# ---------------------------------------------------------------------------
# mechanics
# ---------------------------------------------------------------------------

def test_chunked_dispatch_shape():
    assert dispatch_chunksize(1, 4) == 1
    assert dispatch_chunksize(200, 4) == 13  # ceil(200 / 16)
    assert dispatch_chunksize(16, 4) == 1
    assert dispatch_chunksize(17, 2) == 3


def test_pool_rejects_bad_jobs():
    with pytest.raises(ValueError):
        WorkerPool(0)


def test_jobs_1_stays_in_process():
    pool = WorkerPool(1)
    assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
    assert not pool.alive  # nothing was spawned
    assert pool.spawn_count == 0


def test_shared_pool_is_persistent_and_keyed(shutdown_pools_after):
    assert shared_pool(2) is shared_pool(2)
    assert shared_pool(2) is not shared_pool(3)
    shutdown_pools()
    fresh = shared_pool(2)
    assert not fresh.alive  # registry cleared; new pool not yet spawned


def test_batches_reuse_one_spawn(shutdown_pools_after):
    """Consecutive batches must reuse the warm workers, not refork."""
    runner = ParallelRunner(jobs=2)
    from repro.api.compile import compile_run_specs
    specs = compile_run_specs(sweep_spec())
    first = runner.run(specs)
    pool = shared_pool(2)
    assert pool.alive and pool.spawn_count == 1
    second = runner.run(specs)
    assert pool.spawn_count == 1  # no second fork-per-batch
    for a, b in zip(first, second):
        assert_same_run(a, b)


def test_pool_close_respawns_cleanly(shutdown_pools_after):
    pool = WorkerPool(2)
    assert pool.map(abs, [-1, -2]) == [1, 2]
    generation = pool.spawn_count
    pool.close()
    assert not pool.alive
    assert pool.map(abs, [-3, -4]) == [3, 4]
    assert pool.spawn_count == generation + 1
    pool.close()


# ---------------------------------------------------------------------------
# determinism locks: jobs=1 vs jobs=N vs reused pool
# ---------------------------------------------------------------------------

def test_sweep_pool_determinism(shutdown_pools_after):
    spec = sweep_spec()
    serial = run(spec, jobs=1)
    pooled = run(spec, jobs=2)
    reused = run(spec, jobs=2)  # same shared pool, second batch
    assert shared_pool(2).spawn_count == 1
    for a, b, c in zip(serial.runs, pooled.runs, reused.runs):
        assert_same_run(a, b)
        assert_same_run(a, c)


def test_neighborhood_pool_determinism(shutdown_pools_after):
    spec = nbhd_spec()
    serial = run(spec, jobs=1)
    pooled = run(spec, jobs=2)
    reused = run(spec, jobs=2)
    assert list(serial.neighborhood.feeder_w) == \
        list(pooled.neighborhood.feeder_w) == \
        list(reused.neighborhood.feeder_w)
    for a, b, c in zip(serial.neighborhood.homes,
                       pooled.neighborhood.homes,
                       reused.neighborhood.homes):
        assert_same_run(a, b)
        assert_same_run(a, c)


def test_registry_pool_determinism(shutdown_pools_after):
    """Registry regeneration through a (reused) pool renders identically."""
    ids = ["FIG1", "FIG1"]  # two items so the batch actually fans out
    serial = ParallelRunner(jobs=1).regenerate(ids)
    pooled = ParallelRunner(jobs=2).regenerate(ids)
    reused = ParallelRunner(jobs=2).regenerate(ids)
    assert shared_pool(2).spawn_count == 1
    texts = {artefact.text
             for artefact in [*serial, *pooled, *reused]}
    assert len(texts) == 1  # every path rendered the same artefact


def test_registry_helper_orders_and_validates(shutdown_pools_after):
    with pytest.raises(KeyError):
        run_registry(["NOPE"], jobs=2)
    [(exp_id, artefact)] = run_registry(["FIG1"], jobs=1)
    assert exp_id == "FIG1"
    assert "Communication Plane" in artefact.text


# -- lifecycle: LRU shape cap + explicit shutdown -----------------------------


def test_pool_shapes_capped_lru(shutdown_pools_after):
    """Drawing more shapes than MAX_POOL_SHAPES closes the oldest one."""
    from repro.experiments import pool as pool_module

    pool_module.shutdown_all()
    shapes = [(jobs, None) for jobs in
              range(2, 2 + pool_module.MAX_POOL_SHAPES + 1)]
    first = shared_pool(*shapes[0])
    first.map(len, [(4, 2)])  # spin it up: eviction must really close it
    assert first.alive
    for jobs, ctx in shapes[1:]:
        shared_pool(jobs, ctx)
    assert len(pool_module._POOLS) == pool_module.MAX_POOL_SHAPES
    # The least recently drawn shape was evicted and closed...
    assert shapes[0] not in pool_module._POOLS
    assert not first.alive
    # ...and re-drawing it hands out a *fresh* pool object.
    assert shared_pool(*shapes[0]) is not first


def test_pool_lru_refreshes_on_redraw(shutdown_pools_after):
    from repro.experiments import pool as pool_module

    pool_module.shutdown_all()
    first = shared_pool(2)
    for jobs in range(3, 2 + pool_module.MAX_POOL_SHAPES):
        shared_pool(jobs)
    assert shared_pool(2) is first          # refreshed, most recent now
    shared_pool(2 + pool_module.MAX_POOL_SHAPES)  # evicts jobs=3, not 2
    assert (2, None) in pool_module._POOLS
    assert (3, None) not in pool_module._POOLS


def test_shutdown_all_closes_everything_and_respawns():
    from repro.experiments import pool as pool_module

    pool = shared_pool(2)
    pool.map(len, [(8, 2), (9, 2)])
    assert pool.alive
    pool_module.shutdown_all()
    assert not pool.alive
    assert not pool_module._POOLS
    pool_module.shutdown_all()  # idempotent
    # The next draw transparently respawns a working pool.
    fresh = shared_pool(2)
    assert fresh.map(len, [(8, 2)]) == [2]
    pool_module.shutdown_all()


def test_shutdown_pools_alias_preserved():
    from repro.experiments import pool as pool_module

    assert pool_module.shutdown_pools is pool_module.shutdown_all
