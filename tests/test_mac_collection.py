"""Centralized collect + disseminate over the AT stack."""

import pytest

from repro.mac import CollectionNetwork
from repro.radio import CsmaMedium, flocklab26
from repro.sim import RandomStreams, Simulator


def build(seed=1, sink=0):
    streams = RandomStreams(seed)
    topo = flocklab26()
    channel = topo.make_channel(rng=streams.stream("channel"))
    sim = Simulator()
    medium = CsmaMedium(sim, channel, streams.stream("medium"))
    reports = []
    schedules = []
    network = CollectionNetwork(
        sim, channel, medium, list(range(topo.n)), sink=sink,
        rng_factory=lambda name: streams.stream(name),
        on_report=reports.append,
        on_schedule=lambda node, bundle: schedules.append((node,
                                                           bundle.version)))
    return sim, network, reports, schedules


def test_single_report_reaches_controller():
    sim, network, reports, _ = build()

    def traffic(sim):
        network.submit_report(25, {"kind": "request"})
        yield sim.timeout(1.0)

    sim.spawn(traffic(sim))
    sim.run(until=2.0)
    assert [r.origin for r in reports] == [25]
    assert network.stats.report_delivery_ratio == 1.0
    assert network.stats.report_latencies[0] > 0.0


def test_sink_local_report_is_immediate():
    sim, network, reports, _ = build()
    network.submit_report(0, {"kind": "local"})
    assert [r.origin for r in reports] == [0]
    assert network.stats.report_latencies[0] == 0.0
    sim.run(until=0.1)


def test_staggered_reports_all_collected():
    sim, network, reports, _ = build(seed=2)

    def traffic(sim):
        for origin in range(1, 26):
            network.submit_report(origin, origin)
            yield sim.timeout(0.08)

    sim.spawn(traffic(sim))
    sim.run(until=10.0)
    assert network.stats.reports_delivered >= 23  # near-lossless staggered
    assert network.stats.mean_report_latency() < 0.2


def test_dissemination_reaches_network():
    sim, network, _, schedules = build(seed=3)

    def push(sim):
        network.disseminate(1, {"plan": "x"})
        yield sim.timeout(2.0)

    sim.spawn(push(sim))
    sim.run(until=5.0)
    informed = {node for node, version in schedules if version == 1}
    assert len(informed) >= 20  # CSMA broadcast flood, some loss allowed


def test_dissemination_versions_are_deduplicated():
    sim, network, _, schedules = build(seed=4)

    def push(sim):
        network.disseminate(1, "a")
        yield sim.timeout(2.0)
        network.disseminate(1, "a-again")  # same version: ignored
        yield sim.timeout(2.0)

    sim.spawn(push(sim))
    sim.run(until=6.0)
    per_node = {}
    for node, version in schedules:
        per_node.setdefault(node, []).append(version)
    assert all(versions.count(1) == 1 for versions in per_node.values())


def test_controller_failure_stops_dissemination():
    sim, network, _, schedules = build()
    network.fail_node(0)
    network.disseminate(1, "never")
    sim.run(until=2.0)
    assert schedules == []
    assert not network.controller_alive


def test_relay_failure_triggers_rerouting():
    sim, network, reports, _ = build(seed=5)
    victim = network.tree.next_hop(25)
    network.fail_node(victim)
    assert network.tree.next_hop(25) != victim

    def traffic(sim):
        network.submit_report(25, "rerouted")
        yield sim.timeout(1.0)

    sim.spawn(traffic(sim))
    sim.run(until=3.0)
    assert [r.origin for r in reports] == [25]
