"""Randomized invariant suite for the fleet-of-fleets grid layer.

Three contracts lock :mod:`repro.neighborhood.grid` over seeded-random
topologies (every ``random.Random`` here is seeded — failures replay
exactly):

* **Exactness** — the substation's fully-independent profile is the
  correctly rounded (``math.fsum``-equal) per-event sum of *all* home
  series, and it is bit-identical for any shard size and any grouping
  of the same homes into feeders (partition invariance of
  :func:`repro.neighborhood.aggregate.combine_partials`).
* **Conservation** — coordination at either tier moves load, never
  sheds it: per-home and grid-total energy are conserved, and the
  realized-improvement guard means neither tier ever raises the peak
  it coordinates.
* **Flat-grid identity** — a single-feeder :class:`GridSpec` reproduces
  the existing ``neighborhood`` kind bit for bit
  (:func:`repro.neighborhood.grid.feeder_seed` of index 0 inherits the
  root seed), and worker-side envelope pre-reduction can never change a
  result bit relative to the parent-side computation.
"""

import hashlib
import math
import random
from dataclasses import replace

import pytest

from repro.api import (
    ControlSpec,
    ExperimentSpec,
    ScenarioSpec,
    run,
    spec_hash,
    validate,
)
from repro.api.spec import FeederPlan, FleetPlan, GridPlan
from repro.api.validate import SpecError
from repro.neighborhood import (
    GridSpec,
    build_fleet,
    build_grid,
    execute_fleet,
    execute_grid,
    feeder_seed,
)
from repro.sim.units import MINUTE

HORIZON = 40 * MINUTE
MIXES = ("suburb", "apartments", "mixed")


def random_plans(seed, max_feeders=4, max_homes=4):
    """A seeded-random grid topology (1..4 feeders of 1..4 homes)."""
    rng = random.Random(seed)
    return [{"homes": rng.randint(1, max_homes),
             "mix": rng.choice(MIXES)}
            for _ in range(rng.randint(1, max_feeders))]


def small_grid(seed=1, plans=None):
    return build_grid(plans if plans is not None
                      else [{"homes": 3}, {"homes": 2, "mix": "mixed"}],
                      seed=seed, cp_fidelity="ideal", horizon=HORIZON)


def series_bits(series):
    return (tuple(series.times), tuple(series.values))


def grid_digest(result):
    """Value digest over everything a grid consumer can observe."""
    parts = []
    for feeder in result.feeders:
        parts.extend(series_bits(home.load_w) for home in feeder.homes)
        parts.append(series_bits(feeder.feeder_w))
        if feeder.coordination is not None:
            parts.append(feeder.coordination.offsets_s)
    parts.append(series_bits(result.substation_w))
    parts.append(series_bits(result.independent_w))
    if result.coordination is not None:
        parts.append(result.coordination.offsets_s)
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def fsum_reference(result):
    """The correctly rounded per-event sum of every home series."""
    series = [home.load_w for feeder in result.feeders
              for home in feeder.homes]
    times = result.independent_w.times
    columns = [one.sample(times) for one in series]
    return [math.fsum(column[i] for column in columns)
            for i in range(len(times))]


# -- exactness: the substation aggregate is the fsum of all homes ---------

@pytest.mark.parametrize("topology_seed", [11, 23, 37])
def test_substation_aggregate_is_exact_fsum(topology_seed):
    grid = small_grid(seed=topology_seed,
                      plans=random_plans(topology_seed))
    result = execute_grid(grid, coordination="independent")
    assert list(result.independent_w.values) == fsum_reference(result)


@pytest.mark.parametrize("shard_size", [1, 8, None, 0])
def test_substation_aggregate_invariant_across_shard_sizes(
        shard_size, shutdown_pools_after):
    grid = small_grid(seed=5)
    reference = execute_grid(grid, coordination="independent",
                             shard_size=0)
    probe = execute_grid(grid, coordination="independent",
                         shard_size=shard_size)
    assert grid_digest(probe) == grid_digest(reference)
    assert list(probe.independent_w.values) == fsum_reference(probe)


@pytest.mark.parametrize("topology_seed", [3, 19])
def test_substation_aggregate_invariant_across_feeder_groupings(
        topology_seed):
    """Regrouping the *same built homes* never changes the aggregate.

    One 6-home pool, three hand-made partitions into feeders: the
    substation independent profile must be bit-identical — grouping is
    topology bookkeeping, not arithmetic.
    """
    pool = build_fleet(6, seed=topology_seed, cp_fidelity="ideal",
                       horizon=HORIZON)
    groupings = [
        (pool.homes,),                               # one feeder of 6
        (pool.homes[:2], pool.homes[2:]),            # 2 + 4
        tuple((home,) for home in pool.homes),       # 6 singletons
    ]
    profiles = []
    for grouping in groupings:
        feeders = tuple(
            replace(pool, name=f"group{index}", homes=tuple(homes))
            for index, homes in enumerate(grouping))
        grid = GridSpec(name="regrouped", seed=topology_seed,
                        feeders=feeders)
        result = execute_grid(grid, coordination="independent")
        profiles.append(series_bits(result.independent_w))
    assert profiles[0] == profiles[1] == profiles[2]


# -- conservation: coordination moves load, never sheds or regresses ------

@pytest.mark.parametrize("topology_seed", [7, 29])
def test_feeder_tier_conserves_every_home_energy(topology_seed):
    grid = small_grid(seed=topology_seed,
                      plans=random_plans(topology_seed))
    result = execute_grid(grid, coordination="feeder")
    for feeder in result.feeders:
        plan = feeder.coordination
        assert plan is not None
        for home, rotated in zip(feeder.homes, plan.contributions_w):
            original = home.load_w.integral(0.0, result.horizon)
            assert rotated.integral(0.0, result.horizon) == \
                pytest.approx(original, rel=1e-12)


@pytest.mark.parametrize("topology_seed", [7, 29])
def test_substation_tier_conserves_total_energy(topology_seed):
    grid = small_grid(seed=topology_seed,
                      plans=random_plans(topology_seed))
    result = execute_grid(grid, coordination="substation")
    independent = result.independent_w.integral(0.0, result.horizon)
    coordinated = result.substation_w.integral(0.0, result.horizon)
    assert coordinated == pytest.approx(independent, rel=1e-12)


@pytest.mark.parametrize("topology_seed", [13, 31, 41])
def test_neither_tier_ever_raises_the_realized_peak(topology_seed):
    grid = small_grid(seed=topology_seed,
                      plans=random_plans(topology_seed))
    result = execute_grid(grid, coordination="substation")
    horizon = result.horizon
    # Feeder tier: every feeder's realized peak <= its independent peak.
    for feeder in result.feeders:
        plan = feeder.coordination
        assert plan.coordinated_w.maximum(0.0, horizon) <= \
            plan.independent_w.maximum(0.0, horizon) + 1e-9
    # Substation tier: realized peak <= the pre-negotiation baseline
    # (sum of feeder-coordinated profiles) <= fully independent peak.
    plan = result.coordination
    baseline = plan.independent_w.maximum(0.0, horizon)
    assert plan.coordinated_w.maximum(0.0, horizon) <= baseline + 1e-9
    assert result.substation_w.maximum(0.0, horizon) <= \
        result.independent_w.maximum(0.0, horizon) + 1e-9


# -- flat-grid identity: one feeder == the neighborhood kind --------------

def test_feeder_seed_zero_inherits_the_root():
    assert feeder_seed(123, 0) == 123
    derived = {feeder_seed(123, index) for index in range(1, 8)}
    assert len(derived) == 7 and 123 not in derived


@pytest.mark.parametrize("coordination", ["independent", "feeder"])
def test_flat_single_feeder_grid_matches_neighborhood(coordination):
    fleet = build_fleet(4, seed=9, cp_fidelity="ideal", horizon=HORIZON)
    grid = build_grid([{"homes": 4}], seed=9, cp_fidelity="ideal",
                      horizon=HORIZON)
    flat = execute_fleet(fleet, coordination=coordination)
    nested = execute_grid(grid, coordination=coordination)
    [feeder] = nested.feeders
    assert series_bits(feeder.feeder_w) == series_bits(flat.feeder_w)
    for grid_home, flat_home in zip(feeder.homes, flat.homes):
        assert series_bits(grid_home.load_w) == \
            series_bits(flat_home.load_w)
    if coordination == "feeder":
        assert feeder.coordination.offsets_s == \
            flat.coordination.offsets_s


def test_substation_mode_with_one_feeder_equals_feeder_mode():
    grid = build_grid([{"homes": 4}], seed=9, cp_fidelity="ideal",
                      horizon=HORIZON)
    feeder_only = execute_grid(grid, coordination="feeder")
    substation = execute_grid(grid, coordination="substation")
    # Negotiating over a single profile finds no improvement; the guard
    # declines, and the substation carries the feeder-tier profile.
    assert series_bits(substation.substation_w) == \
        series_bits(feeder_only.substation_w)


@pytest.mark.parametrize("coordination", ["feeder", "substation"])
def test_envelope_prereduction_never_changes_bits(
        coordination, shutdown_pools_after):
    """Shard workers pre-reduce per-home envelopes; the parent path
    computes them itself — both must negotiate identical offsets."""
    grid = small_grid(seed=17)
    sharded = execute_grid(grid, coordination=coordination, shard_size=2)
    per_home = execute_grid(grid, coordination=coordination, shard_size=0)
    assert grid_digest(sharded) == grid_digest(per_home)


# -- the spec surface ------------------------------------------------------

def grid_spec_document(coordination="substation"):
    return ExperimentSpec(
        name="grid-invariants", kind="grid",
        scenario=ScenarioSpec(horizon_s=HORIZON),
        control=ControlSpec(cp_fidelity="ideal"),
        seeds=(7,),
        grid=GridPlan(feeders=(FeederPlan(homes=2),
                               FeederPlan(homes=3, mix="mixed")),
                      coordination=coordination))


def test_grid_spec_json_round_trip_is_lossless():
    spec = grid_spec_document()
    validate(spec)
    loaded = ExperimentSpec.from_json(spec.to_json())
    assert loaded == spec
    assert spec_hash(loaded) == spec_hash(spec)


def test_grid_spec_rejects_bad_sections():
    spec = grid_spec_document()
    with pytest.raises(SpecError):
        validate(replace(spec, grid=None))
    with pytest.raises(SpecError):
        validate(replace(
            spec, grid=GridPlan(feeders=(FeederPlan(mix="nowhere"),))))
    with pytest.raises(SpecError):
        validate(replace(
            spec, grid=GridPlan(feeders=(FeederPlan(homes=0),))))
    with pytest.raises(SpecError):
        validate(replace(spec, grid=GridPlan(
            feeders=spec.grid.feeders, coordination="telepathy")))
    with pytest.raises(SpecError):
        validate(replace(spec, seeds=(1, 2)))


def test_grid_spec_runs_end_to_end():
    result = run(grid_spec_document())
    payload = result.grid
    assert payload.n_feeders == 2 and payload.n_homes == 5
    assert payload.coordination_mode == "substation"
    assert list(payload.independent_w.values) == fsum_reference(payload)
    assert "Substation aggregate" in result.render()


def test_execute_grid_rejects_unknown_mode():
    with pytest.raises(ValueError, match="coordination must be one of"):
        execute_grid(small_grid(), coordination="psychic")


def test_grid_render_smoke():
    result = execute_grid(small_grid(), coordination="substation")
    text = result.render()
    assert "feeder0" in text and "feeder1" in text
    assert "Substation aggregate" in text
    assert "Substation coordination" in text
