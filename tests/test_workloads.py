"""Arrival processes and scenario presets."""

import numpy as np
import pytest

from repro.sim import RandomStreams, Simulator
from repro.sim.units import HOUR, MINUTE
from repro.workloads import (
    BatchArrivals,
    MmppArrivals,
    PoissonArrivals,
    burst_scenario,
    fixed_demand,
    geometric_demand,
    paper_scenario,
    stress_scenario,
    PAPER_RATES,
)


def collect_arrivals(process_cls, rate, horizon=10 * HOUR, seed=1, **kwargs):
    sim = Simulator()
    received = []
    sinks = {d: received.append for d in range(26)}
    process = process_cls(sim, rate, list(range(26)), sinks,
                          RandomStreams(seed).stream("arrivals"), **kwargs)
    sim.spawn(process.run())
    sim.run(until=horizon)
    return process, received


def test_poisson_rate_matches_nominal():
    process, received = collect_arrivals(PoissonArrivals, 30.0)
    hours = 10.0
    observed_rate = len(received) / hours
    assert observed_rate == pytest.approx(30.0, rel=0.15)


def test_poisson_devices_roughly_uniform():
    process, received = collect_arrivals(PoissonArrivals, 60.0)
    counts = np.array(list(process.stats.per_device.values()))
    assert counts.sum() == len(received)
    assert counts.min() > 0  # every device gets some share over 600 reqs


def test_poisson_requests_carry_arrival_time():
    _, received = collect_arrivals(PoissonArrivals, 30.0, horizon=HOUR)
    times = [r.arrival_time for r in received]
    assert times == sorted(times)
    assert all(0 <= t <= HOUR for t in times)


def test_poisson_rejects_nonpositive_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        PoissonArrivals(sim, 0.0, [0], {0: lambda r: None},
                        RandomStreams(0).stream("x"))


def test_batch_arrivals_release_groups():
    process, received = collect_arrivals(BatchArrivals, 4.0,
                                         batch_size=5)
    assert len(received) % 5 == 0
    # batches share the same arrival instant
    times = {}
    for request in received:
        times.setdefault(request.arrival_time, 0)
        times[request.arrival_time] += 1
    assert all(count == 5 for count in times.values())


def test_batch_size_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BatchArrivals(sim, 1.0, [0], {0: lambda r: None},
                      RandomStreams(0).stream("x"), batch_size=0)


def test_mmpp_produces_more_variance_than_poisson():
    _, poisson = collect_arrivals(PoissonArrivals, 30.0, horizon=20 * HOUR)
    _, mmpp = collect_arrivals(MmppArrivals, 30.0, horizon=20 * HOUR,
                               busy_factor=8.0, mean_dwell_s=1800.0)

    def windowed_counts(requests):
        bins = np.zeros(int(20 * HOUR // (30 * MINUTE)))
        for request in requests:
            bins[min(int(request.arrival_time // (30 * MINUTE)),
                     len(bins) - 1)] += 1
        return bins

    var_poisson = windowed_counts(poisson).var()
    var_mmpp = windowed_counts(mmpp).var()
    assert var_mmpp > var_poisson


def test_fixed_demand():
    sampler = fixed_demand(3)
    rng = RandomStreams(0).stream("d")
    assert all(sampler(rng) == 3 for _ in range(10))
    with pytest.raises(ValueError):
        fixed_demand(0)


def test_geometric_demand_mean():
    sampler = geometric_demand(2.5)
    rng = RandomStreams(0).stream("d")
    draws = [sampler(rng) for _ in range(4000)]
    assert min(draws) >= 1
    assert np.mean(draws) == pytest.approx(2.5, rel=0.1)
    with pytest.raises(ValueError):
        geometric_demand(0.5)


def test_paper_scenario_parameters():
    scenario = paper_scenario("high")
    assert scenario.n_devices == 26
    assert scenario.device_power_w == 1000.0
    assert scenario.min_dcd == 15 * MINUTE
    assert scenario.max_dcp == 30 * MINUTE
    assert scenario.horizon == 350 * MINUTE
    assert scenario.arrival_rate_per_hour == 30.0
    assert PAPER_RATES == {"low": 4.0, "moderate": 18.0, "high": 30.0}


def test_paper_scenario_unknown_rate():
    with pytest.raises(KeyError):
        paper_scenario("extreme")


def test_scenario_with_rate():
    scenario = paper_scenario("high").with_rate(12.0)
    assert scenario.arrival_rate_per_hour == 12.0
    assert scenario.n_devices == 26


def test_scenario_with_rate_chained_does_not_accumulate_suffixes():
    """Regression: s.with_rate(4).with_rate(18) used to name itself
    ``...@4/h@18/h``; the suffix must be replaced, not stacked."""
    scenario = paper_scenario("low")
    chained = scenario.with_rate(4.0).with_rate(18.0)
    assert chained.name == "paper-low@18/h"
    assert chained.name.count("@") == 1
    assert chained.arrival_rate_per_hour == 18.0
    # Triple-chaining and fractional rates too.
    assert scenario.with_rate(4).with_rate(7.5).with_rate(30).name \
        == "paper-low@30/h"
    assert scenario.with_rate(7.5).name == "paper-low@7.5/h"
    assert scenario.with_rate(7.5).base_name == "paper-low"


def test_home_archetypes_and_fleet_mixes():
    from repro.workloads import FLEET_MIXES, HOME_ARCHETYPES
    for name, factory in HOME_ARCHETYPES.items():
        scenario = factory()
        assert scenario.name == name
        assert scenario.n_devices >= 2
        assert scenario.max_dcp >= scenario.min_dcd
    for mix, weights in FLEET_MIXES.items():
        assert weights, mix
        for archetype, weight in weights:
            assert archetype in HOME_ARCHETYPES
            assert weight > 0


def test_other_scenarios():
    assert stress_scenario(40).n_devices == 40
    assert burst_scenario(8).arrival_kind == "batch"
    assert burst_scenario(8).batch_size == 8
