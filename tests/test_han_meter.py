"""Smart meter aggregation and time-of-use tariffs."""

import pytest

from repro.han import SmartMeter, TariffBand, TimeOfUseTariff, \
    evening_peak_tariff, flat_tariff
from repro.han.appliance import Appliance
from repro.sim import Simulator
from repro.sim.units import HOUR


def test_meter_aggregates_appliances():
    sim = Simulator()
    meter = SmartMeter(sim)
    a = Appliance(sim, 1, "a", 1000.0, meter=meter.gauge)
    b = Appliance(sim, 2, "b", 500.0, meter=meter.gauge)
    a.turn_on()
    b.turn_on()
    assert meter.current_load_w == 1500.0
    assert meter.load_kw_at(0.0) == pytest.approx(1.5)


def test_meter_energy_integration():
    sim = Simulator()
    meter = SmartMeter(sim)
    heater = Appliance(sim, 1, "h", 2000.0, meter=meter.gauge)

    def run(sim):
        heater.turn_on()
        yield sim.timeout(HOUR)
        heater.turn_off()

    sim.spawn(run(sim))
    sim.run(until=2 * HOUR)
    assert meter.energy_kwh(0.0, 2 * HOUR) == pytest.approx(2.0)


def test_tariff_bands_must_tile_day():
    with pytest.raises(ValueError):
        TimeOfUseTariff([TariffBand(0.0, 10.0, 0.1)])
    with pytest.raises(ValueError):
        TimeOfUseTariff([TariffBand(5.0, 24 * HOUR, 0.1)])


def test_band_validation():
    with pytest.raises(ValueError):
        TariffBand(10.0, 5.0, 0.1)
    with pytest.raises(ValueError):
        TariffBand(0.0, 10.0, -0.1)


def test_flat_tariff_price():
    tariff = flat_tariff(0.25)
    assert tariff.price_at(0.0) == 0.25
    assert tariff.price_at(100 * HOUR) == 0.25  # wraps across days


def test_evening_peak_pricing():
    tariff = evening_peak_tariff(base=0.10, peak=0.30)
    assert tariff.price_at(12 * HOUR) == 0.10
    assert tariff.price_at(18 * HOUR) == 0.30
    assert tariff.price_at(22 * HOUR) == 0.10
    # next day's evening is peak again
    assert tariff.price_at(42 * HOUR) == 0.30


def test_tariff_cost_integration():
    sim = Simulator()
    meter = SmartMeter(sim)
    heater = Appliance(sim, 1, "h", 1000.0, meter=meter.gauge)

    def run(sim):
        heater.turn_on()
        yield sim.timeout(2 * HOUR)
        heater.turn_off()

    sim.spawn(run(sim))
    sim.run(until=3 * HOUR)
    cost = flat_tariff(0.20).cost(meter.load_series_w, 0.0, 3 * HOUR)
    # 1 kW x 2 h x 0.20 = 0.40
    assert cost == pytest.approx(0.40, rel=1e-3)


def test_tariff_cost_rejects_empty_interval():
    sim = Simulator()
    meter = SmartMeter(sim)
    with pytest.raises(ValueError):
        flat_tariff(0.1).cost(meter.load_series_w, 10.0, 10.0)
