"""PR 6 hardening of the batched series transport.

Locks the two multi-process bug fixes in
:mod:`repro.neighborhood.transport`:

* ``pack_series`` zero-fills its padding slot — repeated packs of the
  same series (including the empty frame, whose block is *all*
  padding) are byte-identical, so digests/dedup over pickled frames
  are sound;
* ``unpack_series`` surfaces a reaped shared-memory segment (worker
  crashed between pack and unpack — the service re-lease scenario) as
  a typed :class:`~repro.neighborhood.transport.FrameUnavailableError`,
  and closes the segment when mapping fails after attach so the fd
  doesn't leak.
"""

import numpy as np
import pytest

from repro.neighborhood.transport import (
    FrameUnavailableError,
    SeriesFrame,
    pack_series,
    shared_memory_available,
    unpack_series,
)
from repro.sim.monitor import StepSeries


def series(name, points):
    built = StepSeries(name)
    for t, v in points:
        built.record(t, v)
    return built


def sample_series():
    return [series("a", [(0.0, 1.0), (5.0, 0.0)]),
            series("b", []),
            series("c", [(1.5, 2.5)])]


needs_shm = pytest.mark.skipif(not shared_memory_available(),
                               reason="no POSIX shared memory here")


# -- padding determinism (the np.empty bug) -------------------------------

def test_empty_frame_blob_is_deterministic():
    # All-padding block: before the fix this shipped one uninitialized
    # float, making consecutive packs byte-unequal.
    blobs = {pack_series([], "pickle").blob for _ in range(20)}
    assert blobs == {np.zeros((2, 1)).tobytes()}


def test_repeated_packs_are_byte_identical():
    first = pack_series(sample_series(), "pickle")
    for _ in range(10):
        again = pack_series(sample_series(), "pickle")
        assert again.blob == first.blob
        assert again.names == first.names
        assert again.lengths == first.lengths


def test_empty_frame_roundtrips():
    frame = pack_series([series("only", [])], "pickle")
    (rebuilt,) = unpack_series(frame)
    assert rebuilt.name == "only"
    assert len(rebuilt) == 0


@needs_shm
def test_shm_empty_frame_roundtrips():
    frame = pack_series([], "shm")
    assert frame.shm_name is not None
    assert unpack_series(frame) == []


# -- reaped-segment handling (the FileNotFoundError bug) ------------------

@needs_shm
def test_reaped_segment_raises_typed_error():
    frame = pack_series(sample_series(), "shm")
    from multiprocessing import shared_memory
    victim = shared_memory.SharedMemory(name=frame.shm_name)
    victim.unlink()  # simulate the crashed worker's segment being reaped
    victim.close()
    with pytest.raises(FrameUnavailableError) as caught:
        unpack_series(frame)
    assert caught.value.shm_name == frame.shm_name
    assert "re-execute the shard" in str(caught.value)
    assert isinstance(caught.value.__cause__, FileNotFoundError)


def test_missing_segment_raises_typed_error_without_shm_probe():
    # A frame naming a segment that never existed: same typed error,
    # regardless of platform shm support (attach just fails).
    frame = SeriesFrame(names=("x",), lengths=(1,),
                        shm_name="repro-test-no-such-segment")
    if not shared_memory_available():
        pytest.skip("no POSIX shared memory here")
    with pytest.raises(FrameUnavailableError):
        unpack_series(frame)


@needs_shm
def test_map_failure_closes_segment(monkeypatch):
    # A segment smaller than the frame's layout claims: the np.ndarray
    # mapping raises, and unpack must close() the attached segment so
    # the fd doesn't leak for the life of the process.
    frame = pack_series(sample_series(), "shm")
    lying = SeriesFrame(names=frame.names,
                        lengths=tuple(length + 1000
                                      for length in frame.lengths),
                        shm_name=frame.shm_name)
    from multiprocessing import shared_memory
    closed = []
    original_close = shared_memory.SharedMemory.close

    def recording_close(self):
        closed.append(self.name)
        return original_close(self)

    monkeypatch.setattr(shared_memory.SharedMemory, "close",
                        recording_close)
    with pytest.raises(FrameUnavailableError) as caught:
        unpack_series(lying)
    assert frame.shm_name in closed
    assert "cannot map" in str(caught.value)
    monkeypatch.undo()
    # The failed unpack already unlinked the segment; attaching again
    # now reports it gone (nothing left behind in /dev/shm).
    with pytest.raises(FrameUnavailableError):
        unpack_series(frame)
