"""Request lifecycle objects and the appliance catalog."""

import pytest

from repro.han import CATALOG, TYPE1_CATALOG, TYPE2_CATALOG, lookup
from repro.han.catalog import CatalogEntry
from repro.han.requests import RequestAnnouncement, RequestState, UserRequest


def test_request_defaults():
    request = UserRequest(device_id=3, arrival_time=10.0)
    assert request.state is RequestState.PENDING
    assert request.demand_cycles == 1
    assert request.waiting_time is None


def test_request_ids_unique_and_ordered():
    a = UserRequest(device_id=1, arrival_time=0.0)
    b = UserRequest(device_id=1, arrival_time=0.0)
    assert b.request_id > a.request_id
    assert a.sort_key < b.sort_key


def test_request_sort_key_orders_by_arrival_first():
    early = UserRequest(device_id=1, arrival_time=5.0)
    late = UserRequest(device_id=2, arrival_time=9.0)
    assert early.sort_key < late.sort_key


def test_request_rejects_zero_demand():
    with pytest.raises(ValueError):
        UserRequest(device_id=1, arrival_time=0.0, demand_cycles=0)


def test_waiting_time_computed():
    request = UserRequest(device_id=1, arrival_time=100.0)
    request.first_burst_at = 400.0
    assert request.waiting_time == pytest.approx(300.0)


def test_announcement_of_request():
    request = UserRequest(device_id=4, arrival_time=50.0, demand_cycles=2)
    announcement = RequestAnnouncement.of(request, power_w=1000.0)
    assert announcement.device_id == 4
    assert announcement.demand_cycles == 2
    assert announcement.power_w == 1000.0
    assert announcement.sort_key == request.sort_key


def test_catalog_split_by_type():
    assert all(e.appliance_type == 2 for e in TYPE2_CATALOG.values())
    assert all(e.appliance_type == 1 for e in TYPE1_CATALOG.values())
    assert set(CATALOG) == set(TYPE1_CATALOG) | set(TYPE2_CATALOG)


def test_catalog_paper_unit_load():
    entry = lookup("paper_unit_load")
    assert entry.power_w == 1000.0
    assert entry.duty_spec.min_dcd == 15 * 60.0
    assert entry.duty_spec.max_dcp == 30 * 60.0


def test_lookup_unknown_is_helpful():
    with pytest.raises(KeyError, match="catalog has"):
        lookup("flux_capacitor")


def test_type2_entry_requires_duty_spec():
    with pytest.raises(ValueError):
        CatalogEntry("bad", 2, 100.0, duty_spec=None)


def test_entry_type_validation():
    with pytest.raises(ValueError):
        CatalogEntry("bad", 3, 100.0)
