"""CoordinatedAgent behaviour with an ideal CP."""

import pytest

from repro.core import CoordinatedAgent, SchedulerConfig
from repro.han import DutyCycleSpec, SmartMeter, Type2Appliance
from repro.han.requests import RequestState, UserRequest
from repro.sim import Simulator
from repro.st import IdealCP

SPEC = DutyCycleSpec(min_dcd=900.0, max_dcp=1800.0)


class Harness:
    """n coordinated agents wired to an IdealCP."""

    def __init__(self, n=4, period=2.0):
        self.sim = Simulator()
        self.meter = SmartMeter(self.sim)
        config = SchedulerConfig(spec=SPEC)
        self.agents = {}
        for device_id in range(n):
            appliance = Type2Appliance(self.sim, device_id,
                                       f"dev-{device_id}", 1000.0, SPEC,
                                       meter=self.meter.gauge)
            agent = CoordinatedAgent(self.sim, appliance, config)
            self.agents[device_id] = agent
            self.sim.spawn(agent.execution_plane())
        self.cp = IdealCP(self.sim, self, list(range(n)), period=period)
        self.cp.start()

    def cp_payload(self, node, round_index):
        return self.agents[node].cp_payload(node, round_index)

    def cp_deliver(self, node, packets, round_index):
        self.agents[node].cp_deliver(node, packets, round_index)

    def request(self, device_id, at, cycles=1):
        request = UserRequest(device_id=device_id, arrival_time=at,
                              demand_cycles=cycles)

        def emit(sim):
            yield sim.timeout(at - sim.now)
            self.agents[device_id].on_request(request)

        self.sim.spawn(emit(self.sim))
        return request


def test_request_admitted_within_one_round():
    harness = Harness()
    request = harness.request(0, at=1.0)
    harness.sim.run(until=10.0)
    assert request.state in (RequestState.ADMITTED, RequestState.RUNNING)
    assert request.admitted_at is not None
    assert request.admitted_at - request.arrival_time <= 2.0 + 1e-9


def test_request_executes_full_burst():
    harness = Harness()
    request = harness.request(0, at=1.0)
    harness.sim.run(until=3600.0)
    assert request.state is RequestState.COMPLETED
    appliance = harness.agents[0].device
    assert appliance.total_on_time() == pytest.approx(SPEC.min_dcd)
    assert request.first_burst_at - request.arrival_time <= SPEC.max_dcp


def test_all_agents_learn_request():
    harness = Harness()
    harness.request(0, at=1.0)
    harness.sim.run(until=5.0)
    for agent in harness.agents.values():
        status = agent.view.status_of(0)
        assert status is not None and status.active


def test_views_converge_after_round():
    harness = Harness()
    harness.request(0, at=1.0)
    harness.request(2, at=1.5)
    harness.sim.run(until=7.0)
    digests = {agent.view.consistency_digest()
               for agent in harness.agents.values()}
    assert len(digests) == 1


def test_two_simultaneous_requests_serialized():
    harness = Harness()
    first = harness.request(0, at=1.0)
    second = harness.request(1, at=1.0)
    harness.sim.run(until=2 * SPEC.max_dcp + 100.0)
    assert first.state is RequestState.COMPLETED
    assert second.state is RequestState.COMPLETED
    # their ON intervals must not overlap (load never exceeded 1 device)
    load = harness.meter.load_series_w
    assert load.maximum(0.0, harness.sim.now) == pytest.approx(1000.0)


def test_multi_cycle_demand_runs_once_per_period():
    harness = Harness()
    request = harness.request(0, at=1.0, cycles=3)
    harness.sim.run(until=4 * SPEC.max_dcp)
    assert request.state is RequestState.COMPLETED
    appliance = harness.agents[0].device
    assert appliance.bursts_completed == 3
    bursts = appliance.history
    for earlier, later in zip(bursts, bursts[1:]):
        gap = later.on_at - earlier.on_at
        assert gap == pytest.approx(SPEC.max_dcp)


def test_extension_request_adds_cycles():
    harness = Harness()
    first = harness.request(0, at=1.0, cycles=1)
    second = harness.request(0, at=5.0, cycles=1)
    harness.sim.run(until=3 * SPEC.max_dcp)
    assert first.state is RequestState.COMPLETED
    assert second.state is RequestState.COMPLETED
    assert harness.agents[0].device.bursts_completed == 2


def test_agent_status_reflects_lifecycle():
    harness = Harness(n=1)
    agent = harness.agents[0]
    assert not agent.is_active
    harness.request(0, at=1.0)
    harness.sim.run(until=10.0)
    assert agent.is_active
    assert agent.remaining_cycles == 1
    harness.sim.run(until=SPEC.max_dcp + SPEC.min_dcd + 60.0)
    assert not agent.is_active
    assert agent.remaining_cycles == 0


def test_dirty_flag_controls_payload():
    harness = Harness(n=2)
    agent = harness.agents[0]
    harness.sim.run(until=3.0)  # initial shares happen
    assert agent.cp_payload(0, 5) is None  # nothing new
    assert agent.cp_payload(0, -1) is not None  # refresh always answers
    harness.request(0, at=4.0)
    harness.sim.run(until=4.5)
    assert agent.cp_payload(0, 6) is not None  # announcement pending
