"""Feeder-level collaboration plane: rotation algebra, the decentralized
claim rounds, conservation invariants, parallel determinism, and a
golden-style lock on the diversity-factor uplift.

The conservation tests pin the plane's contract (see
``docs/coordination.md``): coordination re-phases homes, it never changes
what any home consumes — per-home energy and per-home peak are invariant,
and the guard never lets a plan regress the realized coincident peak.
The golden uplift lock follows the policy in ``docs/regression-policy.md``.
"""

import math

import pytest

from repro.neighborhood import (
    FeederConfig,
    build_fleet,
    negotiate_offsets,
    phase_envelope,
    rotate_series,
    execute_fleet,
)
from repro.sim.monitor import StepSeries
from repro.sim.units import MINUTE

HORIZON = 90 * MINUTE

#: Golden diversity-factor uplift of the locked fleet below (seed 5,
#: 6 homes, "mixed", ideal CP, 90 min).  Deterministic reruns match to
#: rounding; re-pin only per docs/regression-policy.md.
GOLDEN_UPLIFT = 1.230
GOLDEN_UPLIFT_TOL = 0.02


def locked_fleet():
    """The fixed fleet/seed the golden uplift is pinned against."""
    return build_fleet(6, mix="mixed", seed=5, cp_fidelity="ideal",
                       horizon=HORIZON)


@pytest.fixture(scope="module")
def coordinated():
    """One coordinated run of the locked fleet, shared by every test."""
    return execute_fleet(locked_fleet(), jobs=1, coordination="feeder")


# -- rotation algebra ---------------------------------------------------------


def square_wave(period=10.0, high=1000.0, duty=0.4, horizon=100.0,
                phase=0.0):
    series = StepSeries("square")
    t = phase
    while t < horizon:
        series.record(t, high)
        series.record(min(t + duty * period, horizon), 0.0)
        t += period
    return series


def test_rotate_series_wraps_exactly():
    series = StepSeries("s")
    series.record(0.0, 100.0)
    series.record(60.0, 0.0)  # one burst in [0, 60)
    rotated = rotate_series(series, 80.0, horizon=100.0)
    # burst occupies [80, 100) and wraps into [0, 40)
    assert rotated.at(0.0) == 100.0
    assert rotated.at(39.0) == 100.0
    assert rotated.at(41.0) == 0.0
    assert rotated.at(79.0) == 0.0
    assert rotated.at(81.0) == 100.0


@pytest.mark.parametrize("offset", [0.0, 7.5, 33.0, 99.0, 100.0, 140.0])
def test_rotation_conserves_energy_and_peak(offset):
    series = square_wave()
    rotated = rotate_series(series, offset, horizon=100.0)
    assert rotated.integral(0.0, 100.0) == pytest.approx(
        series.integral(0.0, 100.0), rel=1e-12)
    assert rotated.maximum(0.0, 100.0) == series.maximum(0.0, 100.0)
    assert rotated.minimum(0.0, 100.0) == series.minimum(0.0, 100.0)


def test_rotation_by_zero_is_identity():
    series = square_wave()
    rotated = rotate_series(series, 0.0, horizon=100.0)
    for t in [0.0, 3.9, 4.1, 55.0, 99.5]:
        assert rotated.at(t) == series.at(t)


def test_rotation_shifts_values():
    series = square_wave()  # high on [0, 4), [10, 14), ...
    rotated = rotate_series(series, 5.0, horizon=100.0)
    for t in [0.0, 3.0, 10.0, 47.0]:
        assert rotated.at((t + 5.0) % 100.0) == series.at(t)


# -- envelopes ----------------------------------------------------------------


def test_phase_envelope_upper_bounds_the_series():
    series = square_wave(period=13.0, duty=0.31)
    envelope = phase_envelope(series, horizon=100.0, bin_s=6.0)
    assert len(envelope) == math.ceil(100.0 / 6.0)
    for i, value in enumerate(envelope):
        for t in (i * 6.0, i * 6.0 + 3.0, i * 6.0 + 5.9):
            if t < 100.0:
                assert value >= series.at(t) - 1e-9


def test_phase_envelope_tight_on_aligned_series():
    series = StepSeries("s")
    series.record(0.0, 500.0)
    series.record(10.0, 0.0)
    series.record(20.0, 800.0)
    series.record(30.0, 0.0)
    assert phase_envelope(series, horizon=40.0, bin_s=10.0) \
        == (500.0, 0.0, 800.0, 0.0)


# -- the claim rounds ---------------------------------------------------------


def test_negotiation_staggers_identical_homes():
    """Two same-phase square homes end up in disjoint phases."""
    env = (1000.0, 1000.0, 0.0, 0.0)  # half-duty, aligned
    claims, stats, sweeps = negotiate_offsets(
        [0, 1], {0: env, 1: env}, shifts=4, config=FeederConfig())
    assert sorted(claims) == [0, 1]
    assert abs(claims[0] - claims[1]) == 2  # opposite phases
    assert stats.rounds_total >= 2
    assert sweeps >= 1


def test_negotiation_converges_and_stops():
    env_a = (900.0, 0.0, 0.0, 900.0)
    env_b = (0.0, 700.0, 700.0, 0.0)
    claims, _stats, sweeps = negotiate_offsets(
        [0, 1], {0: env_a, 1: env_b}, shifts=4,
        config=FeederConfig(max_sweeps=6))
    # Already perfectly staggered: nobody should move, and the plane
    # should notice within two sweeps.
    assert claims == {0: 0, 1: 0}
    assert sweeps <= 2


# -- conservation invariants on a real fleet ----------------------------------


def test_coordination_never_increases_per_home_energy(coordinated):
    """The plane re-phases homes; it cannot make any home consume more."""
    for result, contribution in zip(coordinated.homes,
                                    coordinated.contributions_w):
        original = result.load_w.integral(0.0, coordinated.horizon)
        rotated = contribution.integral(0.0, coordinated.horizon)
        assert rotated <= original + 1e-6
        assert rotated == pytest.approx(original, rel=1e-9)


def test_coordination_preserves_per_home_peaks(coordinated):
    for result, contribution in zip(coordinated.homes,
                                    coordinated.contributions_w):
        assert contribution.maximum(0.0, coordinated.horizon) \
            == result.load_w.maximum(0.0, coordinated.horizon)


def test_feeder_equals_sum_of_rotated_homes(coordinated):
    probe_times = list(coordinated.feeder_w.times)[:300]
    probe_times += [t + 7.5 for t in probe_times[:100]]
    for t in probe_times:
        expected = math.fsum(series.at(t)
                             for series in coordinated.contributions_w)
        assert coordinated.feeder_w.at(t) == pytest.approx(expected,
                                                           abs=1e-9)


def test_guard_never_regresses_the_feeder(coordinated):
    plan = coordinated.coordination
    coordinated_peak = plan.coordinated_w.maximum(0.0, coordinated.horizon)
    independent_peak = plan.independent_w.maximum(0.0, coordinated.horizon)
    assert coordinated_peak <= independent_peak + 1e-9
    comparison = coordinated.comparison()
    assert comparison.coordinated.diversity_factor \
        >= comparison.independent.diversity_factor - 1e-9


def test_offsets_lie_inside_the_epoch(coordinated):
    plan = coordinated.coordination
    for offset in plan.offsets_s:
        assert 0.0 <= offset < plan.epoch


def test_homes_are_untouched_by_coordination(coordinated):
    """Home runs are bit-identical with and without the feeder plane."""
    independent = execute_fleet(locked_fleet(), jobs=1)
    for a, b in zip(independent.homes, coordinated.homes):
        assert a.load_w.times == b.load_w.times
        assert a.load_w.values == b.load_w.values
        assert a.bursts == b.bursts
    assert independent.feeder_w.times \
        == coordinated.coordination.independent_w.times
    assert independent.feeder_w.values \
        == coordinated.coordination.independent_w.values
    assert independent.comparison() is None


# -- parallel determinism -----------------------------------------------------


def test_coordinated_run_bit_identical_1_vs_n_workers(coordinated):
    fanned = execute_fleet(locked_fleet(), jobs=3,
                              coordination="feeder")
    assert fanned.coordination.offsets_s \
        == coordinated.coordination.offsets_s
    assert fanned.coordination.applied == coordinated.coordination.applied
    assert fanned.feeder_w.times == coordinated.feeder_w.times
    assert fanned.feeder_w.values == coordinated.feeder_w.values
    for a, b in zip(fanned.contributions_w, coordinated.contributions_w):
        assert a.times == b.times
        assert a.values == b.values


# -- golden uplift lock -------------------------------------------------------


def test_diversity_uplift_matches_golden(coordinated):
    """The locked fleet's uplift stays pinned (docs/regression-policy.md)."""
    comparison = coordinated.comparison()
    assert coordinated.coordination.applied
    assert comparison.diversity_uplift == pytest.approx(
        GOLDEN_UPLIFT, abs=GOLDEN_UPLIFT_TOL), (
        "feeder-coordination uplift drifted; if intentional, re-pin "
        "GOLDEN_UPLIFT following docs/regression-policy.md")
    assert comparison.coordinated.diversity_factor \
        > comparison.independent.diversity_factor
    assert comparison.energy_drift_pct < 1e-9


# -- mode plumbing ------------------------------------------------------------


def test_unknown_coordination_mode_rejected():
    with pytest.raises(ValueError, match="coordination must be one of"):
        execute_fleet(locked_fleet(), coordination="bogus")


def test_single_home_fleet_is_a_noop():
    fleet = build_fleet(1, mix="suburb", seed=3, cp_fidelity="ideal",
                        horizon=HORIZON)
    result = execute_fleet(fleet, coordination="feeder")
    plan = result.coordination
    assert plan.offsets_s == (0.0,)
    assert not plan.applied
    assert result.feeder_w.times == plan.independent_w.times
    assert result.feeder_w.values == plan.independent_w.values
    assert result.comparison().diversity_uplift == pytest.approx(1.0)
