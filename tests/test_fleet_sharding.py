"""Fleet-scale execution: shard invariance, batched transport, partials.

The load-bearing lock of PR 5: sharding, shared-memory transport and
pre-reduced aggregation are *execution strategies*, so every
``(shard_size, jobs, transport, coordination)`` combination must produce
**bit-identical** results — value digests, not approximations.  The
exact-summation core (`aggregate._exact_row_sums`) is additionally
checked against a brute-force ``math.fsum`` reference on randomized
series.
"""

import hashlib
import math
import pickle

import numpy as np
import pytest

from repro.neighborhood import (
    SeriesPartial,
    build_fleet,
    combine_partials,
    execute_fleet,
    partial_sum,
    plan_shards,
    shard_fleet,
    sum_series,
)
from repro.neighborhood.aggregate import dedup_records
from repro.neighborhood.shard import AUTO_SHARD_MIN_HOMES
from repro.neighborhood.transport import (
    pack_series,
    pick_transport,
    shared_memory_available,
    unpack_series,
)
from repro.experiments.runner import WorkerFailure
from repro.sim.monitor import StepSeries
from repro.sim.units import MINUTE

HORIZON = 30 * MINUTE
N_HOMES = 12


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(N_HOMES, mix="mixed", seed=17, cp_fidelity="ideal",
                       horizon=HORIZON)


def result_digest(result) -> str:
    """Value digest over everything a consumer can observe."""
    parts = [(tuple(home.load_w.times), tuple(home.load_w.values),
              tuple(sorted(home.bursts.items())),
              len(home.requests)) for home in result.homes]
    parts.append((tuple(result.feeder_w.times),
                  tuple(result.feeder_w.values)))
    parts.append(repr(result.feeder_stats()))
    parts.append(repr(result.home_stats()))
    if result.coordination is not None:
        parts.append((result.coordination.offsets_s,
                      result.coordination.sweeps,
                      result.coordination.cp_stats.rounds_total))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


# -- the headline lock: shard invariance --------------------------------------


@pytest.mark.parametrize("coordination", ["independent", "feeder"])
def test_results_bit_identical_across_shard_sizes_and_jobs(
        fleet, coordination, shutdown_pools_after):
    """Digests equal for shard sizes {1, 8, N} x jobs {1, 4} x per-home."""
    reference = result_digest(execute_fleet(fleet, jobs=1,
                                            coordination=coordination,
                                            shard_size=0))
    for shard_size in (1, 8, N_HOMES):
        for jobs in (1, 4):
            run = execute_fleet(fleet, jobs=jobs,
                                coordination=coordination,
                                shard_size=shard_size)
            assert result_digest(run) == reference, \
                (coordination, shard_size, jobs)


def test_transports_bit_identical(fleet, monkeypatch,
                                  shutdown_pools_after):
    """The shm frame and the pickle-blob fallback carry the same bits."""
    digests = set()
    for transport in ("shm", "pickle"):
        monkeypatch.setenv("REPRO_FLEET_TRANSPORT", transport)
        run = execute_fleet(fleet, jobs=2, shard_size=4)
        digests.add(result_digest(run))
    assert len(digests) == 1


# -- shard planning -----------------------------------------------------------


def test_shard_fleet_slices_preserve_homes(fleet):
    shards = shard_fleet(fleet, 5)
    assert [s.n_homes for s in shards] == [5, 5, 2]
    reassembled = tuple(home for shard in shards for home in shard.homes)
    assert reassembled == fleet.homes
    assert shards[1].name == f"{fleet.name}/shard1"


def test_small_fleets_stay_per_home_by_default(fleet):
    assert fleet.n_homes < AUTO_SHARD_MIN_HOMES
    assert plan_shards(fleet) is None
    assert plan_shards(fleet, shard_size=0) is None


def test_auto_sharding_kicks_in_at_fleet_scale(fleet):
    big = build_fleet(2 * AUTO_SHARD_MIN_HOMES + 2, mix="suburb", seed=1)
    auto = plan_shards(big)
    assert auto is not None and len(auto) > 1
    assert tuple(home for s in auto for home in s.fleet.homes) == big.homes
    # jobs-aware sizing: several shards per worker for load balancing
    fanned = plan_shards(big, jobs=4)
    assert len(fanned) >= len(auto)
    # explicit size wins; in-process shards carry no transport
    forced = plan_shards(big, shard_size=16)
    assert [s.fleet.n_homes for s in forced] == [16] * 8 + [2]
    assert all(s.transport is None for s in forced)
    crossed = plan_shards(big, shard_size=16, jobs=2)
    assert all(s.transport in ("shm", "pickle") for s in crossed)


def test_bad_shard_size_rejected(fleet):
    with pytest.raises(ValueError, match="shard_size"):
        plan_shards(fleet, shard_size=-3)
    with pytest.raises(ValueError, match="shard_size"):
        shard_fleet(fleet, 0)


def test_worker_failure_names_the_failing_home_through_shards():
    from dataclasses import replace
    fleet = build_fleet(6, mix="mixed", seed=13, cp_fidelity="ideal",
                        horizon=HORIZON)
    victim = fleet.homes[3]
    homes = list(fleet.homes)
    homes[3] = replace(victim, scenario=replace(victim.scenario,
                                                arrival_kind="bogus"))
    poisoned = replace(fleet, homes=tuple(homes))
    with pytest.raises(WorkerFailure, match="home003"):
        execute_fleet(poisoned, jobs=1, shard_size=2)


# -- batched transport --------------------------------------------------------


def random_series(rng, name="s", max_events=60):
    series = StepSeries(name)
    t = 0.0
    for _ in range(int(rng.integers(0, max_events))):
        t += float(rng.choice([2.0, 2.0, 7.5, 0.5 * rng.random()]))
        series.record(t, float(rng.choice(
            [0.0, 1500.0, 1500.0 * (1.0 + 0.1 * rng.random()),
             2.0 * rng.random()])))
    return series


@pytest.mark.parametrize("transport", ["shm", "pickle"])
def test_frame_round_trip_is_lossless(transport):
    if transport == "shm" and not shared_memory_available():
        pytest.skip("no shared memory on this platform")
    rng = np.random.default_rng(7)
    group = [random_series(rng, f"h{i}") for i in range(15)]
    frame = pickle.loads(pickle.dumps(pack_series(group, transport)))
    out = unpack_series(frame)
    for original, rebuilt in zip(group, out):
        assert rebuilt.name == original.name
        assert tuple(rebuilt.times) == tuple(original.times)
        assert tuple(rebuilt.values) == tuple(original.values)


def test_pick_transport_env_and_validation(monkeypatch):
    monkeypatch.setenv("REPRO_FLEET_TRANSPORT", "pickle")
    assert pick_transport() == "pickle"
    monkeypatch.delenv("REPRO_FLEET_TRANSPORT")
    assert pick_transport() in ("shm", "pickle")
    with pytest.raises(ValueError, match="transport"):
        pick_transport("carrier-pigeon")


# -- exact aggregation --------------------------------------------------------


def reference_sum(series_list, name="feeder"):
    """The pre-PR5 scalar definition: fsum per union event, record()."""
    out = StepSeries(name)
    gathered = [s._data()[0] for s in series_list if len(s)]
    if not gathered:
        return out
    events = np.unique(np.concatenate(gathered))
    sampled = np.empty((events.size, len(series_list)))
    for column, series in enumerate(series_list):
        sampled[:, column] = series.sample(events)
    for t, row in zip(events.tolist(), sampled):
        out.record(t, math.fsum(row.tolist()))
    return out


@pytest.mark.parametrize("seed", [3, 11])
def test_sum_series_matches_fsum_reference(seed):
    rng = np.random.default_rng(seed)
    for _ in range(30):
        group = [random_series(rng, f"h{i}")
                 for i in range(int(rng.integers(1, 25)))]
        reference = reference_sum(group)
        vectorized = sum_series(group)
        assert tuple(vectorized.times) == tuple(reference.times)
        assert tuple(vectorized.values) == tuple(reference.values)


@pytest.mark.parametrize("seed", [5, 23])
def test_combine_partials_invariant_to_partitioning(seed):
    rng = np.random.default_rng(seed)
    for _ in range(15):
        n = int(rng.integers(2, 25))
        group = [random_series(rng, f"h{i}") for i in range(n)]
        reference = reference_sum(group)
        for size in (1, 3, n):
            partials = [partial_sum(group[i:i + size])
                        for i in range(0, n, size)]
            combined = combine_partials(partials, group)
            assert tuple(combined.times) == tuple(reference.times), size
            assert tuple(combined.values) == tuple(reference.values), size


def test_combine_partials_empty_and_degenerate():
    assert len(combine_partials([])) == 0
    assert len(combine_partials([SeriesPartial.empty(3)])) == 0
    one = StepSeries("x")
    one.record(1.0, 5.0)
    combined = combine_partials([partial_sum([one]),
                                 SeriesPartial.empty(0)], [one])
    assert tuple(combined.times) == (1.0,)
    assert tuple(combined.values) == (5.0,)


def test_dedup_records_replicates_record_semantics():
    """Same-instant overwrites and no-change skips, the vectorized way.

    Streams must satisfy the documented (time, value)-lexsort
    precondition — unsorted groups are rejected, not mis-collapsed (see
    ``test_dedup_records_rejects_unsorted_streams``).
    """
    streams = [
        [(0.0, 5.0), (1.0, 5.0), (1.0, 7.0)],   # skip then append
        [(0.0, 5.0), (1.0, 5.0), (1.0, 5.0), (1.0, 7.0)],  # 3+ group
        [(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)],   # plain no-change skip
        [(0.0, 0.0)],
        [(2.0, 3.0), (2.0, 3.0)],
        [(0.0, 2.0), (1.0, 1.0), (1.0, 2.0)],   # append then overwrite
    ]
    for stream in streams:
        reference = StepSeries("r")
        for t, v in stream:
            reference.record(t, v)
        times, values = dedup_records(
            np.array([t for t, _ in stream]),
            np.array([v for _, v in stream]))
        assert tuple(times) == tuple(reference.times), stream
        assert tuple(values) == tuple(reference.values), stream


def test_from_arrays_behaves_like_recorded_series():
    source = StepSeries("s")
    for t, v in ((1.0, 2.0), (3.0, 0.0), (7.0, 4.0)):
        source.record(t, v)
    clone = StepSeries.from_arrays("s", *source._data())
    assert tuple(clone.times) == tuple(source.times)
    assert clone.at(3.5) == source.at(3.5)
    assert clone.integral(0.0, 8.0) == source.integral(0.0, 8.0)
    clone.record(9.0, 1.0)  # still a live, recordable series
    assert clone.at(9.5) == 1.0
    assert len(pickle.dumps(clone)) > 0


def test_failing_shard_does_not_strand_sibling_frames(monkeypatch,
                                                      shutdown_pools_after):
    """A failing home must not leak completed shards' shm segments."""
    import glob
    from dataclasses import replace
    if not shared_memory_available():
        pytest.skip("no shared memory on this platform")
    monkeypatch.setenv("REPRO_FLEET_TRANSPORT", "shm")
    fleet = build_fleet(6, mix="mixed", seed=13, cp_fidelity="ideal",
                        horizon=HORIZON)
    victim = fleet.homes[5]  # last shard fails; earlier ones complete
    homes = list(fleet.homes)
    homes[5] = replace(victim, scenario=replace(victim.scenario,
                                                arrival_kind="bogus"))
    poisoned = replace(fleet, homes=tuple(homes))
    before = set(glob.glob("/dev/shm/*"))
    with pytest.raises(WorkerFailure, match="home005"):
        execute_fleet(poisoned, jobs=2, shard_size=2)
    leaked = set(glob.glob("/dev/shm/*")) - before
    assert not leaked


def test_dedup_records_rejects_unsorted_streams():
    with pytest.raises(ValueError, match="lexsorted"):
        dedup_records(np.array([1.0, 0.5]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError, match="lexsorted"):
        dedup_records(np.array([1.0, 1.0]), np.array([7.0, 5.0]))


# -- the grid layer inherits the whole contract -------------------------------


def grid_value_digest(result) -> str:
    """Value digest over everything a grid consumer can observe."""
    parts = []
    for feeder in result.feeders:
        parts.extend((tuple(home.load_w.times), tuple(home.load_w.values))
                     for home in feeder.homes)
        parts.append((tuple(feeder.feeder_w.times),
                      tuple(feeder.feeder_w.values)))
        if feeder.coordination is not None:
            parts.append(feeder.coordination.offsets_s)
    parts.append((tuple(result.substation_w.times),
                  tuple(result.substation_w.values)))
    parts.append((tuple(result.independent_w.times),
                  tuple(result.independent_w.values)))
    if result.coordination is not None:
        parts.append(result.coordination.offsets_s)
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def test_grid_bit_identical_across_jobs_and_shard_sizes(
        shutdown_pools_after):
    """jobs {1, 4} x shard sizes {2, auto, per-home}: one digest."""
    from repro.neighborhood import build_grid, execute_grid
    grid = build_grid([{"homes": 6}, {"homes": 6, "mix": "mixed"}],
                      seed=3, cp_fidelity="ideal", horizon=HORIZON)
    reference = grid_value_digest(
        execute_grid(grid, jobs=1, coordination="substation",
                     shard_size=0))
    for jobs in (1, 4):
        for shard_size in (2, None, 0):
            probe = execute_grid(grid, jobs=jobs,
                                 coordination="substation",
                                 shard_size=shard_size)
            assert grid_value_digest(probe) == reference, \
                (jobs, shard_size)
