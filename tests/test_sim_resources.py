"""Resource and Store primitives."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_capacity_one_serializes():
    sim = Simulator()
    resource = Resource(sim)
    order = []

    def user(sim, tag, hold):
        request = yield from resource.acquire()
        order.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        request.release()
        order.append(("end", tag, sim.now))

    sim.spawn(user(sim, "a", 2.0))
    sim.spawn(user(sim, "b", 1.0))
    sim.run()
    assert order == [("start", "a", 0.0), ("end", "a", 2.0),
                     ("start", "b", 2.0), ("end", "b", 3.0)]


def test_resource_capacity_two_parallel():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    starts = []

    def user(sim, tag):
        request = yield from resource.acquire()
        starts.append((tag, sim.now))
        yield sim.timeout(1.0)
        request.release()

    for tag in range(3):
        sim.spawn(user(sim, tag))
    sim.run()
    assert starts == [(0, 0.0), (1, 0.0), (2, 1.0)]


def test_resource_counts():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    assert resource.count == 1
    assert resource.queue_length == 1
    first.release()
    assert resource.count == 1
    assert resource.queue_length == 0
    second.release()
    assert resource.count == 0
    sim.run()


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_cancel_waiting_request():
    sim = Simulator()
    resource = Resource(sim)
    holder = resource.request()
    waiter = resource.request()
    waiter.release()  # give up while queued
    holder.release()
    assert resource.count == 0
    assert resource.queue_length == 0
    sim.run()


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(sim):
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(5.0)
        store.put("late")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [("late", 5.0)]


def test_store_buffered_get_immediate():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    assert len(store) == 1
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((item, sim.now))

    sim.spawn(consumer(sim))
    sim.run()
    assert got == [("x", 0.0)]
    assert len(store) == 0


def test_store_drain():
    store = Store(Simulator())
    for i in range(4):
        store.put(i)
    assert store.drain() == [0, 1, 2, 3]
    assert len(store) == 0
