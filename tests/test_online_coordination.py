"""The online coordination loop: determinism, conservation, guards.

The acceptance contract of the PR 8 online plane, as tests:

* **bit-determinism** — an online run's coordinated profile, per-epoch
  offsets and telemetry digest are identical across jobs counts and
  shard sizes (execution strategy never leaks into results);
* **conservation** — rotation permutes segments, so total energy is
  conserved *exactly* (fsum-correct, drift ``== 0.0``), whatever the
  forecaster;
* **per-epoch guard** — no epoch's coordinated peak ever exceeds that
  epoch's independent peak, for any forecaster including heavily noisy
  ones;
* **degenerate-epoch equivalence** — with one epoch spanning the whole
  horizon, the oracle online run reproduces the batch feeder plane
  bit-for-bit;
* **forecaster ladder** — each baseline's defining identity (zeros
  before history, persistence = previous window, alpha=1 EWMA =
  persistence, seeded noise keyed on (home, window) not call order);
* **planner trace reuse** — the view-diff scheduler traces that make
  epoch 2+ replanning sub-linear actually hit and reuse across status
  churn planning never observes.
"""

import hashlib

import pytest

from repro.core import CpItem, SchedulerConfig, SharedView, \
    plan_admissions
from repro.core.scheduler import PLAN_TRACE_STATS, reset_plan_caches
from repro.forecast import (
    EwmaForecaster,
    NoisyForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
    make_forecaster,
)
from repro.neighborhood import (
    FeederConfig,
    ForecastConfig,
    build_fleet,
    coordinate_fleet,
    coordinate_fleet_online,
    epoch_grid,
    execute_fleet,
)
from repro.sim.monitor import StepSeries
from repro.sim.units import MINUTE

HORIZON = 20 * MINUTE
EPOCH = 5 * MINUTE


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(10, mix="suburb", seed=1, cp_fidelity="ideal",
                       horizon=HORIZON)


@pytest.fixture(scope="module")
def results(fleet):
    return execute_fleet(fleet, until=HORIZON).homes


def online(fleet, results, forecaster="oracle", noise=0.0, replan="diff",
           epoch=EPOCH, guard=True):
    return coordinate_fleet_online(
        fleet, results, HORIZON,
        config=FeederConfig(epoch=epoch, guard=guard),
        forecast=ForecastConfig(forecaster=forecaster, noise=noise),
        replan=replan)


def profile_digest(plan):
    hasher = hashlib.sha256()
    hasher.update(repr((tuple(plan.coordinated_w.times),
                        tuple(plan.coordinated_w.values))).encode())
    hasher.update(repr([outcome.offsets_s
                        for outcome in plan.epochs]).encode())
    hasher.update(plan.telemetry_digest.encode())
    return hasher.hexdigest()


# -- epoch_grid -------------------------------------------------------------


@pytest.mark.parametrize("horizon,epoch", [
    (1200.0, 300.0), (1000.0, 300.0), (1200.0, 1200.0), (1200.0, 7.0),
    (977.0, 250.0)])
def test_epoch_grid_tiles_horizon_contiguously(horizon, epoch):
    windows = epoch_grid(horizon, epoch)
    assert windows[0][0] == 0.0
    assert windows[-1][1] == horizon
    for (_, end), (start, _) in zip(windows, windows[1:]):
        assert end == start
    for start, end in windows:
        assert end > start
        # rotate_window's exact-span contract (Sterbenz subtraction).
        assert start == 0.0 or end <= 2 * start


def test_epoch_grid_never_returns_zero_windows():
    assert len(epoch_grid(100.0, 1e9)) == 1
    assert epoch_grid(100.0, 1e9) == [(0.0, 100.0)]


# -- forecaster ladder ------------------------------------------------------


def sawtooth_history():
    series = StepSeries("h")
    # Window [0, 100): 500 W then 0; window [100, 200): 800 W then 0.
    for time, value in [(0.0, 500.0), (50.0, 0.0), (100.0, 800.0),
                        (150.0, 0.0)]:
        series.record(time, value)
    return series


def test_persistence_is_zero_before_any_full_window():
    prediction = PersistenceForecaster().predict(
        0, StepSeries(), 0.0, 100.0, 25.0, 4)
    assert prediction == (0.0, 0.0, 0.0, 0.0)


def test_persistence_repeats_the_previous_window():
    prediction = PersistenceForecaster().predict(
        0, sawtooth_history(), 200.0, 300.0, 25.0, 4)
    assert prediction == (800.0, 800.0, 0.0, 0.0)


def test_seasonal_reads_one_season_back_and_falls_back():
    seasonal = SeasonalNaiveForecaster(season_epochs=2)
    history = sawtooth_history()
    assert seasonal.predict(0, history, 200.0, 300.0, 25.0, 4) \
        == (500.0, 500.0, 0.0, 0.0)
    # One window of history < one season: persistence fallback.
    assert seasonal.predict(0, history, 100.0, 200.0, 25.0, 4) \
        == (500.0, 500.0, 0.0, 0.0)
    with pytest.raises(ValueError, match="season_epochs"):
        SeasonalNaiveForecaster(season_epochs=0)


def test_ewma_alpha_one_is_persistence():
    history = sawtooth_history()
    assert EwmaForecaster(alpha=1.0).predict(
        0, history, 200.0, 300.0, 25.0, 4) \
        == PersistenceForecaster().predict(
            0, history, 200.0, 300.0, 25.0, 4)
    with pytest.raises(ValueError, match="alpha"):
        EwmaForecaster(alpha=0.0)


def test_ewma_folds_past_windows_toward_recent():
    prediction = EwmaForecaster(alpha=0.5).predict(
        0, sawtooth_history(), 200.0, 300.0, 25.0, 4)
    assert prediction == (650.0, 650.0, 0.0, 0.0)


def test_noise_is_keyed_on_home_and_window_not_call_order():
    base = PersistenceForecaster()
    history = sawtooth_history()

    def predict(noisy, home, start):
        return noisy.predict(home, history, start, start + 100.0, 25.0, 4)

    forward = NoisyForecaster(base, 0.3, seed=9)
    first = [predict(forward, home, start)
             for home in (0, 1) for start in (100.0, 200.0)]
    backward = NoisyForecaster(base, 0.3, seed=9)
    second = [predict(backward, home, start)
              for home in (1, 0) for start in (200.0, 100.0)]
    assert first == [second[3], second[2], second[1], second[0]]
    assert predict(NoisyForecaster(base, 0.3, seed=10), 0, 100.0) \
        != first[0]
    assert all(value >= 0.0 for envelope in first for value in envelope)


def test_noise_zero_is_the_base_forecaster():
    history = sawtooth_history()
    assert NoisyForecaster(PersistenceForecaster(), 0.0).predict(
        0, history, 200.0, 300.0, 25.0, 4) \
        == PersistenceForecaster().predict(
            0, history, 200.0, 300.0, 25.0, 4)
    with pytest.raises(ValueError, match="noise"):
        NoisyForecaster(PersistenceForecaster(), -0.1)


def test_make_forecaster_rejections():
    with pytest.raises(ValueError, match="one of"):
        make_forecaster("orcale")
    with pytest.raises(ValueError, match="realized"):
        make_forecaster("oracle")


# -- the epoch loop ---------------------------------------------------------


def test_single_epoch_oracle_equals_batch_feeder(fleet, results):
    batch = coordinate_fleet(fleet, results, HORIZON,
                             config=FeederConfig(epoch=HORIZON))
    plan = online(fleet, results, epoch=HORIZON)
    assert plan.n_epochs == 1
    assert tuple(plan.coordinated_w.times) \
        == tuple(batch.coordinated_w.times)
    assert tuple(plan.coordinated_w.values) \
        == tuple(batch.coordinated_w.values)
    assert plan.epochs[0].offsets_s == batch.offsets_s


@pytest.mark.parametrize("forecaster,noise", [
    ("oracle", 0.0), ("oracle", 0.4), ("persistence", 0.0),
    ("seasonal", 0.0), ("ewma", 0.0)])
def test_energy_is_conserved_exactly(fleet, results, forecaster, noise):
    plan = online(fleet, results, forecaster=forecaster, noise=noise)
    independent = plan.independent_w.integral(0.0, HORIZON)
    coordinated = plan.coordinated_w.integral(0.0, HORIZON)
    assert coordinated == independent  # bit-exact, not approx


@pytest.mark.parametrize("forecaster,noise", [
    ("oracle", 0.0), ("oracle", 1.0), ("persistence", 0.0),
    ("ewma", 0.0)])
def test_guard_never_raises_any_epochs_peak(fleet, results, forecaster,
                                            noise):
    plan = online(fleet, results, forecaster=forecaster, noise=noise)
    assert plan.n_epochs == 4
    for outcome in plan.epochs:
        assert outcome.coordinated_peak_w <= outcome.independent_peak_w
        if not outcome.applied:
            assert outcome.offsets_s == tuple(
                0.0 for _ in outcome.offsets_s)


def test_declined_epochs_stitch_the_independent_window(fleet, results):
    # Guard off vs on: the guarded run is never worse than independent
    # in any epoch even where the unguarded run would have been.
    unguarded = online(fleet, results, forecaster="persistence",
                       guard=False)
    guarded = online(fleet, results, forecaster="persistence")
    for free, safe in zip(unguarded.epochs, guarded.epochs):
        assert safe.coordinated_peak_w <= safe.independent_peak_w
        assert safe.coordinated_peak_w <= free.coordinated_peak_w \
            or not free.applied


def test_cold_replan_renegotiates_every_home_every_epoch(fleet, results):
    cold = online(fleet, results, replan="cold")
    diff = online(fleet, results, replan="diff")
    assert all(outcome.changed_homes == fleet.n_homes
               for outcome in cold.epochs)
    # The diff path takes tokens only for moved envelopes after epoch 0.
    assert diff.replanned_homes <= cold.replanned_homes
    assert diff.epochs[0].changed_homes == fleet.n_homes
    assert cold.cp_stats.deliveries >= diff.cp_stats.deliveries


def test_replan_and_result_count_validation(fleet, results):
    with pytest.raises(ValueError, match="replan"):
        online(fleet, results, replan="warm")
    with pytest.raises(ValueError, match="results"):
        coordinate_fleet_online(fleet, results[:-1], HORIZON)


def test_online_metadata_shape(fleet, results):
    plan = online(fleet, results, forecaster="ewma")
    assert plan.forecaster == "ewma"
    assert plan.n_epochs == len(plan.epochs) == 4
    assert 0 <= plan.epochs_applied <= plan.n_epochs
    assert plan.telemetry_events > 0
    assert len(plan.telemetry_digest) == 64
    for index, outcome in enumerate(plan.epochs):
        assert outcome.index == index
        assert len(outcome.offsets_s) == fleet.n_homes


# -- determinism across execution strategies --------------------------------


def online_digest(jobs, shard_size):
    result = execute_fleet(
        build_fleet(12, mix="suburb", seed=3, cp_fidelity="ideal",
                    horizon=HORIZON),
        jobs=jobs, until=HORIZON, shard_size=shard_size,
        coordination="online",
        feeder=FeederConfig(epoch=EPOCH),
        forecast=ForecastConfig(forecaster="ewma", noise=0.2,
                                noise_seed=5))
    return profile_digest(result.coordination)


@pytest.fixture(scope="module")
def reference_digest():
    return online_digest(jobs=1, shard_size=None)


@pytest.mark.parametrize("jobs,shard_size", [(1, 1), (1, 8), (4, 4),
                                             (4, 12)])
def test_online_bit_identical_across_jobs_and_shards(jobs, shard_size,
                                                     reference_digest):
    assert online_digest(jobs, shard_size) == reference_digest


def test_feeder_mode_unchanged_by_forecast_plumbing(fleet, results):
    # Passing a forecast config to a non-online run must not perturb it.
    plain = coordinate_fleet(fleet, results, HORIZON)
    again = coordinate_fleet(fleet, results, HORIZON)
    assert tuple(plain.coordinated_w.values) \
        == tuple(again.coordinated_w.values)
    assert plain.offsets_s == again.offsets_s


# -- scheduler view-diff trace reuse ----------------------------------------


def _sched_config():
    from repro.han.dutycycle import DutyCycleSpec
    return SchedulerConfig(spec=DutyCycleSpec(min_dcd=900.0,
                                              max_dcp=1800.0))


def _announcement(request_id, device_id, arrival=0.0):
    from repro.han.requests import RequestAnnouncement
    return RequestAnnouncement(request_id=request_id,
                               device_id=device_id,
                               arrival_time=arrival, demand_cycles=1,
                               power_w=1000.0)


def _view(n_devices, n_pending, versions=None):
    from repro.core import DeviceStatus
    built = SharedView()
    for device in range(1, n_devices + 1):
        version = versions.get(device, 1) if versions else 1
        built.merge_item(CpItem(DeviceStatus(
            device_id=device, version=version, active=False,
            remaining_cycles=0, assigned_slot=None, power_w=1000.0,
            burst_start=None, last_admitted_request=0)))
    for index in range(n_pending):
        built.pending[100 + index] = _announcement(
            100 + index, 1 + index % n_devices, arrival=float(index))
    return built


def test_trace_reuses_shared_prefix_and_plans_only_the_tail():
    config, view = _sched_config(), _view
    reset_plan_caches()
    first = plan_admissions(view(6, 4), config, now=0.0)
    assert PLAN_TRACE_STATS == {"hits": 0, "misses": 1, "reused": 0,
                                "planned": 4}
    second = plan_admissions(view(6, 6), config, now=0.0)
    assert PLAN_TRACE_STATS["hits"] == 1
    assert PLAN_TRACE_STATS["reused"] == 4
    assert PLAN_TRACE_STATS["planned"] == 4 + 2
    # Bit-identical to planning from scratch, by purity.
    reset_plan_caches()
    assert plan_admissions(view(6, 6), config, now=0.0) == second
    assert second[:len(first)] == first


def test_status_churn_planning_never_reads_lands_on_the_same_trace():
    config, view = _sched_config(), _view
    reset_plan_caches()
    baseline = plan_admissions(view(6, 5), config, now=0.0)
    churned = plan_admissions(view(6, 5, versions={3: 7, 5: 9}), config,
                              now=0.0)
    # Version bumps on inactive devices: memo key differs (exact content)
    # but the planning projections are identical, so the trace fully
    # covers the order — everything reused, nothing re-planned.
    assert churned == baseline
    assert PLAN_TRACE_STATS["hits"] == 1
    assert PLAN_TRACE_STATS["misses"] == 1
    assert PLAN_TRACE_STATS["planned"] == 5
    assert PLAN_TRACE_STATS["reused"] == 5


def test_divergent_pending_tail_branches_from_checkpoint():
    config, view = _sched_config(), _view
    reset_plan_caches()
    base = view(4, 3)
    plan_admissions(base, config, now=0.0)
    # Same first two announcements, different third: prefix 2 reused.
    branched = view(4, 3)
    del branched.pending[102]
    branched.pending[150] = _announcement(150, 4, arrival=9.0)
    branched_plan = plan_admissions(branched, config, now=0.0)
    assert PLAN_TRACE_STATS["hits"] == 1
    assert PLAN_TRACE_STATS["reused"] == 2
    reset_plan_caches()
    assert plan_admissions(branched, config, now=0.0) == branched_plan
