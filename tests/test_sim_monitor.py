"""StepSeries / GaugeSum / Counter, including hypothesis properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, GaugeSum, Simulator, StepSeries


def make_series(points):
    series = StepSeries("s")
    for t, v in points:
        series.record(t, v)
    return series


def test_value_before_first_record_is_zero():
    series = make_series([(5.0, 3.0)])
    assert series.at(0.0) == 0.0
    assert series.at(4.999) == 0.0
    assert series.at(5.0) == 3.0


def test_piecewise_lookup():
    series = make_series([(0.0, 1.0), (10.0, 2.0), (20.0, 0.0)])
    assert series.at(0.0) == 1.0
    assert series.at(9.999) == 1.0
    assert series.at(10.0) == 2.0
    assert series.at(25.0) == 0.0


def test_same_value_records_are_compressed():
    series = make_series([(0.0, 1.0), (5.0, 1.0), (10.0, 2.0)])
    assert len(series) == 2


def test_same_instant_overwrites():
    series = make_series([(0.0, 1.0), (5.0, 2.0), (5.0, 3.0)])
    assert series.at(5.0) == 3.0
    assert len(series) == 2


def test_time_regression_rejected():
    series = make_series([(5.0, 1.0)])
    with pytest.raises(ValueError):
        series.record(4.0, 2.0)


def test_integral_exact():
    series = make_series([(0.0, 2.0), (10.0, 4.0)])
    assert series.integral(0.0, 20.0) == pytest.approx(2 * 10 + 4 * 10)


def test_integral_partial_segments():
    series = make_series([(0.0, 2.0), (10.0, 4.0)])
    assert series.integral(5.0, 15.0) == pytest.approx(2 * 5 + 4 * 5)


def test_mean_and_variance():
    series = make_series([(0.0, 0.0), (5.0, 10.0)])
    # half the window at 0, half at 10
    assert series.mean(0.0, 10.0) == pytest.approx(5.0)
    assert series.variance(0.0, 10.0) == pytest.approx(25.0)
    assert series.std(0.0, 10.0) == pytest.approx(5.0)


def test_max_min_over_window():
    series = make_series([(0.0, 1.0), (2.0, 7.0), (4.0, 3.0)])
    assert series.maximum(0.0, 10.0) == 7.0
    assert series.minimum(0.0, 10.0) == 1.0
    assert series.maximum(4.0, 10.0) == 3.0


def test_max_step_detects_largest_jump():
    series = make_series([(0.0, 0.0), (1.0, 3.0), (2.0, 4.0), (3.0, 1.0),
                          (4.0, 9.0)])
    assert series.max_step(0.0, 10.0) == pytest.approx(8.0)


def test_window_restriction():
    series = make_series([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
    clipped = series.window(5.0, 15.0)
    assert clipped.at(5.0) == 1.0
    assert clipped.at(12.0) == 2.0


def test_sample_grid_shape():
    series = make_series([(0.0, 1.0)])
    times, values = series.sample_grid(0.0, 10.0, 2.5)
    assert len(times) == len(values) == 4


def test_empty_interval_stats_raise():
    series = make_series([(0.0, 1.0)])
    with pytest.raises(ValueError):
        series.mean(5.0, 5.0)
    with pytest.raises(ValueError):
        series.maximum(5.0, 5.0)


@given(st.lists(st.tuples(st.floats(0, 1000), st.floats(-100, 100)),
                min_size=1, max_size=30))
@settings(max_examples=200, deadline=None)
def test_integral_is_additive(points):
    """∫[a,c] = ∫[a,b] + ∫[b,c] for any split point."""
    points = sorted(points, key=lambda p: p[0])
    series = StepSeries()
    for t, v in points:
        series.record(t, v)
    a, b, c = 0.0, 600.0, 1200.0
    whole = series.integral(a, c)
    split = series.integral(a, b) + series.integral(b, c)
    assert math.isclose(whole, split, rel_tol=1e-9, abs_tol=1e-6)


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 50)),
                min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_mean_bounded_by_extremes(points):
    points = sorted(points, key=lambda p: p[0])
    series = StepSeries()
    for t, v in points:
        series.record(t, v)
    lo = series.minimum(0.0, 200.0)
    hi = series.maximum(0.0, 200.0)
    mean = series.mean(0.0, 200.0)
    assert lo - 1e-9 <= mean <= hi + 1e-9


@given(st.lists(st.floats(0, 50), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_variance_nonnegative(values):
    series = StepSeries()
    for i, v in enumerate(values):
        series.record(float(i), v)
    assert series.variance(0.0, len(values) + 1.0) >= -1e-12


def test_gauge_sum_aggregates_contributors():
    sim = Simulator()
    gauge = GaugeSum("load")
    gauge.set_level("a", 100.0, sim.now)
    gauge.set_level("b", 50.0, sim.now)
    assert gauge.total == 150.0
    gauge.set_level("a", 0.0, sim.now)
    assert gauge.total == 50.0
    assert gauge.level_of("b") == 50.0
    assert gauge.level_of("missing") == 0.0


def test_gauge_sum_records_series():
    gauge = GaugeSum()
    gauge.set_level("a", 10.0, 0.0)
    gauge.set_level("b", 5.0, 2.0)
    gauge.set_level("a", 0.0, 4.0)
    assert gauge.series.at(0.0) == 10.0
    assert gauge.series.at(2.0) == 15.0
    assert gauge.series.at(4.0) == 5.0


def test_gauge_sum_clamps_float_residue():
    gauge = GaugeSum()
    for _ in range(1000):
        gauge.set_level("a", 0.1, 0.0)
        gauge.set_level("a", 0.0, 0.0)
    assert gauge.total == 0.0


def test_counter():
    counter = Counter("c")
    counter.increment()
    counter.increment(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_segments_partition_the_window():
    series = StepSeries("s")
    series.record(10.0, 1.0)
    series.record(20.0, 3.0)
    series.record(40.0, 0.0)
    assert list(series.segments(0.0, 50.0)) == [
        (0.0, 10.0, 0.0),   # zero before the first record
        (10.0, 20.0, 1.0),
        (20.0, 40.0, 3.0),
        (40.0, 50.0, 0.0),
    ]
    # mid-segment window boundaries clip, contiguity holds
    segs = list(series.segments(15.0, 35.0))
    assert segs == [(15.0, 20.0, 1.0), (20.0, 35.0, 3.0)]
    for (_, end_a, _), (start_b, _, _) in zip(segs, segs[1:]):
        assert end_a == start_b
    # empty window yields nothing
    assert list(series.segments(5.0, 5.0)) == []


def test_segments_agree_with_statistics():
    series = StepSeries("s")
    for t, v in [(0.0, 2.0), (7.0, 5.0), (13.0, 1.0), (21.0, 4.0)]:
        series.record(t, v)
    total = sum((end - start) * value
                for start, end, value in series.segments(3.0, 25.0))
    assert total == pytest.approx(series.integral(3.0, 25.0))


# ---------------------------------------------------------------------------
# cached views + vectorized statistics (PR 4)
# ---------------------------------------------------------------------------

def test_times_values_views_cached_and_invalidated():
    """The tuple views are reused between records, refreshed after one."""
    series = make_series([(0.0, 1.0), (10.0, 2.0)])
    first_times, first_values = series.times, series.values
    assert isinstance(first_times, tuple)
    assert series.times is first_times  # cached: no per-access copy
    assert series.values is first_values
    series.record(20.0, 3.0)
    assert series.times is not first_times  # invalidated by the record
    assert series.times == (0.0, 10.0, 20.0)
    assert series.values == (1.0, 2.0, 3.0)
    assert first_times == (0.0, 10.0)  # old view immutable, unchanged


def test_same_instant_overwrite_invalidates_views():
    series = make_series([(0.0, 1.0)])
    before = series.values
    series.record(0.0, 5.0)  # same-instant overwrite, not an append
    assert series.values == (5.0,)
    assert before == (1.0,)


def test_vectorized_sample_matches_scalar_at():
    series = make_series([(5.0, 3.0), (10.0, 1.0), (30.0, 0.0)])
    query = [0.0, 4.999, 5.0, 9.0, 10.0, 29.9, 30.0, 100.0]
    sampled = series.sample(query)
    assert list(sampled) == [series.at(t) for t in query]
    assert list(StepSeries().sample(query)) == [0.0] * len(query)


def test_window_fast_path_matches_record_semantics():
    series = make_series([(0.0, 0.0), (10.0, 2.0), (20.0, 3.0)])
    clipped = series.window(0.0, 15.0)
    # leading zero-valued boundary record is deduplicated, as record()
    # would have done (the signal is 0 before the first record anyway)
    assert list(clipped) == [(0.0, 0.0), (10.0, 2.0)]
    inner = series.window(12.0, 12.0)
    assert list(inner) == [(12.0, 2.0)]


def test_stats_bit_equal_to_segment_definition():
    """Vectorized statistics equal the fsum-over-segments definition."""
    import math
    series = make_series([(0.0, 2.5), (7.0, 11.25), (13.0, 0.5),
                          (21.0, 7.75)])
    start, end = 3.0, 27.0
    segments = list(series.segments(start, end))
    integral = math.fsum((b - a) * v for a, b, v in segments)
    assert series.integral(start, end) == integral
    mu = integral / (end - start)
    variance = math.fsum((b - a) * (v - mu) ** 2
                         for a, b, v in segments) / (end - start)
    assert series.variance(start, end) == variance
    assert series.maximum(start, end) == max(v for _a, _b, v in segments)
    assert series.minimum(start, end) == min(v for _a, _b, v in segments)


def test_window_dedups_overwrite_created_duplicates():
    """Same-instant overwrites can leave adjacent equal values; window()
    must still apply record()'s minimality, exactly as the old
    record()-based implementation did."""
    series = StepSeries()
    series.record(0.0, 2.0)
    series.record(10.0, 5.0)
    series.record(10.0, 2.0)   # overwrite back to the prior level
    assert list(series) == [(0.0, 2.0), (10.0, 2.0)]  # non-minimal store
    assert list(series.window(5.0, 20.0)) == [(5.0, 2.0)]
    assert list(series.window(0.0, 20.0)) == [(0.0, 2.0)]
    # a chain of overwrite-created equals collapses the same way
    series.record(20.0, 5.0)
    series.record(20.0, 2.0)
    assert list(series.window(5.0, 30.0)) == [(5.0, 2.0)]
